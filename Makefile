# Convenience targets; see scripts/verify.sh for the canonical check.

.PHONY: verify test chaos coverage bench-micro bench-service bench-multilevel bench-optimality bench-cluster docs-check serve-smoke cluster-smoke cluster-partition-smoke

verify:
	sh scripts/verify.sh

test:
	PYTHONPATH=src python -m pytest -x -q

# Fault-injection replay suite: FLOW runs under injected worker
# crashes/hangs/corruption must stay bit-identical to fault-free runs.
chaos:
	PYTHONPATH=src python -m pytest -m chaos -q

# Line coverage of src/repro/core against the committed baseline
# (scripts/coverage_baseline.json); refresh with --write-baseline.
coverage:
	PYTHONPATH=src python scripts/coverage_core.py --check

# Doctest the documentation snippets, fail on dead intra-repo links and
# on benchmark files missing from docs/benchmarks.md.
docs-check:
	python scripts/docs_check.py

# End-to-end smoke of the partitioning service: htp serve + htp submit
# as real processes (cold solve, warm cache hit, graceful drain).
serve-smoke:
	PYTHONPATH=src python scripts/serve_smoke.py

# End-to-end smoke of the cluster tier: htp route + two joined workers
# as real processes (routed cold solve, shared-cache warm hit, and a
# mid-solve worker SIGKILL resumed from replicated checkpoints to a
# bit-identical finish).
cluster-smoke:
	PYTHONPATH=src python scripts/cluster_smoke.py

# Partition drill: primary router behind the netfaults TCP proxy, link
# severed mid-flight — warm standby must take over with a bumped
# fencing epoch and the zombie primary's forwards must be refused.
cluster-partition-smoke:
	PYTHONPATH=src python scripts/cluster_smoke.py --drill partition

# Refresh the checked-in micro-bench trajectory (BENCH_micro.json).
bench-micro:
	PYTHONPATH=src python -m pytest benchmarks/bench_spreading_batch.py \
		-q --bench-json BENCH_micro.json

# Refresh the service cold-vs-warm latency record (BENCH_service.json).
bench-service:
	PYTHONPATH=src python -m pytest benchmarks/bench_service_cache.py \
		-q --bench-json BENCH_service.json

# Refresh the optimality-gap record (BENCH_optimality.json): FLOW vs
# the exact oracles (tree-metric DP / branch-and-bound / ILP) on the
# golden corpus in tests/regressions/optimal/.  Seconds, not minutes.
bench-optimality:
	PYTHONPATH=src python -m pytest benchmarks/bench_optimality.py \
		-q --bench-json BENCH_optimality.json

# Refresh the multilevel scaling record (BENCH_multilevel.json): the
# V-cycle vs flat FLOW vs FM-multilevel at 10k/100k nodes.  Takes
# minutes at full scale; verify.sh runs it at REPRO_BENCH_SCALE=0.02.
bench-multilevel:
	PYTHONPATH=src python -m pytest benchmarks/bench_multilevel.py \
		-q --bench-json BENCH_multilevel.json

# Refresh the cluster load/failover record (BENCH_cluster.json): open-
# loop arrivals against a real router + worker subprocesses at 1/2/4
# workers, a shared-cache warm row, and a kill-one-worker recovery row.
bench-cluster:
	PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py \
		-q --bench-json BENCH_cluster.json
