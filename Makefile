# Convenience targets; see scripts/verify.sh for the canonical check.

.PHONY: verify test bench-micro

verify:
	sh scripts/verify.sh

test:
	PYTHONPATH=src python -m pytest -x -q

# Refresh the checked-in micro-bench trajectory (BENCH_micro.json).
bench-micro:
	PYTHONPATH=src python -m pytest benchmarks/bench_spreading_batch.py \
		-q --bench-json BENCH_micro.json
