"""Legacy setup shim + optional native-kernel build.

The offline environment has no ``wheel`` package, so PEP 517 editable
installs fail; this shim lets ``pip install -e . --no-use-pep517`` work.
All metadata lives in ``pyproject.toml``.

The one thing that *does* live here is the optional C extension for the
metric hot loop (``repro.core._kernel._native``).  The extension is a
pure accelerator — ``repro.core._kernel.available()`` gates every use
and the scipy engines are a guaranteed fallback — so a missing compiler
or numpy headers must never fail the install.  ``OptionalBuildExt``
downgrades any build error to a warning.
"""

from __future__ import annotations

import sys

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """Build C extensions if we can; warn and continue if we can't."""

    def run(self):  # noqa: D102
        try:
            super().run()
        except Exception as exc:  # pragma: no cover - compiler-dependent
            self._skip(exc)

    def build_extension(self, ext):  # noqa: D102
        try:
            super().build_extension(ext)
        except Exception as exc:  # pragma: no cover - compiler-dependent
            self._skip(exc)

    @staticmethod
    def _skip(exc):
        print(
            "WARNING: skipping optional native kernel build "
            f"({exc!r}); the scipy engines remain fully functional",
            file=sys.stderr,
        )


def _extensions():
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return []
    return [
        Extension(
            "repro.core._kernel._native",
            sources=["src/repro/core/_kernel/_native.c"],
            include_dirs=[numpy.get_include()],
            optional=True,
        )
    ]


setup(
    ext_modules=_extensions(),
    cmdclass={"build_ext": OptionalBuildExt},
)
