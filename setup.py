"""Legacy setup shim.

The offline environment has no ``wheel`` package, so PEP 517 editable
installs fail; this shim lets ``pip install -e . --no-use-pep517`` work.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
