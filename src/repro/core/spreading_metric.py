"""Algorithm 2: computing a spreading metric by stochastic flow injection.

Every edge carries a flow ``f(e)`` (initially ``epsilon``) and a length
``d(e) = exp(alpha * f(e) / c(e)) - 1``.  Nodes are visited in random
order; for each node the shortest-path trees ``S(v, k)`` are grown until a
spreading constraint is violated, ``delta`` units of flow are injected on
the violated tree's edges, and the lengths are re-priced (congested edges
are penalised exponentially).  A node whose constraints are all satisfied
is retired — valid because ``d`` only ever grows, so shortest-path
distances and constraint left-hand sides are monotonically nondecreasing
while the right-hand sides ``g`` are fixed.

The loop ends when every node is retired (a feasible spreading metric) or
when the round budget is exhausted (the best-effort metric is returned
with ``satisfied = False``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.constraints import SpreadingOracle
from repro.htp.hierarchy import HierarchySpec
from repro.hypergraph.graph import Graph


@dataclass
class SpreadingMetricConfig:
    """Tuning knobs of Algorithm 2.

    Attributes
    ----------
    alpha:
        Exponential pricing rate in ``d(e) = exp(alpha f(e) / c(e)) - 1``.
    delta:
        Flow units injected per violated tree.
    epsilon:
        Initial flow on every edge (lengths start near, not at, zero).
    max_rounds:
        Bound on full passes over the active node set; exceeded means the
        returned metric may be infeasible (``satisfied = False``).
    engine:
        ``'scipy'`` (fast, vectorised) or ``'python'`` (reference).
    seed:
        Seed for the node visiting order.
    node_sample:
        Optional fraction (0, 1] of nodes to enforce constraints for — a
        stochastic speedup for very large instances; 1.0 enforces all.
    """

    alpha: float = 1.0
    delta: float = 1.0
    epsilon: float = 1e-3
    max_rounds: int = 64
    engine: str = "scipy"
    seed: int = 0
    node_sample: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0 < self.node_sample <= 1:
            raise ValueError("node_sample must be in (0, 1]")


@dataclass
class SpreadingMetricResult:
    """Output of Algorithm 2.

    ``lengths`` is the spreading metric ``d`` (indexed by edge id),
    ``flows`` the final edge flows, ``objective`` the LP objective value
    ``sum_e c(e) d(e)`` of the metric, ``injections`` the number of
    flow-injection steps, ``rounds`` the number of passes over the active
    set, and ``satisfied`` whether every spreading constraint held at
    termination.
    """

    lengths: np.ndarray
    flows: np.ndarray
    objective: float
    injections: int
    rounds: int
    satisfied: bool


def compute_spreading_metric(
    graph: Graph,
    spec: HierarchySpec,
    config: Optional[SpreadingMetricConfig] = None,
    rng: Optional[random.Random] = None,
) -> SpreadingMetricResult:
    """Run Algorithm 2 on ``graph`` under hierarchy ``spec``."""
    config = config or SpreadingMetricConfig()
    rng = rng or random.Random(config.seed)
    oracle = SpreadingOracle(graph, spec, engine=config.engine)

    capacities = graph.capacities()
    flows = np.full(graph.num_edges, config.epsilon, dtype=float)
    lengths = _price(flows, capacities, config.alpha)
    oracle.set_lengths(lengths)

    active = list(graph.nodes())
    if config.node_sample < 1.0:
        sample_size = max(1, int(round(config.node_sample * len(active))))
        active = rng.sample(active, sample_size)

    injections = 0
    rounds = 0
    while active and rounds < config.max_rounds:
        rounds += 1
        rng.shuffle(active)
        still_active = []
        for source in active:
            violation = oracle.violation_for(source, mode="first")
            if violation is None:
                continue  # retired: monotonicity keeps it satisfied
            edge_ids = np.fromiter(
                violation.tree_edges, dtype=np.int64, count=len(violation.tree_edges)
            )
            if edge_ids.size:
                flows[edge_ids] += config.delta
                lengths[edge_ids] = _price(
                    flows[edge_ids], capacities[edge_ids], config.alpha
                )
                oracle.set_lengths(lengths)
            injections += 1
            still_active.append(source)
        active = still_active

    return SpreadingMetricResult(
        lengths=lengths,
        flows=flows,
        objective=float(np.dot(capacities, lengths)),
        injections=injections,
        rounds=rounds,
        satisfied=not active,
    )


def _price(
    flows: np.ndarray, capacities: np.ndarray, alpha: float
) -> np.ndarray:
    """Edge pricing ``d(e) = exp(alpha f(e) / c(e)) - 1``."""
    return np.expm1(alpha * flows / capacities)
