"""Algorithm 2: computing a spreading metric by stochastic flow injection.

Every edge carries a flow ``f(e)`` (initially ``epsilon``) and a length
``d(e) = exp(alpha * f(e) / c(e)) - 1``.  Nodes are visited in random
order; for each node the shortest-path trees ``S(v, k)`` are grown until a
spreading constraint is violated, ``delta`` units of flow are injected on
the violated tree's edges, and the lengths are re-priced (congested edges
are penalised exponentially).  A node whose constraints are all satisfied
is retired — valid because ``d`` only ever grows, so shortest-path
distances and constraint left-hand sides are monotonically nondecreasing
while the right-hand sides ``g`` are fixed.

The loop ends when every node is retired (a feasible spreading metric) or
when the round budget is exhausted (the best-effort metric is returned
with ``satisfied = False``).

Engines
-------
``engine='scipy'`` (default) runs the **batched incremental** round loop:
active sources are checked in sub-round chunks with ONE distance-limited
``scipy.csgraph.dijkstra`` call per chunk, injections are applied
serially in visit order (preserving the seed's semantics exactly), and a
source later in the chunk is re-examined only when an injection dirtied
an edge on its snapshot shortest-path tree — everything else reuses the
snapshot verdict, provably unchanged because edge lengths only grow.
Re-pricing after an injection patches just the dirty edges in place
(``SpreadingOracle.update_lengths``) instead of copying the O(m) metric.

``engine='scipy-serial'`` is the one-source-at-a-time loop (the seed's
behaviour) kept as the reference the batched loop is asserted
bit-identical against; ``engine='python'`` additionally swaps the oracle
to the pure-Python Dijkstra.

``engine='parallel'`` runs the same batched incremental loop but fans
each sub-round's snapshot check across a persistent process pool
(:class:`repro.core.parallel.MetricWorkerPool`): workers share the
floored CSR arrays through ``multiprocessing.shared_memory``, verdicts
are merged back in source order, and injections stay serial on the
coordinator — so the flow trajectory, and therefore the result, is
bit-identical to ``engine='scipy'`` for every seed and worker count.
Chunks too small to be worth a dispatch, and any pool failure, fall back
to the in-process check transparently.

``engine='native'`` runs the serial round loop with every per-source
first-violation query answered by the compiled kernel
(``repro.core._kernel``): one early-exiting C pass fuses the
distance-limited Dijkstra with the in-order constraint scan and the
canonical-tree extraction, so the convergent tail — thousands of
satisfied sources re-verified per round — stops paying scipy's
full-ball settling cost or any per-call numpy marshalling.  Repricing
stays in numpy (``np.expm1`` is not guaranteed bitwise-equal to libm),
the kernel only reads the installed CSR metric.  When the extension
is not built (no compiler) or is disabled via ``REPRO_DISABLE_NATIVE``,
the request quietly degrades to the batched ``scipy`` loop with a
``native_fallbacks`` count and a degradation record.  The ``parallel``
engine composes with the kernel automatically: pool workers answer
their slice of each snapshot natively when the extension is available.
All five engines produce identical results for a fixed seed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core import _kernel as native_kernel_mod
from repro.core.checkpoint import MetricCheckpoint
from repro.core.constraints import MIN_CSR_LENGTH, SpreadingOracle
from repro.core.parallel import (
    MetricWorkerPool,
    ParallelConfig,
    should_autoserial,
)
from repro.core.perf import PerfCounters
from repro.errors import CheckpointError, SolverAborted
from repro.htp.hierarchy import HierarchySpec
from repro.hypergraph.graph import Graph

#: Engines accepted by :class:`SpreadingMetricConfig`.
ENGINES = ("scipy", "scipy-serial", "python", "parallel", "native")

#: Initial batched sub-round size; doubles after every injection-free
#: chunk and resets on injection (injection-heavy phases want small
#: snapshots, the convergent tail wants big ones).
_MIN_CHUNK = 8

#: Upper bound on the dense scratch a single batched chunk may allocate,
#: in (sources x nodes) matrix elements.
_MAX_CHUNK_ELEMENTS = 4_000_000


@dataclass
class SpreadingMetricConfig:
    """Tuning knobs of Algorithm 2.

    Attributes
    ----------
    alpha:
        Exponential pricing rate in ``d(e) = exp(alpha f(e) / c(e)) - 1``.
    delta:
        Flow units injected per violated tree.
    epsilon:
        Initial flow on every edge (lengths start near, not at, zero).
    max_rounds:
        Bound on full passes over the active node set; exceeded means the
        returned metric may be infeasible (``satisfied = False``).
    engine:
        ``'scipy'`` (batched incremental, fast), ``'scipy-serial'``
        (one source per Dijkstra; the reference the batched engine is
        tested bit-identical against), ``'python'`` (pure-Python
        reference), ``'parallel'`` (the batched loop with sub-round
        checks fanned across a process pool; bit-identical to
        ``'scipy'``) or ``'native'`` (the serial loop with per-source
        checks answered by the compiled kernel; degrades to ``'scipy'``
        when the extension is unavailable).
    seed:
        Seed for the node visiting order.
    node_sample:
        Optional fraction (0, 1] of nodes to enforce constraints for — a
        stochastic speedup for very large instances; 1.0 enforces all.
    parallel:
        Pool sizing/fallback knobs for ``engine='parallel'`` (a
        :class:`repro.core.parallel.ParallelConfig`); None means
        defaults.  Ignored by the other engines.
    """

    alpha: float = 1.0
    delta: float = 1.0
    epsilon: float = 1e-3
    max_rounds: int = 64
    engine: str = "scipy"
    seed: int = 0
    node_sample: float = 1.0
    parallel: Optional["ParallelConfig"] = None

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0 < self.node_sample <= 1:
            raise ValueError("node_sample must be in (0, 1]")
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r} (choose from {ENGINES})"
            )


@dataclass
class SpreadingMetricResult:
    """Output of Algorithm 2.

    ``lengths`` is the spreading metric ``d`` (indexed by edge id),
    ``flows`` the final edge flows, ``objective`` the LP objective value
    ``sum_e c(e) d(e)`` of the metric, ``injections`` the number of
    flow-injection steps, ``rounds`` the number of passes over the active
    set, ``satisfied`` whether every spreading constraint held at
    termination, and ``counters`` the perf instrumentation when the
    caller supplied a :class:`PerfCounters`.
    """

    lengths: np.ndarray
    flows: np.ndarray
    objective: float
    injections: int
    rounds: int
    satisfied: bool
    counters: Optional[PerfCounters] = None


def compute_spreading_metric(
    graph: Graph,
    spec: HierarchySpec,
    config: Optional[SpreadingMetricConfig] = None,
    rng: Optional[random.Random] = None,
    counters: Optional[PerfCounters] = None,
    pool: Optional[MetricWorkerPool] = None,
    spawn_pool: bool = True,
    on_round: Optional[Callable[[MetricCheckpoint, bool], None]] = None,
    resume: Optional[MetricCheckpoint] = None,
    abort_check: Optional[Callable[[], object]] = None,
) -> SpreadingMetricResult:
    """Run Algorithm 2 on ``graph`` under hierarchy ``spec``.

    Parameters
    ----------
    graph : Graph
        The (net-model-expanded) graph carrying capacities.
    spec : HierarchySpec
        Hierarchy bounds supplying the spreading constraints.
    config : SpreadingMetricConfig, optional
        Tuning knobs; defaults reproduce the paper's Algorithm 2.
    rng : random.Random, optional
        Node-visit-order randomness; defaults to ``Random(config.seed)``.
    counters : PerfCounters, optional
        Instrumentation sink shared with the oracle and pool.
    pool : MetricWorkerPool, optional
        A caller-owned worker pool for ``engine='parallel'`` (the FLOW
        driver shares one pool across its iterations).  Ignored by the
        other engines.
    spawn_pool : bool, optional
        When True (default) and ``engine='parallel'`` with no ``pool``
        given, a transient pool is created for this call and closed on
        return.  The FLOW driver's fan-out workers pass False so a
        pooled iteration never nests another pool.
    on_round : callable, optional
        Durability hook ``on_round(state, final)`` invoked after every
        round with a :class:`~repro.core.checkpoint.MetricCheckpoint`
        (``final=True`` once more when the loop ends or aborts).  The
        FLOW driver wires a :class:`~repro.core.checkpoint.FlowCheckpointer`
        in here.
    resume : MetricCheckpoint, optional
        Round state to continue from instead of starting cold.  Resuming
        at a round boundary is bit-identical to never having stopped:
        the flows, lengths, active order, counters and RNG state are all
        restored exactly.
    abort_check : callable, optional
        Cooperative per-round abort: called at the top of every round;
        a truthy return (the reason) emits a final ``on_round`` state
        and raises :class:`~repro.errors.SolverAborted`.

    Returns
    -------
    SpreadingMetricResult
        The metric, flows, objective and diagnostics.  All engines
        return bit-identical results for a fixed seed (the engine only
        changes *how* verdicts are computed, never *which*).
    """
    config = config or SpreadingMetricConfig()
    rng = rng or random.Random(config.seed)
    oracle_engine = "python" if config.engine == "python" else "scipy"
    oracle = SpreadingOracle(
        graph, spec, engine=oracle_engine, counters=counters
    )

    capacities = graph.capacities()
    if resume is not None:
        if resume.flows.shape != (graph.num_edges,):
            raise CheckpointError(
                f"resume state has {resume.flows.shape[0]} edges, "
                f"graph has {graph.num_edges}"
            )
        flows = resume.flows.astype(float, copy=True)
        lengths = resume.lengths.astype(float, copy=True)
        active = list(resume.active)
        if resume.rng_state is not None:
            rng.setstate(resume.rng_state)
        if counters is not None:
            counters.checkpoint_resumes += 1
    else:
        flows = np.full(graph.num_edges, config.epsilon, dtype=float)
        lengths = _price(flows, capacities, config.alpha)
        active = list(graph.nodes())
        if config.node_sample < 1.0:
            sample_size = max(1, int(round(config.node_sample * len(active))))
            active = rng.sample(active, sample_size)
    oracle.set_lengths(lengths)

    engine = config.engine
    native_kernel = None
    if engine == "native":
        if native_kernel_mod.available():
            native_kernel = native_kernel_mod.NativeMetricKernel(
                graph, spec, tol=oracle.tol
            )
        else:
            # Guaranteed fallback: the batched scipy loop is
            # bit-identical, so a missing compiler only costs speed.
            engine = "scipy"
            if counters is not None:
                counters.native_fallbacks += 1
                counters.record_degradation(
                    "native-scipy",
                    native_kernel_mod.unavailable_reason(),
                    site="native-kernel",
                )

    owned_pool: Optional[MetricWorkerPool] = None
    if engine == "parallel" and pool is None and spawn_pool:
        if should_autoserial(config.parallel):
            # One core / one worker: the pool can only serialise tasks
            # behind IPC overhead, so take the bit-identical in-process
            # path quietly (the warning-free 1-core fix).
            if counters is not None:
                counters.pool_autoserial += 1
            spawn_pool = False
    if engine == "parallel" and pool is None and spawn_pool:
        try:
            owned_pool = MetricWorkerPool(
                graph,
                spec,
                parallel=config.parallel,
                tol=oracle.tol,
                use_native=native_kernel_mod.available(),
            )
            pool = owned_pool
        except Exception as exc:
            # Pool creation failed (OS limits, pickling, ...): the
            # batched loop without a pool is the bit-identical fallback.
            # The cause is preserved on the degradation record.
            if counters is not None:
                counters.pool_fallbacks += 1
                counters.record_degradation("spawn-serial", exc, site="pool-spawn")
            if config.parallel is not None and not config.parallel.fallback:
                raise
    try:
        if engine in ("scipy", "parallel"):
            injections, rounds = _batched_rounds(
                graph,
                oracle,
                config,
                rng,
                active,
                flows,
                lengths,
                capacities,
                counters,
                pool=pool if engine == "parallel" else None,
                on_round=on_round,
                resume=resume,
                abort_check=abort_check,
            )
        elif engine == "native":
            injections, rounds = _native_rounds(
                graph,
                oracle,
                config,
                rng,
                active,
                flows,
                lengths,
                capacities,
                counters,
                native_kernel,
                on_round=on_round,
                resume=resume,
                abort_check=abort_check,
            )
        else:
            injections, rounds = _serial_rounds(
                graph,
                oracle,
                config,
                rng,
                active,
                flows,
                lengths,
                capacities,
                counters,
                on_round=on_round,
                resume=resume,
                abort_check=abort_check,
            )
    finally:
        if owned_pool is not None:
            owned_pool.close()
    if on_round is not None:
        on_round(
            _round_state(rng, flows, lengths, active, injections, rounds),
            True,
        )

    return SpreadingMetricResult(
        lengths=lengths,
        flows=flows,
        objective=float(np.dot(capacities, lengths)),
        injections=injections,
        rounds=rounds,
        satisfied=not active,
        counters=counters,
    )


def _round_state(
    rng: random.Random,
    flows: np.ndarray,
    lengths: np.ndarray,
    active: List[int],
    injections: int,
    rounds: int,
    chunk_size: Optional[int] = None,
) -> MetricCheckpoint:
    """Snapshot the loop state at a round boundary (for ``on_round``)."""
    return MetricCheckpoint(
        flows=flows,
        lengths=lengths,
        active=list(active),
        injections=injections,
        rounds=rounds,
        chunk_size=chunk_size,
        rng_state=rng.getstate(),
    )


def _maybe_abort(
    abort_check,
    on_round,
    rng: random.Random,
    flows: np.ndarray,
    lengths: np.ndarray,
    active: List[int],
    injections: int,
    rounds: int,
    chunk_size: Optional[int] = None,
) -> None:
    """Cooperative per-round abort: final checkpoint, then SolverAborted."""
    if abort_check is None:
        return
    reason = abort_check()
    if not reason:
        return
    if on_round is not None:
        on_round(
            _round_state(
                rng, flows, lengths, active, injections, rounds, chunk_size
            ),
            True,
        )
    raise SolverAborted(str(reason))


def _inject(
    oracle: SpreadingOracle,
    config: SpreadingMetricConfig,
    flows: np.ndarray,
    lengths: np.ndarray,
    capacities: np.ndarray,
    tree_edges,
):
    """Add ``delta`` flow on ``tree_edges`` and reprice them in place.

    Returns ``(edge_ids, old_floored)`` — the dirty edge ids and their
    *pre-injection* floored lengths, which the batched loop's
    snapshot-reuse test (:meth:`BatchCheck.may_touch`) needs: whether an
    edge lay on a snapshot shortest path is a question about the edge's
    length *at snapshot time*, not its repriced value.  None when the
    tree has no edges (the k=1 constraint is violated and nothing can
    be repriced).
    """
    edge_ids = np.fromiter(tree_edges, dtype=np.int64, count=len(tree_edges))
    if not edge_ids.size:
        return None
    old_floored = np.maximum(lengths[edge_ids], MIN_CSR_LENGTH)
    flows[edge_ids] += config.delta
    lengths[edge_ids] = _price(
        flows[edge_ids], capacities[edge_ids], config.alpha
    )
    oracle.update_lengths(edge_ids, lengths[edge_ids])
    return edge_ids, old_floored


def _serial_rounds(
    graph: Graph,
    oracle: SpreadingOracle,
    config: SpreadingMetricConfig,
    rng: random.Random,
    active: List[int],
    flows: np.ndarray,
    lengths: np.ndarray,
    capacities: np.ndarray,
    counters: Optional[PerfCounters],
    on_round=None,
    resume: Optional[MetricCheckpoint] = None,
    abort_check=None,
):
    """The seed's one-source-at-a-time round loop (reference engine)."""
    injections = resume.injections if resume is not None else 0
    rounds = resume.rounds if resume is not None else 0
    while active and rounds < config.max_rounds:
        _maybe_abort(
            abort_check, on_round, rng, flows, lengths, active,
            injections, rounds,
        )
        rounds += 1
        rng.shuffle(active)
        still_active = []
        for source in active:
            violation = oracle.violation_for(source, mode="first")
            if violation is None:
                continue  # retired: monotonicity keeps it satisfied
            _inject(
                oracle, config, flows, lengths, capacities,
                violation.tree_edges,
            )
            injections += 1
            if counters is not None:
                counters.injections += 1
            still_active.append(source)
        active[:] = still_active
        if on_round is not None:
            on_round(
                _round_state(rng, flows, lengths, active, injections, rounds),
                False,
            )
    return injections, rounds


def _native_rounds(
    graph: Graph,
    oracle: SpreadingOracle,
    config: SpreadingMetricConfig,
    rng: random.Random,
    active: List[int],
    flows: np.ndarray,
    lengths: np.ndarray,
    capacities: np.ndarray,
    counters: Optional[PerfCounters],
    kernel,
    on_round=None,
    resume: Optional[MetricCheckpoint] = None,
    abort_check=None,
):
    """The serial round loop with checks answered by the C kernel.

    The trajectory is exactly `_serial_rounds`' (same shuffles, same
    per-source first-violation verdicts, same injections); only *who*
    answers the query changes.  The oracle still owns the CSR metric —
    ``install_weights`` pins the floored lengths before the loop and
    ``update_lengths`` patches dirty edges in place after each
    injection, so the kernel (which reads the live CSR ``data`` array)
    always sees the current metric without any per-call copying.

    Records the ``kernel_seconds`` / ``python_overhead_seconds`` phase
    breakdown: time inside the compiled kernel vs everything else in the
    loop (shuffling, injections, numpy repricing, checkpointing).
    """
    injections = resume.injections if resume is not None else 0
    rounds = resume.rounds if resume is not None else 0
    kernel_seconds = 0.0
    loop_start = time.perf_counter()
    oracle.install_weights()
    while active and rounds < config.max_rounds:
        _maybe_abort(
            abort_check, on_round, rng, flows, lengths, active,
            injections, rounds,
        )
        rounds += 1
        rng.shuffle(active)
        still_active = []
        for source in active:
            tick = time.perf_counter()
            settled, violation = kernel.check(source)
            kernel_seconds += time.perf_counter() - tick
            if counters is not None:
                counters.dijkstra_calls += 1
                counters.dijkstra_sources += 1
                counters.nodes_settled += settled
            if violation is None:
                continue  # retired: monotonicity keeps it satisfied
            _inject(
                oracle, config, flows, lengths, capacities,
                violation.tree_edges,
            )
            injections += 1
            if counters is not None:
                counters.injections += 1
            still_active.append(source)
        active[:] = still_active
        if on_round is not None:
            on_round(
                _round_state(rng, flows, lengths, active, injections, rounds),
                False,
            )
    if counters is not None:
        total = time.perf_counter() - loop_start
        counters.add_phase("kernel_seconds", kernel_seconds)
        counters.add_phase(
            "python_overhead_seconds", max(0.0, total - kernel_seconds)
        )
    return injections, rounds


def _batched_rounds(
    graph: Graph,
    oracle: SpreadingOracle,
    config: SpreadingMetricConfig,
    rng: random.Random,
    active: List[int],
    flows: np.ndarray,
    lengths: np.ndarray,
    capacities: np.ndarray,
    counters: Optional[PerfCounters],
    pool: Optional[MetricWorkerPool] = None,
    on_round=None,
    resume: Optional[MetricCheckpoint] = None,
    abort_check=None,
):
    """Batched incremental round loop — bit-identical to `_serial_rounds`.

    Sources are still visited strictly in the shuffled order and
    injections applied one at a time, so the flow trajectory is exactly
    the serial one.  The wins come from *checking*: a chunk of upcoming
    sources shares one distance-limited Dijkstra snapshot, and a source's
    snapshot verdict is reused verbatim unless an earlier-in-chunk
    injection repriced an edge that lay on one of its snapshot shortest
    paths (:meth:`BatchCheck.may_touch`).  Reuse is exact, not
    heuristic: lengths only ever grow, so a repriced edge that was on
    no snapshot shortest path leaves the distance profile — and the
    canonical tree derived from it — unchanged float-for-float.

    With a ``pool`` (``engine='parallel'``) the snapshot itself is
    computed by worker processes over the shared CSR arrays and merged in
    source order; a None return (chunk too small, pool broken) drops to
    the in-process check.  Either way the snapshot is the same, so the
    engines stay bit-identical.
    """
    endpoints = graph.edge_endpoints()
    chunk_cap = max(
        _MIN_CHUNK, min(256, _MAX_CHUNK_ELEMENTS // max(1, graph.num_nodes))
    )
    if pool is not None:
        # Amortise dispatch overhead: let a pooled chunk grow to one
        # dispatch per round (split into per-worker slices), bounding
        # each worker's dense scratch rather than the whole chunk.
        # Chunk boundaries never change verdicts (the snapshot-reuse
        # test is exact), so this is purely a dispatch-economics knob.
        per_worker = max(1, _MAX_CHUNK_ELEMENTS // max(1, graph.num_nodes))
        chunk_cap = max(chunk_cap, min(4096, pool.workers * per_worker))
    chunk_size = _MIN_CHUNK
    injections = 0
    rounds = 0
    if resume is not None:
        injections = resume.injections
        rounds = resume.rounds
        if resume.chunk_size is not None:
            chunk_size = min(chunk_cap, max(_MIN_CHUNK, resume.chunk_size))
    while active and rounds < config.max_rounds:
        _maybe_abort(
            abort_check, on_round, rng, flows, lengths, active,
            injections, rounds, chunk_size,
        )
        rounds += 1
        if pool is not None:
            # Names the round for the fault-injection coordinates
            # (``round=`` conditions in a FaultPlan); a no-op otherwise.
            pool.begin_round(rounds)
        rng.shuffle(active)
        still_active: List[int] = []
        pos = 0
        while pos < len(active):
            chunk = active[pos : pos + chunk_size]
            pos += len(chunk)
            snapshot = None
            if pool is not None:
                snapshot = pool.batch_check(oracle, chunk, mode="first")
            if snapshot is None:
                snapshot = oracle.batch_check(chunk, mode="first")
            dirty_u_parts: List[np.ndarray] = []
            dirty_w_parts: List[np.ndarray] = []
            dirty_len_parts: List[np.ndarray] = []
            dirty_u: Optional[np.ndarray] = None
            dirty_w: Optional[np.ndarray] = None
            dirty_len: Optional[np.ndarray] = None
            chunk_injected = False
            for i, source in enumerate(chunk):
                if dirty_u_parts:
                    if dirty_u is None:
                        dirty_u = np.concatenate(dirty_u_parts)
                        dirty_w = np.concatenate(dirty_w_parts)
                        dirty_len = np.concatenate(dirty_len_parts)
                    touched = snapshot.may_touch(i, dirty_u, dirty_w, dirty_len)
                else:
                    touched = False
                if touched:
                    # A repriced edge lay on a snapshot shortest path of
                    # this source: fall back to a fresh (still
                    # distance-limited) check, which is exactly what the
                    # serial loop computes here.
                    violation = oracle.batch_check([source], mode="first").violations[0]
                    if counters is not None:
                        counters.recheck_sources += 1
                else:
                    violation = snapshot.violations[i]
                if violation is None:
                    if counters is not None and not touched:
                        counters.retired_free += 1
                    continue
                dirty = _inject(
                    oracle,
                    config,
                    flows,
                    lengths,
                    capacities,
                    violation.tree_edges,
                )
                injections += 1
                chunk_injected = True
                if counters is not None:
                    counters.injections += 1
                if dirty is not None:
                    dirty_ids, dirty_old = dirty
                    pair = endpoints[dirty_ids]
                    dirty_u_parts.append(pair[:, 0])
                    dirty_w_parts.append(pair[:, 1])
                    # An edge repriced twice in one chunk appends a
                    # second, staler entry; the first append already
                    # carries the true snapshot-time length, so the
                    # extra entry is merely conservative.
                    dirty_len_parts.append(dirty_old)
                    dirty_u = dirty_w = dirty_len = None
                still_active.append(source)
            if chunk_injected:
                chunk_size = _MIN_CHUNK
            else:
                chunk_size = min(chunk_cap, chunk_size * 2)
        active[:] = still_active
        if on_round is not None:
            on_round(
                _round_state(
                    rng, flows, lengths, active, injections, rounds, chunk_size
                ),
                False,
            )
    return injections, rounds


def _price(
    flows: np.ndarray, capacities: np.ndarray, alpha: float
) -> np.ndarray:
    """Edge pricing ``d(e) = exp(alpha f(e) / c(e)) - 1``."""
    return np.expm1(alpha * flows / capacities)
