"""The spreading-constraint oracle (Constraint (5) of the paper).

(P1) has a constraint for every node set; Claim 4 of Even et al. reduces
this to the O(n^2) family over shortest-path trees: for every node ``v``
and every ``k``,

    sum_{u in S(v,k)} s(u) * dist(v, u)  >=  g(s(S(v,k)))

where ``S(v, k)`` is the tree of the ``k`` nearest nodes to ``v`` under the
current metric.  (With unit sizes this is exactly the paper's form; the
size weighting generalises it via Equation (6).)

:class:`SpreadingOracle` answers, for a given metric: is everything
satisfied?  Which tree is the first / the most violated for a node?  And
what are the tree-cut coefficients ``delta(S(v,k), e)`` — the total node
size hanging below each tree edge — needed both for flow injection
(Algorithm 2) and for LP cutting planes (Equation (7)).

Two engines are provided: a vectorised ``scipy`` engine (CSR Dijkstra from
C, numpy prefix sums) and a pure-Python reference engine that grows the
tree incrementally and stops at the first violation.  They are
cross-checked in the test suite.

Batched engine
--------------
:meth:`SpreadingOracle.batch_check` / :meth:`violations_for_batch` answer
the same query for many sources with ONE ``scipy.csgraph.dijkstra`` call
(``indices=<all sources>``) and a single vectorised 2-D prefix-sum scan,
instead of one C round-trip per source.  Two exactness-preserving
optimisations make the batch cheap:

* **Distance-limited search.**  ``g`` is piecewise linear with slope at
  most ``2W`` (``W = sum of the level weights``), while every node beyond
  distance ``2W`` adds at least ``s(u) * 2W`` to the left-hand side — so
  extending a tree past radius ``2W`` can only shrink the violation gap:
  ``gap(k) <= gap(k_lim)`` for every prefix ``k`` beyond the last
  within-limit prefix ``k_lim``.  A Dijkstra stopped at ``limit = 2W``
  therefore yields the exact first/max violation, and certifies
  satisfaction, without settling the whole graph.
* **Cached floored CSR weights.**  The ``max(d, 1e-15)`` floor (scipy
  drops stored zeros) is folded into the cached CSR ``data`` array once
  per metric update — :meth:`update_lengths` rewrites only the dirty
  edges in place — instead of allocating an O(m) floored copy per source.

Per-source results are bit-identical to the serial path; the equivalence
is asserted in ``tests/test_batched_oracle.py``.

Canonical shortest-path trees
-----------------------------
Shortest-path distances are implementation-independent (every correct
Dijkstra computes the same float64 distance array for the same CSR,
because relaxation only ever takes ``min`` of left-to-right float sums),
but *predecessors* are not: among equal-length paths, scipy's heap, the
pure-Python heap and a C kernel each break ties differently.  All
engines therefore derive tree edges from the distance array alone: the
**canonical parent** of a settled node ``w`` is the neighbour ``v``
minimising ``(dist[v], v)`` lexicographically among those with
``dist[v] + d(v, w) == dist[w]`` in float arithmetic.  The Dijkstra
parent always qualifies, so a canonical parent always exists, and every
engine — scipy, pure Python, the native C kernel, pool workers —
extracts the exact same tree without replicating any heap's tie order.

The batched round loop's snapshot-reuse test is built on the same
principle: an edge ``(u, w)`` repriced after a snapshot can only affect
a source's verdict when it lay on *some* shortest path of that source's
snapshot — i.e. ``dist[u] + d_snap(u, w) == dist[w]`` (or symmetric) —
because lengths only grow, so a non-shortest edge that gets longer
still cannot enter any shortest path.  :meth:`BatchCheck.may_touch`
tests exactly that predicate against the snapshot distance matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.dijkstra import dijkstra_expansion
from repro.core.gfunc import spreading_bound_array
from repro.core.perf import PerfCounters
from repro.errors import InfeasibleError
from repro.htp.hierarchy import HierarchySpec
from repro.hypergraph.graph import Graph

#: Numerical slack when comparing constraint sides.
DEFAULT_TOL = 1e-9

#: Floor applied to edge lengths before the CSR Dijkstra: scipy's csgraph
#: drops stored zeros from sparse inputs, which would disconnect
#: zero-length edges (the LP starts from the all-zero metric).
MIN_CSR_LENGTH = 1e-15

#: Sub-round size cap for :meth:`SpreadingOracle.violations_for_batch` —
#: bounds the dense (sources x nodes) scratch matrices to ~30 MB.
MAX_BATCH_ELEMENTS = 4_000_000


@dataclass(frozen=True)
class Violation:
    """One violated spreading constraint.

    Attributes
    ----------
    source:
        The node ``v`` anchoring the shortest-path tree.
    k:
        Number of nodes in the violated tree ``S(v, k)``.
    nodes:
        The tree's nodes in nondecreasing ``(distance, id)`` order
        (``nodes[0] == source``).
    tree_edges:
        The ``k - 1`` edge ids of the canonical shortest-path tree;
        ``tree_edges[i - 1]`` joins ``nodes[i]`` to its canonical
        parent (see module docstring).
    lhs:
        ``sum s(u) dist(v, u)`` over the tree.
    rhs:
        ``g(s(S(v, k)))``.
    """

    source: int
    k: int
    nodes: Tuple[int, ...]
    tree_edges: Tuple[int, ...]
    lhs: float
    rhs: float

    @property
    def gap(self) -> float:
        """Violation magnitude ``rhs - lhs`` (> 0 for true violations)."""
        return self.rhs - self.lhs


@dataclass
class BatchCheck:
    """Snapshot result of one batched oracle sub-round.

    ``violations[i]`` is the first (or max) violation anchored at
    ``sources[i]`` under the metric at snapshot time, or None.  ``dist``
    is the ``(len(sources), num_nodes)`` distance matrix of the
    (distance-limited) Dijkstra; :meth:`may_touch` tests it against
    edges repriced *after* the snapshot: a snapshot verdict stays exact
    while no repriced edge lay on any snapshot shortest path — lengths
    only grow, so a non-shortest edge that lengthens still cannot enter
    a shortest path, and the distance array pins down exactly which
    edges were shortest.
    """

    sources: Tuple[int, ...]
    violations: List[Optional[Violation]]
    dist: np.ndarray

    def may_touch(
        self,
        index: int,
        dirty_u: np.ndarray,
        dirty_w: np.ndarray,
        dirty_len: np.ndarray,
    ) -> bool:
        """True when a repriced edge could affect source ``index``.

        ``dirty_u`` / ``dirty_w`` are parallel endpoint arrays of the
        repriced edges and ``dirty_len`` their *snapshot-time* floored
        lengths.  Edge ``(u, w)`` lay on a snapshot shortest path iff
        ``dist[u] + len == dist[w]`` (or symmetric) in exact float64 —
        the very comparison the Dijkstra relaxation performed.  The
        ``isfinite`` guards drop beyond-limit pairs, where
        ``inf + len == inf`` would match spuriously even though an edge
        between two beyond-limit nodes cannot influence a within-limit
        verdict.
        """
        row = self.dist[index]
        du = row[dirty_u]
        dw = row[dirty_w]
        return bool(
            np.any(
                (np.isfinite(du) & (du + dirty_len == dw))
                | (np.isfinite(dw) & (dw + dirty_len == du))
            )
        )


class SpreadingOracle:
    """Spreading-constraint queries for one graph and hierarchy spec.

    Answers, for the currently installed metric ``d``: is every spreading
    constraint (Constraint (5)) satisfied?  Which shortest-path tree
    ``S(v, k)`` is the first / most violated for a source ``v``?  And what
    are the tree-cut coefficients of Equation (6)?

    Parameters
    ----------
    graph : Graph
        The graph the metric lives on (shares node ids with the netlist).
    spec : HierarchySpec
        Hierarchy bounds supplying the right-hand side ``g``.
    engine : {'scipy', 'python'}, optional
        ``'scipy'`` answers queries with the CSR ``csgraph`` Dijkstra
        (vectorised, distance-limited); ``'python'`` is the incremental
        pure-Python reference.  Both produce identical verdicts.
    tol : float, optional
        Numerical slack when comparing constraint sides.
    counters : PerfCounters, optional
        Instrumentation sink; incremented on every query.
    manage_csr : bool, optional
        When True (default) the oracle owns the graph's shared CSR weight
        cache and (re)installs its floored metric before every query.
        Pool workers pass False: their CSR ``data`` array is a shared-
        memory view kept current by the coordinating process, and a local
        install would clobber it.  Externally-managed oracles must never
        call :meth:`set_lengths` / :meth:`update_lengths`.

    Notes
    -----
    **Engine equivalence guarantee.**  For a fixed metric, every query
    (``violation_for``, ``batch_check``, ``violations_for_batch``) returns
    bit-identical results across the ``scipy`` and ``python`` engines, for
    any batch split, and whether answered in-process or by a pool worker
    over the shared CSR arrays — asserted in
    ``tests/test_batched_oracle.py`` and ``tests/test_parallel_engine.py``.
    """

    def __init__(
        self,
        graph: Graph,
        spec: HierarchySpec,
        engine: str = "scipy",
        tol: float = DEFAULT_TOL,
        counters: Optional[PerfCounters] = None,
        manage_csr: bool = True,
    ) -> None:
        if engine not in ("scipy", "python"):
            raise ValueError(f"unknown engine {engine!r}")
        self._graph = graph
        self._spec = spec
        self._engine = engine
        self._tol = tol
        self._counters = counters
        self._manage_csr = manage_csr
        self._lengths = np.zeros(graph.num_edges, dtype=float)
        self._floored = np.full(graph.num_edges, MIN_CSR_LENGTH, dtype=float)
        self._csr_token: Optional[int] = None
        self._version = 0
        self._sizes = graph.node_sizes()
        self._unit_sizes = bool(np.all(self._sizes == 1.0))
        # The exactness radius of the distance-limited batch Dijkstra:
        # g' <= 2 * sum(weights) everywhere (see module docstring).
        self._limit = 2.0 * float(np.sum(spec.weights))
        self._entry_edge: Optional[np.ndarray] = None
        self._unit_bounds: Optional[np.ndarray] = None
        if self._unit_sizes:
            self._unit_bounds = spreading_bound_array(
                spec, np.arange(1.0, graph.num_nodes + 1.0)
            )
        oversized = [
            v
            for v in graph.nodes()
            if graph.node_size(v) > spec.capacity(0) + tol
        ]
        if oversized:
            raise InfeasibleError(
                f"nodes {oversized[:5]} are larger than the leaf capacity "
                f"C_0 = {spec.capacity(0)}; constraint (5) at k = 1 can "
                f"never be satisfied"
            )
        if engine == "scipy":
            # Materialise the CSR cache once.
            graph.csr_structure()

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The underlying graph."""
        return self._graph

    @property
    def spec(self) -> HierarchySpec:
        """The hierarchy spec providing ``g``."""
        return self._spec

    @property
    def version(self) -> int:
        """Metric generation counter (bumped by every length update)."""
        return self._version

    @property
    def counters(self) -> Optional[PerfCounters]:
        """The instrumentation sink (settable; pool workers swap in a
        fresh struct per task so per-task deltas can be shipped back)."""
        return self._counters

    @counters.setter
    def counters(self, counters: Optional[PerfCounters]) -> None:
        self._counters = counters

    @property
    def tol(self) -> float:
        """Numerical slack when comparing constraint sides."""
        return self._tol

    def set_lengths(self, lengths: Sequence[float]) -> None:
        """Install a metric (copied); lengths are indexed by edge id."""
        if not self._manage_csr:
            raise RuntimeError(
                "this oracle's CSR weights are externally managed "
                "(manage_csr=False); the coordinating process owns the "
                "metric"
            )
        arr = np.asarray(lengths, dtype=float)
        if arr.shape != (self._graph.num_edges,):
            raise ValueError(
                f"expected {self._graph.num_edges} edge lengths, got "
                f"{arr.shape}"
            )
        self._lengths = arr.copy()
        # Fold the scipy zero-dropping floor in once per metric install
        # instead of once per source query.
        self._floored = np.maximum(self._lengths, MIN_CSR_LENGTH)
        self._csr_token = None  # re-install lazily on the next query
        self._version += 1

    def update_lengths(
        self, edge_ids: Sequence[int], values: Sequence[float]
    ) -> None:
        """Reprice ``edge_ids`` in place (the post-injection fast path).

        Equivalent to ``set_lengths`` with only those entries changed,
        but O(k) instead of O(m): the cached metric, its floored copy and
        the shared CSR ``data`` slots are all patched in place.
        """
        if not self._manage_csr:
            raise RuntimeError(
                "this oracle's CSR weights are externally managed "
                "(manage_csr=False); the coordinating process owns the "
                "metric"
            )
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        values = np.asarray(values, dtype=float)
        self._lengths[edge_ids] = values
        floored = np.maximum(values, MIN_CSR_LENGTH)
        self._floored[edge_ids] = floored
        if (
            self._engine == "scipy"
            and self._csr_token is not None
            and self._csr_token == self._graph.csr_weights_token
        ):
            # We own the CSR cache: patch just the dirty slots.
            self._graph.update_csr_weights(edge_ids, floored)
            self._csr_token = self._graph.csr_weights_token
        if self._counters is not None:
            self._counters.edges_repriced += int(edge_ids.size)
        self._version += 1

    def lengths(self) -> np.ndarray:
        """The currently installed metric (copy)."""
        return self._lengths.copy()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def violation_for(
        self, source: int, mode: str = "first"
    ) -> Optional[Violation]:
        """The first (or most) violated tree anchored at ``source``.

        ``mode='first'`` returns the smallest violated ``k`` (what
        Algorithm 2 injects on); ``mode='max'`` returns the ``k`` with the
        largest gap (what the LP cutting plane wants).  None when all
        constraints at ``source`` hold.
        """
        if mode not in ("first", "max"):
            raise ValueError(f"unknown mode {mode!r}")
        if self._engine == "python" and mode == "first":
            return self._python_first_violation(source)
        return self._scipy_violation(source, mode)

    def all_violations(
        self, sources: Optional[Sequence[int]] = None, mode: str = "max"
    ) -> List[Violation]:
        """Violations over ``sources`` (all nodes by default), one per node."""
        result = []
        nodes = sources if sources is not None else range(self._graph.num_nodes)
        for v in nodes:
            violation = self.violation_for(v, mode=mode)
            if violation is not None:
                result.append(violation)
        return result

    def is_feasible(self, sources: Optional[Sequence[int]] = None) -> bool:
        """True when no spreading constraint is violated."""
        nodes = sources if sources is not None else range(self._graph.num_nodes)
        return all(self.violation_for(v) is None for v in nodes)

    # ------------------------------------------------------------------
    # Batched oracle (the Algorithm-2 hot path)
    # ------------------------------------------------------------------
    def violations_for_batch(
        self, sources: Sequence[int], mode: str = "first"
    ) -> List[Optional[Violation]]:
        """Per-source verdicts for ``sources``, batched.

        Issues one distance-limited CSR Dijkstra per sub-round (a bounded
        slice of ``sources``) and vectorises the violation scan across
        the whole sub-round; results are bit-identical to calling
        :meth:`violation_for` per source under the same metric.
        """
        if mode not in ("first", "max"):
            raise ValueError(f"unknown mode {mode!r}")
        sources = [int(v) for v in sources]
        chunk = max(1, MAX_BATCH_ELEMENTS // max(1, self._graph.num_nodes))
        verdicts: List[Optional[Violation]] = []
        for start in range(0, len(sources), chunk):
            check = self.batch_check(sources[start : start + chunk], mode=mode)
            verdicts.extend(check.violations)
        return verdicts

    def batch_check(
        self, sources: Sequence[int], mode: str = "first"
    ) -> BatchCheck:
        """One batched sub-round: verdicts plus the distance matrix.

        The caller sizes the batch; memory scales as
        ``len(sources) * num_nodes`` doubles.  The distance matrix is
        what the incremental round loop needs to retire sources whose
        snapshot shortest paths avoided every edge dirtied after the
        snapshot (:meth:`BatchCheck.may_touch`).
        """
        from scipy.sparse.csgraph import dijkstra as csgraph_dijkstra

        sources = [int(v) for v in sources]
        matrix = self._csr_matrix()
        dist = csgraph_dijkstra(
            matrix,
            directed=False,
            indices=sources,
            limit=self._limit,
        )
        dist = np.atleast_2d(dist)
        if self._counters is not None:
            self._counters.dijkstra_calls += 1
            self._counters.dijkstra_sources += len(sources)
            self._counters.nodes_settled += int(np.isfinite(dist).sum())
            self._counters.batch_checks += 1
            self._counters.batch_sources += len(sources)
        violations = self._scan_batch(sources, dist, mode)
        return BatchCheck(
            sources=tuple(sources),
            violations=violations,
            dist=dist,
        )

    def _scan_batch(
        self,
        sources: List[int],
        dist: np.ndarray,
        mode: str,
    ) -> List[Optional[Violation]]:
        """Vectorised violation scan over a batch's distance matrix.

        Unreachable / beyond-limit entries are ``inf``: their cumulative
        weighted distance is ``inf`` so their gap is ``-inf`` — never
        flagged, exactly matching the serial path (which drops them) plus
        the distance-limit certificate (prefixes past the limit only
        shrink the gap).
        """
        stable_order: Optional[np.ndarray] = None
        if self._unit_sizes:
            # Unit sizes: the cumulative size of the k-prefix is k
            # regardless of tie order, so plain value sorting suffices
            # for the verdict and the precomputed g(1..n) is exact.
            dist_sorted = np.sort(dist, axis=1)
            cum_weighted = np.cumsum(dist_sorted, axis=1)
            bounds = self._unit_bounds
            gaps = bounds[None, :] - cum_weighted
        else:
            stable_order = np.argsort(dist, axis=1, kind="stable")
            dist_sorted = np.take_along_axis(dist, stable_order, axis=1)
            sizes_ordered = self._sizes[stable_order]
            cum_sizes = np.cumsum(sizes_ordered, axis=1)
            cum_weighted = np.cumsum(sizes_ordered * dist_sorted, axis=1)
            bounds = spreading_bound_array(self._spec, cum_sizes)
            gaps = bounds - cum_weighted
        violated = gaps > self._tol
        any_violated = violated.any(axis=1)

        verdicts: List[Optional[Violation]] = []
        for i, source in enumerate(sources):
            if not any_violated[i]:
                verdicts.append(None)
                continue
            if mode == "first":
                pick = int(np.argmax(violated[i]))
            else:
                masked = np.where(violated[i], gaps[i], -np.inf)
                pick = int(np.argmax(masked))
            k = pick + 1
            if stable_order is None:
                order = np.argsort(dist[i], kind="stable")
            else:
                order = stable_order[i]
            nodes = tuple(int(v) for v in order[:k])
            tree_edges = self._canonical_tree_edges(nodes, dist[i])
            if self._unit_sizes:
                rhs = float(bounds[pick])
            else:
                rhs = float(bounds[i, pick])
            verdicts.append(
                Violation(
                    source=source,
                    k=k,
                    nodes=nodes,
                    tree_edges=tree_edges,
                    lhs=float(cum_weighted[i, pick]),
                    rhs=rhs,
                )
            )
        return verdicts

    def tree_cut_coefficients(
        self, violation: Violation
    ) -> List[Tuple[int, float]]:
        """``(edge_id, delta(S, e))`` pairs for a violated tree.

        ``delta(S, e)`` is the total node size of the subtree hanging below
        edge ``e`` (Equation (6)): removing ``e`` disconnects exactly those
        nodes from the source.  Satisfies the identity
        ``sum_e d(e) * delta(S, e) == lhs``.
        """
        nodes = violation.nodes
        tree_edges = violation.tree_edges
        index_of = {node: i for i, node in enumerate(nodes)}
        # parent_of[i] = index of the parent of nodes[i] in the tree.
        subtree = [float(self._sizes[node]) for node in nodes]
        coeffs: List[Tuple[int, float]] = []
        # Each tree edge connects nodes[i] (i >= 1, in settle order) to its
        # parent; accumulate subtree sizes from the farthest node inward.
        parent_index: List[int] = [0] * len(nodes)
        for i, edge_id in enumerate(tree_edges, start=1):
            u, w = self._graph.edge(edge_id)
            child = nodes[i]
            parent = w if u == child else u
            parent_index[i] = index_of[parent]
        for i in range(len(nodes) - 1, 0, -1):
            subtree[parent_index[i]] += subtree[i]
        for i, edge_id in enumerate(tree_edges, start=1):
            coeffs.append((edge_id, subtree[i]))
        return coeffs

    # ------------------------------------------------------------------
    # scipy engine
    # ------------------------------------------------------------------
    def install_weights(self):
        """Ensure the floored metric is installed in the CSR cache.

        Returns the ready-to-query CSR matrix.  The pool coordinator
        calls this before fanning a batch out so that workers (who read
        the same ``data`` array through shared memory) see the current
        metric; it is a no-op when this oracle's weights are already the
        installed generation.
        """
        return self._csr_matrix()

    def reinstall_weights(self):
        """Force a full re-install of the floored metric into the CSR cache.

        The repair path of the fault-tolerant pool: when a worker has
        scribbled on the shared CSR ``data`` array (detected by the
        coordinator's dispatch checksum), this rewrites every slot from
        the oracle's private ``_floored`` copy — the coordinator's
        metric is the single source of truth, so the shared view is
        restored exactly.  Returns the repaired CSR matrix.
        """
        if not self._manage_csr:
            raise RuntimeError(
                "this oracle's CSR weights are externally managed "
                "(manage_csr=False); only the coordinating process may "
                "repair them"
            )
        self._csr_token = None
        return self._csr_matrix()

    def _csr_matrix(self):
        """The shared CSR matrix with this oracle's floored metric installed.

        The graph's weight token detects other writers (a second oracle,
        a test poking ``set_csr_weights``); only then is the full O(m)
        re-install paid.  Externally-managed oracles (``manage_csr=False``,
        the pool workers) never install — their ``data`` array is kept
        current by the coordinating process.
        """
        if not self._manage_csr:
            matrix, _slots = self._graph.csr_structure()
            return matrix
        if self._csr_token != self._graph.csr_weights_token:
            matrix = self._graph.set_csr_weights(self._floored)
            self._csr_token = self._graph.csr_weights_token
            return matrix
        matrix, _slots = self._graph.csr_structure()
        return matrix

    def _scipy_violation(self, source: int, mode: str) -> Optional[Violation]:
        from scipy.sparse.csgraph import dijkstra as csgraph_dijkstra

        matrix = self._csr_matrix()
        dist = csgraph_dijkstra(
            matrix,
            directed=False,
            indices=source,
        )
        if self._counters is not None:
            self._counters.dijkstra_calls += 1
            self._counters.dijkstra_sources += 1
            self._counters.nodes_settled += int(np.isfinite(dist).sum())
        reachable = np.flatnonzero(np.isfinite(dist))
        order = reachable[np.argsort(dist[reachable], kind="stable")]
        return self._violation_from_profile(source, order, dist, mode)

    def _violation_from_profile(
        self,
        source: int,
        order: np.ndarray,
        dist: np.ndarray,
        mode: str,
    ) -> Optional[Violation]:
        sizes_ordered = self._sizes[order]
        cum_sizes = np.cumsum(sizes_ordered)
        cum_weighted_dist = np.cumsum(sizes_ordered * dist[order])
        bounds = spreading_bound_array(self._spec, cum_sizes)
        gaps = bounds - cum_weighted_dist
        violated = np.flatnonzero(gaps > self._tol)
        if violated.size == 0:
            return None
        if mode == "first":
            pick = int(violated[0])
        else:
            pick = int(violated[np.argmax(gaps[violated])])
        k = pick + 1
        nodes = tuple(int(v) for v in order[:k])
        tree_edges = self._canonical_tree_edges(nodes, dist)
        return Violation(
            source=source,
            k=k,
            nodes=nodes,
            tree_edges=tree_edges,
            lhs=float(cum_weighted_dist[pick]),
            rhs=float(bounds[pick]),
        )

    def _entry_edges(self) -> np.ndarray:
        """``entry_edge[j]`` = edge id stored at CSR ``data`` position ``j``.

        The inverse of the graph's CSR slot table, built once: each
        undirected edge occupies two data slots, and both map back to
        the same edge id.  Lets the canonical-parent scan translate a
        CSR row position straight into an edge id.
        """
        if self._entry_edge is None:
            matrix, slots = self._graph.csr_structure()
            entry = np.empty(matrix.nnz, dtype=np.int64)
            ids = np.arange(slots.shape[0], dtype=np.int64)
            entry[slots[:, 0]] = ids
            entry[slots[:, 1]] = ids
            self._entry_edge = entry
        return self._entry_edge

    def _canonical_tree_edges(
        self, nodes: Tuple[int, ...], dist: np.ndarray
    ) -> Tuple[int, ...]:
        """Tree edges via canonical parents over the floored CSR metric.

        For each non-source node ``w`` the parent is the neighbour ``v``
        minimising ``(dist[v], v)`` lexicographically among those with
        ``dist[v] + d(v, w) == dist[w]`` exactly in float64; the
        Dijkstra parent always qualifies, so the candidate set is never
        empty.  Because floored lengths are strictly positive, the
        parent settles strictly before ``w`` and therefore precedes it
        in the ``(distance, id)`` node order.
        """
        matrix, _slots = self._graph.csr_structure()
        entry_edge = self._entry_edges()
        indptr = np.asarray(matrix.indptr)
        indices = np.asarray(matrix.indices)
        data = np.asarray(matrix.data)
        # One vectorised pass over the concatenated CSR neighbourhoods of
        # every non-source prefix node (a per-node Python loop here costs
        # more than the Dijkstra itself on large prefixes).
        heads = np.asarray(nodes[1:], dtype=np.int64)
        starts = indptr[heads].astype(np.int64)
        counts = (indptr[heads + 1] - starts).astype(np.int64)
        if np.any(counts == 0):  # pragma: no cover - no tree possible
            bad = heads[np.flatnonzero(counts == 0)[0]]
            raise RuntimeError(
                f"node {bad} has no incident edges; cannot be in a "
                f"shortest-path tree"
            )
        total = int(counts.sum())
        bounds = np.cumsum(counts)
        # positions[j] walks each head's CSR row in order: start + offset.
        owner = np.repeat(np.arange(heads.size), counts)
        offsets = np.arange(total) - np.repeat(bounds - counts, counts)
        positions = np.repeat(starts, counts) + offsets
        nbrs = indices[positions]
        dn = dist[nbrs]
        target = np.repeat(dist[heads], counts)
        on_path = np.isfinite(dn) & (dn + data[positions] == target)
        # Rank candidates (per owner) by the canonical (dist, id) key;
        # off-path entries sort behind every on-path one, so a head whose
        # candidate set is empty — possible only when shared CSR state
        # was scribbled between the Dijkstra and this scan (the chaos
        # corruption fault) — degrades to a structurally valid
        # placeholder parent.  The dispatch checksum discards such
        # verdicts and re-runs cleanly after repair, exactly as with the
        # old predecessor-based extraction.
        order = np.lexsort((nbrs, dn, ~on_path, owner))
        first = np.searchsorted(owner[order], np.arange(heads.size))
        best = order[first]
        return tuple(int(e) for e in entry_edge[positions[best]])

    # ------------------------------------------------------------------
    # pure-Python engine (reference; stops at the first violation)
    # ------------------------------------------------------------------
    def _python_first_violation(self, source: int) -> Optional[Violation]:
        """Incremental first-violation scan, bit-identical to scipy.

        Nodes are consumed from the heap expansion in *plateau* buffers:
        settle order within one distance value is heap-dependent, so
        equal-distance pops are buffered and flushed in node-id order
        once a strictly larger distance pops (heap pops are
        nondecreasing, so the plateau is complete by then).  The flushed
        stream is therefore exactly the ``(distance, id)`` stable-sort
        order of the vectorised engine, and the running sums below
        reproduce its ``cumsum`` results addition for addition.  The
        expansion runs over the same floored lengths as the CSR engine
        so distances — and hence verdicts — match bitwise.
        """
        capacities = self._spec.capacities
        if self._counters is not None:
            self._counters.dijkstra_calls += 1
            self._counters.dijkstra_sources += 1
        lengths = self._floored
        dist_map: dict = {}
        processed: List[int] = []
        cum_size = 0.0
        lhs = 0.0

        def scan_plateau(plateau: List[int]) -> Optional[Violation]:
            nonlocal cum_size, lhs
            for w in sorted(plateau):
                processed.append(w)
                size = float(self._sizes[w])
                cum_size += size
                lhs += size * dist_map[w]
                if cum_size <= capacities[0]:
                    continue  # g = 0: trivially satisfied
                rhs = float(
                    spreading_bound_array(self._spec, np.array([cum_size]))[0]
                )
                if rhs - lhs > self._tol:
                    return Violation(
                        source=source,
                        k=len(processed),
                        nodes=tuple(processed),
                        tree_edges=self._canonical_tree_edges_py(
                            processed, dist_map, lengths
                        ),
                        lhs=lhs,
                        rhs=rhs,
                    )
            return None

        plateau: List[int] = []
        plateau_dist = -1.0
        for node, node_dist, _edge_id, _parent in dijkstra_expansion(
            self._graph, source, lengths
        ):
            if plateau and node_dist > plateau_dist:
                found = scan_plateau(plateau)
                if found is not None:
                    return found
                plateau = []
            plateau_dist = node_dist
            plateau.append(node)
            dist_map[node] = node_dist
        return scan_plateau(plateau)

    def _canonical_tree_edges_py(
        self,
        nodes: Sequence[int],
        dist_map: dict,
        lengths: np.ndarray,
    ) -> Tuple[int, ...]:
        """Adjacency-list twin of :meth:`_canonical_tree_edges`.

        ``dist_map`` holds the distances of every node settled so far;
        unsettled neighbours are correctly excluded because their final
        distance is at least the current plateau's, so they can never
        satisfy ``dist[v] + d(v, w) == dist[w]`` with positive lengths.
        """
        tree_edges: List[int] = []
        for w in nodes[1:]:
            target = dist_map[w]
            best: Optional[Tuple[float, int]] = None
            best_edge = -1
            for v, edge_id in self._graph.neighbors(w):
                dv = dist_map.get(v)
                if dv is None:
                    continue
                if dv + float(lengths[edge_id]) == target:
                    key = (dv, v)
                    if best is None or key < best:
                        best = key
                        best_edge = edge_id
            if best is None:  # pragma: no cover - structural invariant
                raise RuntimeError(
                    f"no canonical parent for node {w} at dist {target!r}"
                )
            tree_edges.append(int(best_edge))
        return tuple(tree_edges)
