"""The spreading-constraint oracle (Constraint (5) of the paper).

(P1) has a constraint for every node set; Claim 4 of Even et al. reduces
this to the O(n^2) family over shortest-path trees: for every node ``v``
and every ``k``,

    sum_{u in S(v,k)} s(u) * dist(v, u)  >=  g(s(S(v,k)))

where ``S(v, k)`` is the tree of the ``k`` nearest nodes to ``v`` under the
current metric.  (With unit sizes this is exactly the paper's form; the
size weighting generalises it via Equation (6).)

:class:`SpreadingOracle` answers, for a given metric: is everything
satisfied?  Which tree is the first / the most violated for a node?  And
what are the tree-cut coefficients ``delta(S(v,k), e)`` — the total node
size hanging below each tree edge — needed both for flow injection
(Algorithm 2) and for LP cutting planes (Equation (7)).

Two engines are provided: a vectorised ``scipy`` engine (CSR Dijkstra from
C, numpy prefix sums) and a pure-Python reference engine that grows the
tree incrementally and stops at the first violation.  They are
cross-checked in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.dijkstra import dijkstra_expansion
from repro.core.gfunc import spreading_bound_array
from repro.errors import InfeasibleError
from repro.htp.hierarchy import HierarchySpec
from repro.hypergraph.graph import Graph

#: Numerical slack when comparing constraint sides.
DEFAULT_TOL = 1e-9


@dataclass(frozen=True)
class Violation:
    """One violated spreading constraint.

    Attributes
    ----------
    source:
        The node ``v`` anchoring the shortest-path tree.
    k:
        Number of nodes in the violated tree ``S(v, k)``.
    nodes:
        The tree's nodes in settle order (``nodes[0] == source``).
    tree_edges:
        The ``k - 1`` edge ids of the shortest-path tree.
    lhs:
        ``sum s(u) dist(v, u)`` over the tree.
    rhs:
        ``g(s(S(v, k)))``.
    """

    source: int
    k: int
    nodes: Tuple[int, ...]
    tree_edges: Tuple[int, ...]
    lhs: float
    rhs: float

    @property
    def gap(self) -> float:
        """Violation magnitude ``rhs - lhs`` (> 0 for true violations)."""
        return self.rhs - self.lhs


class SpreadingOracle:
    """Spreading-constraint queries for one graph and hierarchy spec."""

    def __init__(
        self,
        graph: Graph,
        spec: HierarchySpec,
        engine: str = "scipy",
        tol: float = DEFAULT_TOL,
    ) -> None:
        if engine not in ("scipy", "python"):
            raise ValueError(f"unknown engine {engine!r}")
        self._graph = graph
        self._spec = spec
        self._engine = engine
        self._tol = tol
        self._lengths = np.zeros(graph.num_edges, dtype=float)
        self._sizes = graph.node_sizes()
        oversized = [
            v
            for v in graph.nodes()
            if graph.node_size(v) > spec.capacity(0) + tol
        ]
        if oversized:
            raise InfeasibleError(
                f"nodes {oversized[:5]} are larger than the leaf capacity "
                f"C_0 = {spec.capacity(0)}; constraint (5) at k = 1 can "
                f"never be satisfied"
            )
        if engine == "scipy":
            # Materialise the CSR cache once.
            graph.csr_structure()

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The underlying graph."""
        return self._graph

    @property
    def spec(self) -> HierarchySpec:
        """The hierarchy spec providing ``g``."""
        return self._spec

    def set_lengths(self, lengths: Sequence[float]) -> None:
        """Install a metric (copied); lengths are indexed by edge id."""
        arr = np.asarray(lengths, dtype=float)
        if arr.shape != (self._graph.num_edges,):
            raise ValueError(
                f"expected {self._graph.num_edges} edge lengths, got "
                f"{arr.shape}"
            )
        self._lengths = arr.copy()

    def lengths(self) -> np.ndarray:
        """The currently installed metric (copy)."""
        return self._lengths.copy()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def violation_for(
        self, source: int, mode: str = "first"
    ) -> Optional[Violation]:
        """The first (or most) violated tree anchored at ``source``.

        ``mode='first'`` returns the smallest violated ``k`` (what
        Algorithm 2 injects on); ``mode='max'`` returns the ``k`` with the
        largest gap (what the LP cutting plane wants).  None when all
        constraints at ``source`` hold.
        """
        if mode not in ("first", "max"):
            raise ValueError(f"unknown mode {mode!r}")
        if self._engine == "python" and mode == "first":
            return self._python_first_violation(source)
        return self._scipy_violation(source, mode)

    def all_violations(
        self, sources: Optional[Sequence[int]] = None, mode: str = "max"
    ) -> List[Violation]:
        """Violations over ``sources`` (all nodes by default), one per node."""
        result = []
        nodes = sources if sources is not None else range(self._graph.num_nodes)
        for v in nodes:
            violation = self.violation_for(v, mode=mode)
            if violation is not None:
                result.append(violation)
        return result

    def is_feasible(self, sources: Optional[Sequence[int]] = None) -> bool:
        """True when no spreading constraint is violated."""
        nodes = sources if sources is not None else range(self._graph.num_nodes)
        return all(self.violation_for(v) is None for v in nodes)

    def tree_cut_coefficients(
        self, violation: Violation
    ) -> List[Tuple[int, float]]:
        """``(edge_id, delta(S, e))`` pairs for a violated tree.

        ``delta(S, e)`` is the total node size of the subtree hanging below
        edge ``e`` (Equation (6)): removing ``e`` disconnects exactly those
        nodes from the source.  Satisfies the identity
        ``sum_e d(e) * delta(S, e) == lhs``.
        """
        nodes = violation.nodes
        tree_edges = violation.tree_edges
        index_of = {node: i for i, node in enumerate(nodes)}
        # parent_of[i] = index of the parent of nodes[i] in the tree.
        subtree = [float(self._sizes[node]) for node in nodes]
        coeffs: List[Tuple[int, float]] = []
        # Each tree edge connects nodes[i] (i >= 1, in settle order) to its
        # parent; accumulate subtree sizes from the farthest node inward.
        parent_index: List[int] = [0] * len(nodes)
        for i, edge_id in enumerate(tree_edges, start=1):
            u, w = self._graph.edge(edge_id)
            child = nodes[i]
            parent = w if u == child else u
            parent_index[i] = index_of[parent]
        for i in range(len(nodes) - 1, 0, -1):
            subtree[parent_index[i]] += subtree[i]
        for i, edge_id in enumerate(tree_edges, start=1):
            coeffs.append((edge_id, subtree[i]))
        return coeffs

    # ------------------------------------------------------------------
    # scipy engine
    # ------------------------------------------------------------------
    def _scipy_violation(self, source: int, mode: str) -> Optional[Violation]:
        from scipy.sparse.csgraph import dijkstra as csgraph_dijkstra

        # Floor at a tiny positive value: scipy's csgraph drops stored
        # zeros from sparse inputs, which would disconnect zero-length
        # edges (the LP starts from the all-zero metric).
        weights = np.maximum(self._lengths, 1e-15)
        matrix = self._graph.set_csr_weights(weights)
        dist, predecessors = csgraph_dijkstra(
            matrix,
            directed=False,
            indices=source,
            return_predecessors=True,
        )
        reachable = np.flatnonzero(np.isfinite(dist))
        order = reachable[np.argsort(dist[reachable], kind="stable")]
        return self._violation_from_profile(
            source, order, dist, predecessors, mode
        )

    def _violation_from_profile(
        self,
        source: int,
        order: np.ndarray,
        dist: np.ndarray,
        predecessors: Optional[np.ndarray],
        mode: str,
    ) -> Optional[Violation]:
        sizes_ordered = self._sizes[order]
        cum_sizes = np.cumsum(sizes_ordered)
        cum_weighted_dist = np.cumsum(sizes_ordered * dist[order])
        bounds = spreading_bound_array(self._spec, cum_sizes)
        gaps = bounds - cum_weighted_dist
        violated = np.flatnonzero(gaps > self._tol)
        if violated.size == 0:
            return None
        if mode == "first":
            pick = int(violated[0])
        else:
            pick = int(violated[np.argmax(gaps[violated])])
        k = pick + 1
        nodes = tuple(int(v) for v in order[:k])
        tree_edges = self._tree_edges_from_predecessors(
            nodes, predecessors
        )
        return Violation(
            source=source,
            k=k,
            nodes=nodes,
            tree_edges=tree_edges,
            lhs=float(cum_weighted_dist[pick]),
            rhs=float(bounds[pick]),
        )

    def _tree_edges_from_predecessors(
        self, nodes: Tuple[int, ...], predecessors: Optional[np.ndarray]
    ) -> Tuple[int, ...]:
        tree_edges: List[int] = []
        for node in nodes[1:]:
            parent = int(predecessors[node])
            edge_id = self._graph.edge_id(parent, node)
            if edge_id is None:  # pragma: no cover - structural invariant
                raise RuntimeError(
                    f"predecessor edge ({parent},{node}) missing from graph"
                )
            tree_edges.append(edge_id)
        return tuple(tree_edges)

    # ------------------------------------------------------------------
    # pure-Python engine (reference; stops at the first violation)
    # ------------------------------------------------------------------
    def _python_first_violation(self, source: int) -> Optional[Violation]:
        capacities = self._spec.capacities
        nodes: List[int] = []
        tree_edges: List[int] = []
        cum_size = 0.0
        lhs = 0.0
        for node, node_dist, edge_id, _parent in dijkstra_expansion(
            self._graph, source, self._lengths
        ):
            nodes.append(node)
            if edge_id >= 0:
                tree_edges.append(edge_id)
            size = float(self._sizes[node])
            cum_size += size
            lhs += size * node_dist
            if cum_size <= capacities[0]:
                continue  # g = 0: trivially satisfied
            rhs = float(
                spreading_bound_array(self._spec, np.array([cum_size]))[0]
            )
            if rhs - lhs > self._tol:
                return Violation(
                    source=source,
                    k=len(nodes),
                    nodes=tuple(nodes),
                    tree_edges=tuple(tree_edges),
                    lhs=lhs,
                    rhs=rhs,
                )
        return None
