"""ρ-separators and separator-derived multiway partitions.

Section 2.2 of the paper builds on Even, Naor, Rao & Schieber's
ρ-separator problem: partition a graph into connected pieces of total
node size at most ``ρ * s(V)`` while minimising the cut.  The paper also
notes that the branching bounds ``K_l`` can be ignored in the LP because
"we can induce a multiway partition with at most K_l parts from a
ρ-separator" — that induction (first-fit-decreasing packing of separator
pieces into K bins) is implemented here too.

The separator uses the same machinery as Algorithm 3: compute a spreading
metric for the single-level hierarchy ``C = (rho * s(V), s(V))`` and
repeatedly carve low-cut pieces within the size bound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.construct import find_cut
from repro.core.spreading_metric import (
    SpreadingMetricConfig,
    compute_spreading_metric,
)
from repro.errors import InfeasibleError, PartitionError
from repro.htp.hierarchy import HierarchySpec
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.graph import Graph
from repro.hypergraph.hypergraph import Hypergraph


@dataclass
class SeparatorResult:
    """Pieces of a ρ-separator plus its cut capacity.

    ``pieces`` are sorted global node-id lists, each of total size at
    most ``rho * s(V)``; ``cut_capacity`` counts each net crossing any
    piece boundary once (by capacity).
    """

    pieces: List[List[int]]
    cut_capacity: float
    rho: float


def separator_spec(total_size: float, rho: float) -> HierarchySpec:
    """The single-level hierarchy encoding the ρ-separator size bound."""
    if not 0 < rho < 1:
        raise PartitionError("rho must be in (0, 1)")
    cap = rho * total_size
    if cap < 1:
        raise InfeasibleError(
            f"rho = {rho} allows pieces of size {cap:g} < 1"
        )
    return HierarchySpec(
        capacities=(float(cap), float(total_size)),
        branching=(max(2, -(-int(total_size) // max(1, int(cap)))),),
        weights=(1.0,),
    )


def rho_separator(
    hypergraph: Hypergraph,
    rho: float,
    graph: Optional[Graph] = None,
    lengths: Optional[Sequence[float]] = None,
    rng: Optional[random.Random] = None,
    metric_config: Optional[SpreadingMetricConfig] = None,
    find_cut_restarts: int = 2,
) -> SeparatorResult:
    """Compute a ρ-separator of a netlist.

    A spreading metric for the single-level bound is computed when
    ``lengths`` is not supplied; pieces are then carved greedily with
    :func:`repro.core.construct.find_cut` (MST-subtree + Prim, window
    ``[rho s(V) / 2, rho s(V)]``) until everything is placed.
    """
    rng = rng or random.Random(0)
    if graph is None:
        graph = to_graph(hypergraph)
    total = hypergraph.total_size()
    spec = separator_spec(total, rho)
    if lengths is None:
        metric = compute_spreading_metric(
            graph, spec, metric_config or SpreadingMetricConfig(), rng=rng
        )
        lengths = metric.lengths

    upper = rho * total
    lower = upper / 2.0
    remaining = list(hypergraph.nodes())
    remaining_size = total
    pieces: List[List[int]] = []
    while remaining:
        if remaining_size <= upper:
            pieces.append(sorted(remaining))
            break
        piece = find_cut(
            hypergraph,
            graph,
            lengths,
            remaining,
            lower,
            upper,
            rng,
            restarts=find_cut_restarts,
        )
        pieces.append(sorted(piece))
        piece_set = set(piece)
        remaining = [v for v in remaining if v not in piece_set]
        remaining_size -= sum(hypergraph.node_size(v) for v in piece)

    piece_of = {}
    for index, piece in enumerate(pieces):
        for v in piece:
            piece_of[v] = index
    cut = 0.0
    for net_id, pins in enumerate(hypergraph.nets()):
        first = piece_of[pins[0]]
        if any(piece_of[v] != first for v in pins[1:]):
            cut += hypergraph.net_capacity(net_id)
    return SeparatorResult(pieces=pieces, cut_capacity=cut, rho=rho)


def multiway_from_separator(
    hypergraph: Hypergraph,
    separator: SeparatorResult,
    num_parts: int,
    capacity: float,
) -> List[List[int]]:
    """Pack separator pieces into at most ``num_parts`` blocks.

    First-fit-decreasing by piece size; this is the induction the paper
    invokes to drop the ``K_l`` bounds from the LP.  Raises
    :class:`InfeasibleError` when the pieces do not fit.
    """
    order = sorted(
        range(len(separator.pieces)),
        key=lambda i: -hypergraph.total_size(separator.pieces[i]),
    )
    bins: List[List[int]] = [[] for _ in range(num_parts)]
    bin_sizes = [0.0] * num_parts
    for index in order:
        piece = separator.pieces[index]
        size = hypergraph.total_size(piece)
        placed = False
        for b in range(num_parts):
            if bin_sizes[b] + size <= capacity + 1e-9:
                bins[b].extend(piece)
                bin_sizes[b] += size
                placed = True
                break
        if not placed:
            raise InfeasibleError(
                f"piece of size {size:g} does not fit into any of "
                f"{num_parts} bins of capacity {capacity:g}"
            )
    return [sorted(b) for b in bins if b]
