"""The linear program (P1) solved exactly by cutting planes (Lemma 2).

(P1) minimises ``sum_e c(e) d(e)`` over metrics ``d >= 0`` subject to the
spreading constraints.  The constraint family is exponential, but each
violated constraint can be *separated* with shortest-path trees: if some
``S(v, k)`` violates Constraint (5) under the current ``d``, the
linearised tree form of Equation (7),

    sum_e d(e) * delta(S(v,k), e)  >=  g(s(S(v,k))),

is a valid inequality for (P1) (tree paths upper-bound distances for any
metric) that the current ``d`` violates (tree paths *equal* distances for
the metric the tree was built under).  Iterating LP-solve / separate until
no violation remains therefore terminates at the exact optimum of (P1),
which by Lemma 2 lower-bounds the cost of every hierarchical tree
partition.

The LP relaxations are solved with scipy's HiGHS backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.constraints import SpreadingOracle
from repro.errors import ConvergenceError
from repro.htp.hierarchy import HierarchySpec
from repro.hypergraph.graph import Graph


@dataclass
class LPResult:
    """Outcome of the cutting-plane solve.

    ``lengths`` is the optimal fractional spreading metric, ``lower_bound``
    its objective ``sum_e c(e) d(e)`` (a valid lower bound on every HTP
    cost for this instance), ``iterations`` the number of LP solves and
    ``num_constraints`` the number of generated cutting planes.
    ``converged`` is False only when the iteration cap was hit; the bound
    is then still valid for the *relaxation* but may be below the true LP
    optimum (it remains a correct lower bound on partition cost).
    """

    lengths: np.ndarray
    lower_bound: float
    iterations: int
    num_constraints: int
    converged: bool


def solve_spreading_lp(
    graph: Graph,
    spec: HierarchySpec,
    max_iterations: int = 200,
    tol: float = 1e-7,
    raise_on_limit: bool = False,
) -> LPResult:
    """Solve (P1) for ``graph`` under ``spec`` by cutting planes.

    Intended for small-to-medium instances (hundreds of nodes); the
    separation step runs one Dijkstra per node per iteration.
    """
    from scipy.optimize import linprog
    from scipy.sparse import csr_matrix

    oracle = SpreadingOracle(graph, spec, engine="scipy", tol=tol)
    num_edges = graph.num_edges
    capacities = graph.capacities()

    rows: List[np.ndarray] = []  # dense coefficient rows (small instances)
    rhs: List[float] = []
    lengths = np.zeros(num_edges, dtype=float)
    iterations = 0
    converged = False

    while iterations < max_iterations:
        iterations += 1
        oracle.set_lengths(lengths)
        violations = oracle.all_violations(mode="max")
        if not violations:
            converged = True
            break
        for violation in violations:
            row = np.zeros(num_edges, dtype=float)
            for edge_id, coeff in oracle.tree_cut_coefficients(violation):
                row[edge_id] += coeff
            rows.append(row)
            rhs.append(violation.rhs)
        # Solve min c^T d  s.t.  A d >= b, d >= 0  (as -A d <= -b).
        a_ub = csr_matrix(-np.vstack(rows))
        b_ub = -np.asarray(rhs)
        solution = linprog(
            c=capacities,
            A_ub=a_ub,
            b_ub=b_ub,
            bounds=(0, None),
            method="highs",
        )
        if not solution.success:  # pragma: no cover - defensive
            raise ConvergenceError(
                f"HiGHS failed on cutting-plane iteration {iterations}: "
                f"{solution.message}"
            )
        lengths = np.asarray(solution.x, dtype=float)

    if not converged and raise_on_limit:
        raise ConvergenceError(
            f"cutting planes did not converge in {max_iterations} iterations"
        )
    lower_bound = float(np.dot(capacities, lengths))
    return LPResult(
        lengths=lengths,
        lower_bound=lower_bound,
        iterations=iterations,
        num_constraints=len(rows),
        converged=converged,
    )


def verify_metric_feasibility(
    graph: Graph,
    spec: HierarchySpec,
    lengths,
    tol: float = 1e-6,
) -> Tuple[bool, Optional[object]]:
    """Check a metric against all spreading constraints (Lemma 1 helper).

    Returns ``(feasible, first_violation_or_None)``.
    """
    oracle = SpreadingOracle(graph, spec, engine="scipy", tol=tol)
    oracle.set_lengths(np.asarray(lengths, dtype=float))
    for v in graph.nodes():
        violation = oracle.violation_for(v, mode="first")
        if violation is not None:
            return False, violation
    return True, None
