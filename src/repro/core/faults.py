"""Named fault-injection points for the fault-tolerant execution layer.

Long-running flow solvers meet real failures: a worker process dies, a
task wedges on a slow machine, a shared-memory page gets scribbled on.
The hardened :class:`~repro.core.parallel.MetricWorkerPool` survives all
of them through a degradation ladder (retry task -> respawn worker ->
shrink pool -> serial); this module provides the *controlled* failures
that prove it — deterministic, seedable faults that the chaos harness
(``tests/chaos/``) replays while asserting the run stays bit-identical
to the fault-free one.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each naming

* a **kind** — ``fail`` (raise :class:`InjectedFault`), ``die`` (the
  worker process exits abruptly, breaking the executor), ``hang`` (sleep
  for ``duration`` seconds, tripping the per-task deadline) or
  ``corrupt`` (scribble on the shared CSR ``data`` array, tripping the
  coordinator's checksum);
* a **site** — ``task`` (inside a worker, per slice) or ``dispatch``
  (coordinator-side, before a batch fan-out);
* **coordinates** that select *when* it fires: ``dispatch`` (batched
  sub-round index), ``task`` (slice index within the dispatch),
  ``round`` (Algorithm-2 round) and ``attempt`` (retry number).  Omitted
  ``dispatch``/``task``/``round`` match everything; an omitted
  ``attempt`` matches only attempt 0 so that retries recover by default;
* an optional probability ``p`` drawn deterministically from the plan
  seed and the coordinates, so probabilistic chaos replays exactly.

Plans parse from a compact string (the CLI's ``--fault-plan``)::

    fail:task@dispatch=0,task=1
    die:task@dispatch=1
    hang:task@dispatch=0,duration=3
    corrupt:task@round=2;fail:task@p=0.25

Everything here is pure and picklable: specs travel to worker processes
in the pool's start-up payload, and firing decisions depend only on
``(plan seed, spec index, site, coordinates)`` — never on wall clock,
pids or scheduling order.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

#: Fault kinds a spec may request.
KINDS = ("fail", "die", "hang", "corrupt")

#: Injection sites instrumented by the pool.
SITES = ("task", "dispatch")

#: Coordinate keys a spec may constrain.
COORD_KEYS = ("dispatch", "task", "round", "attempt")


class FaultPlanError(ValueError):
    """A fault-plan string or spec is malformed."""


def split_plan(text: str):
    """Split a ``kind:site[@k=v,...];...`` plan into raw spec triples.

    Returns ``[(kind, site, {key: raw_value}), ...]`` with every value
    still a string.  This is the shared surface of the fault DSL: the
    worker-pool :class:`FaultPlan` below and the network fault plans in
    :mod:`repro.testing.netfaults` both layer their own vocabulary and
    value typing on top of the same split.
    """
    chunks = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        head, _, conds = chunk.partition("@")
        kind, sep, site = head.partition(":")
        if not sep or not kind.strip() or not site.strip():
            raise FaultPlanError(
                f"fault spec {chunk!r} must look like 'kind:site[@k=v,...]'"
            )
        conditions: Dict[str, str] = {}
        if conds:
            for cond in conds.split(","):
                key, sep, value = cond.partition("=")
                key = key.strip()
                if not sep or not key:
                    raise FaultPlanError(
                        f"condition {cond!r} in {chunk!r} must be key=value"
                    )
                conditions[key] = value.strip()
        chunks.append((kind.strip(), site.strip(), conditions))
    if not chunks:
        raise FaultPlanError("fault plan contains no specs")
    return chunks


def deterministic_uniform(seed, index, site, coords) -> float:
    """A uniform draw in [0, 1) that is a pure function of its inputs.

    ``coords`` is a sequence of ``(key, value)`` pairs.  Both fault DSLs
    route their probabilistic firing decisions through this one hash so
    a replay with the same seed injects exactly the same faults.
    """
    key = ":".join(
        [str(seed), str(index), str(site)]
        + [f"{k}={v}" for k, v in coords]
    )
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class InjectedFault(RuntimeError):
    """The exception raised by a ``fail`` fault.

    Carries the site and coordinates it fired at so degradation records
    (and chaos tests) can assert on the cause.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: what to do, where, and when.

    Attributes
    ----------
    kind:
        ``'fail'``, ``'die'``, ``'hang'`` or ``'corrupt'``.
    site:
        ``'task'`` (worker-side) or ``'dispatch'`` (coordinator-side).
    where:
        Sorted ``(key, value)`` coordinate constraints.  Keys from
        :data:`COORD_KEYS`; a missing ``dispatch``/``task``/``round``
        matches every value, a missing ``attempt`` matches only 0.
    p:
        Firing probability in (0, 1]; drawn deterministically from the
        plan seed and the coordinates.
    duration:
        Sleep seconds for ``hang`` faults (ignored otherwise).
    """

    kind: str
    site: str
    where: Tuple[Tuple[str, int], ...] = ()
    p: float = 1.0
    duration: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r} (choose from {KINDS})"
            )
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r} (choose from {SITES})"
            )
        if self.kind in ("die", "corrupt", "hang") and self.site != "task":
            raise FaultPlanError(
                f"{self.kind!r} faults only make sense at site 'task'"
            )
        for key, _value in self.where:
            if key not in COORD_KEYS:
                raise FaultPlanError(
                    f"unknown coordinate {key!r} (choose from {COORD_KEYS})"
                )
        if not 0.0 < self.p <= 1.0:
            raise FaultPlanError("p must be in (0, 1]")
        if self.duration <= 0:
            raise FaultPlanError("duration must be positive")

    def matches(self, site: str, coords: Mapping[str, int]) -> bool:
        """True when this spec's site and coordinates select ``coords``."""
        if site != self.site:
            return False
        constrained = dict(self.where)
        for key in COORD_KEYS:
            actual = coords.get(key)
            if key in constrained:
                if actual is None or int(actual) != constrained[key]:
                    return False
            elif key == "attempt" and actual not in (None, 0):
                # Unconstrained attempts match only the first try, so a
                # plan is recoverable unless it asks not to be.
                return False
        return True

    def describe(self) -> str:
        """The spec back in ``--fault-plan`` syntax."""
        conds = [f"{key}={value}" for key, value in self.where]
        if self.p < 1.0:
            conds.append(f"p={self.p:g}")
        if self.kind == "hang":
            conds.append(f"duration={self.duration:g}")
        suffix = "@" + ",".join(conds) if conds else ""
        return f"{self.kind}:{self.site}{suffix}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seedable collection of fault specs.

    Firing is a pure function of ``(seed, spec index, site, coords)``:
    probabilistic specs hash those into a uniform draw, so the same plan
    injects the same faults on every replay — the property the chaos
    harness's bit-identity assertions rest on.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse ``kind:site[@k=v,...]`` specs joined by ``;``.

        Raises :class:`FaultPlanError` (a ``ValueError``, so argparse
        ``type=`` integration reports it cleanly) on malformed input.
        """
        specs = []
        for kind, site, conditions in split_plan(text):
            where: Dict[str, int] = {}
            p = 1.0
            duration = 5.0
            for key, value in conditions.items():
                try:
                    if key == "p":
                        p = float(value)
                    elif key == "duration":
                        duration = float(value)
                    else:
                        where[key] = int(value)
                except ValueError as exc:
                    raise FaultPlanError(
                        f"bad value {value!r} for {key!r} in fault plan"
                    ) from exc
            specs.append(
                FaultSpec(
                    kind=kind,
                    site=site,
                    where=tuple(sorted(where.items())),
                    p=p,
                    duration=duration,
                )
            )
        return cls(specs=tuple(specs), seed=seed)

    def describe(self) -> str:
        """The plan back in ``--fault-plan`` syntax."""
        return ";".join(spec.describe() for spec in self.specs)

    # ------------------------------------------------------------------
    def draw(self, site: str, coords: Mapping[str, int]) -> Optional[FaultSpec]:
        """The first spec that fires at ``site`` with ``coords``, if any."""
        for index, spec in enumerate(self.specs):
            if not spec.matches(site, coords):
                continue
            if spec.p >= 1.0 or self._uniform(index, site, coords) < spec.p:
                return spec
        return None

    def _uniform(self, index: int, site: str, coords: Mapping[str, int]) -> float:
        """A deterministic uniform draw in [0, 1) for one firing decision."""
        return deterministic_uniform(
            self.seed, index, site,
            [(key, coords.get(key)) for key in COORD_KEYS],
        )


def trip(
    plan: Optional[FaultPlan],
    site: str,
    coords: Mapping[str, int],
    corrupt_target=None,
) -> Optional[FaultSpec]:
    """Fire the plan's fault for ``site``/``coords``, if one is due.

    ``fail`` raises :class:`InjectedFault`; ``die`` exits the process
    abruptly (``os._exit``) to simulate a hard worker crash; ``hang``
    sleeps for the spec's ``duration``; ``corrupt`` perturbs the first
    few entries of ``corrupt_target`` (the worker's shared-memory view
    of the CSR ``data`` array) in place.  Returns the fired spec (or
    None), letting call sites count injections.
    """
    if plan is None:
        return None
    spec = plan.draw(site, coords)
    if spec is None:
        return None
    if spec.kind == "fail":
        raise InjectedFault(
            f"injected fault at {site} {dict(coords)} ({spec.describe()})"
        )
    if spec.kind == "die":  # pragma: no cover - exits the worker process
        os._exit(3)
    if spec.kind == "hang":
        time.sleep(spec.duration)
    elif spec.kind == "corrupt" and corrupt_target is not None:
        n = min(4, len(corrupt_target))
        if n:
            corrupt_target[:n] = corrupt_target[:n] + 1.0
    return spec


@dataclass(frozen=True)
class FaultTolerance:
    """Recovery budgets of the hardened worker pool's degradation ladder.

    Attributes
    ----------
    task_deadline:
        Wall-clock seconds a dispatched wave may take before its
        unfinished tasks are declared hung and the executor is respawned
        (None disables deadlines).
    task_retries:
        Failed-task resubmissions before a failure escalates from the
        "retry task" rung to "respawn worker".
    backoff_base / backoff_cap:
        Exponential-backoff sleep between retry waves:
        ``min(cap, base * 2**(wave - 1))`` seconds.
    respawn_limit:
        Executor respawns allowed at one pool size before the ladder
        shrinks the pool (halves the worker count).
    min_workers:
        Shrinking stops here; the next escalation degrades to serial.
    """

    task_deadline: Optional[float] = 120.0
    task_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    respawn_limit: int = 1
    min_workers: int = 1

    def __post_init__(self) -> None:
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise ValueError("task_deadline must be positive (or None)")
        if self.task_retries < 0:
            raise ValueError("task_retries must be nonnegative")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff values must be nonnegative")
        if self.respawn_limit < 0:
            raise ValueError("respawn_limit must be nonnegative")
        if self.min_workers < 1:
            raise ValueError("min_workers must be at least 1")

    def backoff(self, wave: int) -> float:
        """Backoff sleep (seconds) before retry wave ``wave`` (1-based)."""
        return min(self.backoff_cap, self.backoff_base * (2.0 ** max(0, wave - 1)))
