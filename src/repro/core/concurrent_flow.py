"""Maximum concurrent flow and the flow/cut duality (refs [1][6][13]).

Section 1 of the paper grounds the whole approach in the duality between
multicommodity flows and cuts: "graph edges which are more saturated in
a flow computation are more likely to form a cut".  This module makes
that substrate concrete with a Garg–Könemann-style approximation of the
*maximum concurrent flow*: given commodities ``(s_i, t_i, demand_i)``,
find the largest ``lambda`` such that ``lambda * demand_i`` can be routed
simultaneously within the edge capacities.

The algorithm is the same exponential-length-function engine as
Algorithm 2: repeatedly route each commodity's demand along a shortest
path under lengths that grow exponentially in congestion, then scale the
accumulated flow down by its worst edge overload.  The classic duality
checks come for free:

* ``lambda <= cut(S) / demand_across(S)`` for every cut ``S`` — the
  sparsest-cut upper bound;
* the most-congested edges concentrate on bottleneck cuts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.algorithms.dijkstra import dijkstra
from repro.errors import PartitionError
from repro.hypergraph.graph import Graph


@dataclass(frozen=True)
class Commodity:
    """One source/sink demand pair."""

    source: int
    sink: int
    demand: float = 1.0


@dataclass
class ConcurrentFlowResult:
    """Outcome of the approximation.

    ``throughput`` is the achieved concurrent fraction ``lambda``;
    ``edge_flows`` the (scaled) flow per edge; ``congestion`` the
    pre-scaling ``flow/capacity`` per edge (the cut-locator signal);
    ``iterations`` the number of routing phases.
    """

    throughput: float
    edge_flows: np.ndarray
    congestion: np.ndarray
    iterations: int

    def most_congested_edges(self, count: int = 10) -> List[int]:
        """Edge ids sorted by decreasing congestion (the likely cut)."""
        order = np.argsort(-self.congestion, kind="stable")
        return [int(e) for e in order[:count]]


def max_concurrent_flow(
    graph: Graph,
    commodities: Sequence[Commodity],
    epsilon: float = 0.1,
    max_phases: int = 200,
) -> ConcurrentFlowResult:
    """Approximate the maximum concurrent flow.

    Routes every commodity once per phase along its current shortest
    path, pricing edges as ``exp(alpha * congestion)``; stops when the
    length of the shortest path system stops improving the bound or the
    phase budget runs out.  The guarantee is the standard
    ``(1 - epsilon)`` factor for small epsilon; for the library's
    purposes (duality demonstrations and tests on small graphs) the
    practical accuracy is what matters and is asserted in the tests.
    """
    if not commodities:
        raise PartitionError("need at least one commodity")
    for commodity in commodities:
        if commodity.source == commodity.sink:
            raise PartitionError("commodity with identical endpoints")
        if commodity.demand <= 0:
            raise PartitionError("commodity demands must be positive")

    capacities = graph.capacities()
    flows = np.zeros(graph.num_edges)
    alpha = math.log(max(2.0, graph.num_edges)) / max(epsilon, 1e-6)

    phases = 0
    for _phase in range(max_phases):
        phases += 1
        congestion = flows / capacities
        scale = congestion.max() if congestion.max() > 0 else 1.0
        lengths = np.exp(alpha * (congestion - scale))  # normalised pricing
        progressed = False
        for commodity in commodities:
            dist, pred_node, pred_edge = dijkstra(
                graph, commodity.source, lengths
            )
            if math.isinf(dist[commodity.sink]):
                raise PartitionError(
                    f"commodity {commodity.source}->{commodity.sink} is "
                    f"disconnected"
                )
            node = commodity.sink
            while node != commodity.source:
                edge_id = pred_edge[node]
                flows[edge_id] += commodity.demand
                node = pred_node[node]
            progressed = True
        if not progressed:  # pragma: no cover - defensive
            break

    congestion = flows / capacities
    worst = congestion.max()
    if worst <= 0:
        raise PartitionError("no flow was routed")
    # Each phase routed the full demand once; scaling by the worst
    # overload makes the flow feasible, giving throughput phases/worst.
    throughput = phases / worst
    return ConcurrentFlowResult(
        throughput=throughput,
        edge_flows=flows / worst,
        congestion=congestion,
        iterations=phases,
    )


def cut_throughput_bound(
    graph: Graph,
    commodities: Sequence[Commodity],
    side: Sequence[int],
) -> float:
    """The duality upper bound ``cut(S) / demand_across(S)`` for a cut.

    Returns ``inf`` when no commodity crosses the cut.
    """
    inside = set(side)
    cut_capacity = sum(
        graph.capacity(e)
        for e, (u, v) in enumerate(graph.edges())
        if (u in inside) != (v in inside)
    )
    demand = sum(
        c.demand
        for c in commodities
        if (c.source in inside) != (c.sink in inside)
    )
    if demand == 0:
        return math.inf
    return cut_capacity / demand
