"""Ratio cuts via stochastic flow injection (refs [10][17]).

The paper's direct ancestors — Lang & Rao's near-optimal cut search and
Yeh, Cheng & Lin's stochastic flow injection — target the *ratio cut*
objective ``cut(A, B) / (s(A) * s(B))``, which needs no explicit size
constraints.  This module closes the loop: it reuses the spreading-metric
engine (with a balanced single-level bound) to produce edge lengths and
sweeps MST-subtree / Prim-growth prefixes for the best ratio, plus an
exact exponential-time reference for small instances.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.construct import _BlockCutCounter, _restricted_prim
from repro.core.separator import separator_spec
from repro.core.spreading_metric import (
    SpreadingMetricConfig,
    compute_spreading_metric,
)
from repro.errors import PartitionError
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.graph import Graph
from repro.hypergraph.hypergraph import Hypergraph


@dataclass
class RatioCutResult:
    """A bipartition and its ratio-cut objective value."""

    side: List[int]
    cut_capacity: float
    ratio: float


def ratio_cut_value(
    hypergraph: Hypergraph, side: Sequence[int]
) -> Tuple[float, float]:
    """``(cut_capacity, ratio)`` of the bipartition (side, rest)."""
    side_set = set(side)
    size_a = hypergraph.total_size(side_set)
    size_b = hypergraph.total_size() - size_a
    if size_a <= 0 or size_b <= 0:
        raise PartitionError("ratio cut needs two non-empty sides")
    cut = hypergraph.cut_capacity(side_set)
    return cut, cut / (size_a * size_b)


def ratio_cut(
    hypergraph: Hypergraph,
    graph: Optional[Graph] = None,
    lengths: Optional[Sequence[float]] = None,
    rng: Optional[random.Random] = None,
    restarts: int = 4,
    metric_config: Optional[SpreadingMetricConfig] = None,
) -> RatioCutResult:
    """Heuristic minimum ratio cut by metric-guided prefix sweeps.

    Computes a spreading metric (balanced single-level bound) when
    ``lengths`` is not given, then grows Prim prefixes from ``restarts``
    random seeds, scoring *every* prefix by the ratio objective.
    """
    rng = rng or random.Random(0)
    if graph is None:
        graph = to_graph(hypergraph)
    if hypergraph.num_nodes < 2:
        raise PartitionError("ratio cut needs at least two nodes")
    if lengths is None:
        spec = separator_spec(hypergraph.total_size(), rho=0.5)
        metric = compute_spreading_metric(
            graph,
            spec,
            metric_config or SpreadingMetricConfig(),
            rng=rng,
        )
        lengths = metric.lengths

    total = hypergraph.total_size()
    candidate_set = set(hypergraph.nodes())
    counter = _BlockCutCounter(hypergraph, candidate_set)
    best: Optional[RatioCutResult] = None

    for _attempt in range(max(1, restarts)):
        seed = rng.randrange(hypergraph.num_nodes)
        restart_order = list(candidate_set)
        rng.shuffle(restart_order)
        region: List[int] = []
        size = 0.0
        cut = 0.0
        inside_count = {}
        for node, _cost, _edge in _restricted_prim(
            graph, seed, lengths, candidate_set, restart_order
        ):
            region.append(node)
            size += hypergraph.node_size(node)
            for net_id in hypergraph.incident_nets(node):
                net_pins = counter.block_pins.get(net_id, 0)
                if net_pins <= 1:
                    continue
                inside_count[net_id] = inside_count.get(net_id, 0) + 1
                if inside_count[net_id] == 1:
                    cut += hypergraph.net_capacity(net_id)
                elif inside_count[net_id] == net_pins:
                    cut -= hypergraph.net_capacity(net_id)
            if len(region) == hypergraph.num_nodes:
                break
            other = total - size
            if other <= 0:
                break
            ratio = cut / (size * other)
            if best is None or ratio < best.ratio:
                best = RatioCutResult(
                    side=sorted(region), cut_capacity=cut, ratio=ratio
                )
        inside_count.clear()
    assert best is not None
    return best


def exact_ratio_cut(hypergraph: Hypergraph) -> RatioCutResult:
    """Exact minimum ratio cut by exhaustive search (n <= 16)."""
    n = hypergraph.num_nodes
    if n > 16:
        raise PartitionError("exact ratio cut is exponential; n <= 16 only")
    best: Optional[RatioCutResult] = None
    nodes = list(range(n))
    # enumerate subsets containing node 0 (canonical side)
    for size in range(1, n):
        for side in itertools.combinations(nodes[1:], size - 1):
            subset = (0,) + side
            cut, ratio = ratio_cut_value(hypergraph, subset)
            if best is None or ratio < best.ratio:
                best = RatioCutResult(
                    side=sorted(subset), cut_capacity=cut, ratio=ratio
                )
    assert best is not None
    return best
