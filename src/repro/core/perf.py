"""Performance counters threaded through the FLOW hot paths.

The ROADMAP's north star is "as fast as the hardware allows"; you cannot
optimise what you cannot see.  :class:`PerfCounters` is a plain mutable
struct that the spreading-metric engine (Algorithm 2), the constraint
oracle and ``find_cut`` (Algorithm 3) increment as they work.  It is
deliberately dependency-free so every layer — ``core``, ``analysis``,
the CLI and the benchmarks — can share it without import cycles.

Counter semantics
-----------------
``dijkstra_calls``
    Number of ``scipy.sparse.csgraph.dijkstra`` invocations (one batched
    call over ``k`` sources counts once).
``dijkstra_sources``
    Total single-source shortest-path problems solved (a batched call
    over ``k`` sources adds ``k``).
``nodes_settled``
    Nodes settled across all Dijkstra runs (finite-distance entries;
    distance-limited runs settle fewer — the whole point).
``edges_repriced``
    Edge lengths rewritten in place after flow injections.
``batch_checks`` / ``batch_sources``
    Batched oracle sub-rounds issued and the sources they covered.
``recheck_sources``
    Sources re-examined with a fresh single-source run because an
    injection dirtied an edge on their snapshot shortest-path tree.
``retired_free``
    Sources retired straight from a batch snapshot — no second Dijkstra.
``injections``
    Flow-injection steps (Algorithm 2 line "inject Delta").
``cut_evals``
    Candidate regions whose hypergraph cut was evaluated in ``find_cut``
    (Prim prefixes plus MST subtree heads).
``pool_dispatches``
    Batched oracle sub-rounds fanned out across the process pool (each
    dispatch covers one chunk, split into per-worker tasks).
``pool_tasks``
    Worker tasks submitted to a process pool (metric slices, flow
    iterations, construct children, hierarchy candidates).
``pool_fallbacks``
    Times a pooled code path dropped back to the serial equivalent —
    pool creation failures, pickling errors, poisoned/shut-down pools.
    Results are unaffected (the serial path is bit-identical); a nonzero
    count only means the parallelism was not realised.
``pool_autoserial``
    Times the parallel tier deliberately ran serial for economics rather
    than faults: engine resolution skipped the pool (one core or one
    resolved worker), or a running pool retired itself after measured
    dispatch overhead stayed above threshold.  Warning-free by design.
``native_fallbacks``
    ``engine='native'`` requests served by the scipy kernel because the
    compiled extension was unavailable (not built, or disabled via
    ``REPRO_DISABLE_NATIVE``); each adds a degradation record.
``pool_task_retries``
    Worker tasks resubmitted after a failure or missed deadline (the
    first rung of the degradation ladder).
``pool_respawns``
    Times the pool killed and rebuilt its executor after a worker died,
    hung past its deadline, or exhausted task retries (second rung).
``pool_shrinks``
    Times the pool halved its worker count after the respawn budget ran
    out at the current size (third rung).
``pool_corruptions``
    Shared-memory checksum mismatches detected after a dispatch; each
    one triggered a repair from the coordinator's private metric and a
    clean re-run of the dispatch.
``faults_injected``
    Injected faults (``repro.core.faults``) observed by the coordinator
    — raised :class:`InjectedFault` instances plus detected corruptions.
``cache_hits`` / ``cache_misses`` / ``cache_evictions``
    Content-addressed result-cache traffic (``repro.service.cache``):
    lookups served from the cache (memory or disk), lookups that fell
    through to a fresh solve, and LRU entries displaced by inserts.  A
    warm service request shows ``cache_hits`` advancing while the
    solver counters (``dijkstra_calls``, ``injections``) stand still.
``cache_corrupt``
    Disk blobs rejected as truncated/unparseable/CRC-failing; each one
    was quarantined (renamed ``*.corrupt``) and served as a miss.
``checkpoints_written``
    Crash-safe solver checkpoints persisted (``repro.core.checkpoint``).
``checkpoints_discarded``
    Checkpoint files skipped at load time — torn writes, CRC failures,
    or fingerprints from a different run.  Skipping is silent recovery:
    the newest *valid* checkpoint wins.
``checkpoint_resumes``
    Runs that restored state from a checkpoint instead of starting cold.
``journal_records`` / ``journal_replayed`` / ``journal_torn_records``
    Write-ahead job-journal traffic (``repro.service.journal``): records
    appended, records replayed during recovery, and torn/corrupt lines
    discarded by a scan.
``admission_rejections``
    Submissions refused by admission control (bounded queue depth); the
    HTTP layer surfaces these as 429 + ``Retry-After``.
``cluster_placements``
    Jobs the cluster router forwarded to a worker (each acknowledged
    submission counts once, including the re-forward after a reroute).
``cluster_reroutes``
    Jobs moved to a new worker after their previous owner died or
    refused the forward — the reroute rung of the router's ladder.
``cluster_remote_hits``
    Router cache misses answered by another worker's durable cache via
    the ``GET /cache/<hash>`` read-through tier (no solve ran anywhere).
``ckpt_replications``
    Checkpoint frames a worker pushed to a peer replica over
    ``PUT /ckpt/<job>/<seq>`` (one frame accepted by one peer counts
    once; refused or torn frames do not).
``ckpt_replica_fetches``
    Checkpoint frames a worker installed from a peer replica before
    starting a forwarded job — the shared-nothing failover path that
    replaces the old shared ``--checkpoint-dir`` assumption.
``cache_replications``
    Result payloads the router write-through-replicated to additional
    ring owners over ``PUT /cache/<hash>`` so a cached result survives
    its producer's death.
``router_epoch_bumps``
    Fencing-epoch increments: one per standby takeover (and one when a
    recovering router fences out its own previous incarnation).
``netfaults_injected``
    Network faults a ``repro.testing.netfaults`` proxy actually applied
    to live traffic (delayed/dropped/half-closed/partitioned/reordered
    events, not merely scheduled ones).
``pool_workers``
    Per-worker-process ``dijkstra_sources`` totals, keyed by worker pid —
    shows how evenly the pool's load spread.
``degradations``
    A bounded log of ladder transitions, each a dict with the ``action``
    taken (``retry`` / ``respawn`` / ``shrink`` / ``serial`` / ...), the
    ``site`` and the repr of the original ``cause`` exception — the
    fallback never swallows what actually went wrong.
``phase_seconds``
    Wall-clock seconds per named phase (``metric``, ``construct``,
    ``evaluate``, ``pool_dispatch``, ``pool_merge``, ...), accumulated
    across iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

#: Cap on the retained degradation records; a pathological run cannot
#: grow the perf struct without bound.
MAX_DEGRADATION_RECORDS = 100

#: The scalar (integer) counters, in presentation order.  ``merge``,
#: ``as_dict`` and ``from_dict`` all iterate this one tuple so a new
#: counter only has to be declared once (plus its dataclass field).
INT_COUNTERS = (
    "dijkstra_calls",
    "dijkstra_sources",
    "nodes_settled",
    "edges_repriced",
    "batch_checks",
    "batch_sources",
    "recheck_sources",
    "retired_free",
    "injections",
    "cut_evals",
    "pool_dispatches",
    "pool_tasks",
    "pool_fallbacks",
    "pool_autoserial",
    "native_fallbacks",
    "pool_task_retries",
    "pool_respawns",
    "pool_shrinks",
    "pool_corruptions",
    "faults_injected",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "cache_corrupt",
    "checkpoints_written",
    "checkpoints_discarded",
    "checkpoint_resumes",
    "journal_records",
    "journal_replayed",
    "journal_torn_records",
    "admission_rejections",
    "cluster_placements",
    "cluster_reroutes",
    "cluster_remote_hits",
    "ckpt_replications",
    "ckpt_replica_fetches",
    "cache_replications",
    "router_epoch_bumps",
    "netfaults_injected",
)


@dataclass
class PerfCounters:
    """Mutable instrumentation shared by the FLOW hot paths.

    A plain counter struct threaded through Algorithm 2 (the spreading
    metric), the constraint oracle, ``find_cut`` and the parallel engine
    tier.  See the module docstring for the meaning of each counter.

    Notes
    -----
    ``PerfCounters`` is picklable; worker processes fill a fresh instance
    per task and the pool merges it into the caller's struct, so the
    aggregated numbers cover serial and pooled work alike.
    """

    dijkstra_calls: int = 0
    dijkstra_sources: int = 0
    nodes_settled: int = 0
    edges_repriced: int = 0
    batch_checks: int = 0
    batch_sources: int = 0
    recheck_sources: int = 0
    retired_free: int = 0
    injections: int = 0
    cut_evals: int = 0
    pool_dispatches: int = 0
    pool_tasks: int = 0
    pool_fallbacks: int = 0
    pool_autoserial: int = 0
    native_fallbacks: int = 0
    pool_task_retries: int = 0
    pool_respawns: int = 0
    pool_shrinks: int = 0
    pool_corruptions: int = 0
    faults_injected: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_corrupt: int = 0
    checkpoints_written: int = 0
    checkpoints_discarded: int = 0
    checkpoint_resumes: int = 0
    journal_records: int = 0
    journal_replayed: int = 0
    journal_torn_records: int = 0
    admission_rejections: int = 0
    cluster_placements: int = 0
    cluster_reroutes: int = 0
    cluster_remote_hits: int = 0
    ckpt_replications: int = 0
    ckpt_replica_fetches: int = 0
    cache_replications: int = 0
    router_epoch_bumps: int = 0
    netfaults_injected: int = 0
    pool_workers: Dict[str, int] = field(default_factory=dict)
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    degradations: List[Dict[str, str]] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock ``seconds`` under phase ``name``."""
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    def record_degradation(
        self, action: str, cause: object, site: str = "pool"
    ) -> None:
        """Log one degradation-ladder transition, preserving its cause.

        ``cause`` is kept as ``repr`` so the record stays picklable and
        JSON-ready whatever exception type the worker raised.  The log
        is capped at :data:`MAX_DEGRADATION_RECORDS` entries.
        """
        if len(self.degradations) < MAX_DEGRADATION_RECORDS:
            self.degradations.append(
                {"action": action, "site": site, "cause": repr(cause)}
            )

    def merge(self, other: "PerfCounters") -> None:
        """Fold ``other``'s counts into this struct (for aggregation)."""
        for name in INT_COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for record in other.degradations:
            if len(self.degradations) >= MAX_DEGRADATION_RECORDS:
                break
            self.degradations.append(dict(record))
        for worker, sources in other.pool_workers.items():
            self.pool_workers[worker] = (
                self.pool_workers.get(worker, 0) + sources
            )
        for name, seconds in other.phase_seconds.items():
            self.add_phase(name, seconds)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view (used by the benchmark emitter and the CLI)."""
        doc: Dict[str, object] = {
            name: getattr(self, name) for name in INT_COUNTERS
        }
        doc["pool_workers"] = dict(self.pool_workers)
        doc["phase_seconds"] = dict(self.phase_seconds)
        doc["degradations"] = [dict(r) for r in self.degradations]
        return doc

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PerfCounters":
        """Rebuild a struct written by :meth:`as_dict` (JSON round trip).

        Unknown keys are ignored and missing keys default to zero/empty,
        so payloads written by older versions of the struct still load.
        """
        counters = cls()
        for name in INT_COUNTERS:
            setattr(counters, name, int(payload.get(name, 0)))
        counters.pool_workers = {
            str(worker): int(sources)
            for worker, sources in dict(payload.get("pool_workers", {})).items()
        }
        counters.phase_seconds = {
            str(name): float(seconds)
            for name, seconds in dict(payload.get("phase_seconds", {})).items()
        }
        counters.degradations = [
            {str(k): str(v) for k, v in dict(record).items()}
            for record in list(payload.get("degradations", []))[
                :MAX_DEGRADATION_RECORDS
            ]
        ]
        return counters

    def summary(self) -> str:
        """One-line human summary (printed by ``htp partition --perf``)."""
        phases = " ".join(
            f"{name}={seconds:.2f}s"
            for name, seconds in sorted(self.phase_seconds.items())
        )
        pool = ""
        if self.pool_dispatches or self.pool_tasks or self.pool_fallbacks:
            pool = (
                f" | pool {self.pool_dispatches} dispatches / "
                f"{self.pool_tasks} tasks / "
                f"{len(self.pool_workers)} workers / "
                f"{self.pool_fallbacks} fallbacks"
            )
        recovery = ""
        if (
            self.pool_task_retries
            or self.pool_respawns
            or self.pool_shrinks
            or self.pool_corruptions
            or self.faults_injected
        ):
            recovery = (
                f" | recovery {self.pool_task_retries} retries / "
                f"{self.pool_respawns} respawns / "
                f"{self.pool_shrinks} shrinks / "
                f"{self.pool_corruptions} corruptions / "
                f"{self.faults_injected} faults"
            )
        cache = ""
        if self.cache_hits or self.cache_misses or self.cache_evictions:
            cache = (
                f" | cache {self.cache_hits} hits / "
                f"{self.cache_misses} misses / "
                f"{self.cache_evictions} evictions"
            )
        durability = ""
        if (
            self.checkpoints_written
            or self.checkpoint_resumes
            or self.journal_records
            or self.admission_rejections
        ):
            durability = (
                f" | durability {self.checkpoints_written} ckpts / "
                f"{self.checkpoint_resumes} resumes / "
                f"{self.journal_records} journal / "
                f"{self.admission_rejections} rejected"
            )
        return (
            f"dijkstra {self.dijkstra_calls} calls / "
            f"{self.dijkstra_sources} sources / "
            f"{self.nodes_settled} settled | "
            f"batch {self.batch_checks} checks / "
            f"{self.retired_free} retired free / "
            f"{self.recheck_sources} rechecks | "
            f"{self.injections} injections / "
            f"{self.edges_repriced} edges repriced | "
            f"{self.cut_evals} cut evals{pool}{recovery}{cache}"
            f"{durability} | {phases}"
        )
