"""Performance counters threaded through the FLOW hot paths.

The ROADMAP's north star is "as fast as the hardware allows"; you cannot
optimise what you cannot see.  :class:`PerfCounters` is a plain mutable
struct that the spreading-metric engine (Algorithm 2), the constraint
oracle and ``find_cut`` (Algorithm 3) increment as they work.  It is
deliberately dependency-free so every layer — ``core``, ``analysis``,
the CLI and the benchmarks — can share it without import cycles.

Counter semantics
-----------------
``dijkstra_calls``
    Number of ``scipy.sparse.csgraph.dijkstra`` invocations (one batched
    call over ``k`` sources counts once).
``dijkstra_sources``
    Total single-source shortest-path problems solved (a batched call
    over ``k`` sources adds ``k``).
``nodes_settled``
    Nodes settled across all Dijkstra runs (finite-distance entries;
    distance-limited runs settle fewer — the whole point).
``edges_repriced``
    Edge lengths rewritten in place after flow injections.
``batch_checks`` / ``batch_sources``
    Batched oracle sub-rounds issued and the sources they covered.
``recheck_sources``
    Sources re-examined with a fresh single-source run because an
    injection dirtied an edge on their snapshot shortest-path tree.
``retired_free``
    Sources retired straight from a batch snapshot — no second Dijkstra.
``injections``
    Flow-injection steps (Algorithm 2 line "inject Delta").
``cut_evals``
    Candidate regions whose hypergraph cut was evaluated in ``find_cut``
    (Prim prefixes plus MST subtree heads).
``pool_dispatches``
    Batched oracle sub-rounds fanned out across the process pool (each
    dispatch covers one chunk, split into per-worker tasks).
``pool_tasks``
    Worker tasks submitted to a process pool (metric slices, flow
    iterations, construct children, hierarchy candidates).
``pool_fallbacks``
    Times a pooled code path dropped back to the serial equivalent —
    pool creation failures, pickling errors, poisoned/shut-down pools.
    Results are unaffected (the serial path is bit-identical); a nonzero
    count only means the parallelism was not realised.
``pool_task_retries``
    Worker tasks resubmitted after a failure or missed deadline (the
    first rung of the degradation ladder).
``pool_respawns``
    Times the pool killed and rebuilt its executor after a worker died,
    hung past its deadline, or exhausted task retries (second rung).
``pool_shrinks``
    Times the pool halved its worker count after the respawn budget ran
    out at the current size (third rung).
``pool_corruptions``
    Shared-memory checksum mismatches detected after a dispatch; each
    one triggered a repair from the coordinator's private metric and a
    clean re-run of the dispatch.
``faults_injected``
    Injected faults (``repro.core.faults``) observed by the coordinator
    — raised :class:`InjectedFault` instances plus detected corruptions.
``cache_hits`` / ``cache_misses`` / ``cache_evictions``
    Content-addressed result-cache traffic (``repro.service.cache``):
    lookups served from the cache (memory or disk), lookups that fell
    through to a fresh solve, and LRU entries displaced by inserts.  A
    warm service request shows ``cache_hits`` advancing while the
    solver counters (``dijkstra_calls``, ``injections``) stand still.
``pool_workers``
    Per-worker-process ``dijkstra_sources`` totals, keyed by worker pid —
    shows how evenly the pool's load spread.
``degradations``
    A bounded log of ladder transitions, each a dict with the ``action``
    taken (``retry`` / ``respawn`` / ``shrink`` / ``serial`` / ...), the
    ``site`` and the repr of the original ``cause`` exception — the
    fallback never swallows what actually went wrong.
``phase_seconds``
    Wall-clock seconds per named phase (``metric``, ``construct``,
    ``evaluate``, ``pool_dispatch``, ``pool_merge``, ...), accumulated
    across iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

#: Cap on the retained degradation records; a pathological run cannot
#: grow the perf struct without bound.
MAX_DEGRADATION_RECORDS = 100


@dataclass
class PerfCounters:
    """Mutable instrumentation shared by the FLOW hot paths.

    A plain counter struct threaded through Algorithm 2 (the spreading
    metric), the constraint oracle, ``find_cut`` and the parallel engine
    tier.  See the module docstring for the meaning of each counter.

    Notes
    -----
    ``PerfCounters`` is picklable; worker processes fill a fresh instance
    per task and the pool merges it into the caller's struct, so the
    aggregated numbers cover serial and pooled work alike.
    """

    dijkstra_calls: int = 0
    dijkstra_sources: int = 0
    nodes_settled: int = 0
    edges_repriced: int = 0
    batch_checks: int = 0
    batch_sources: int = 0
    recheck_sources: int = 0
    retired_free: int = 0
    injections: int = 0
    cut_evals: int = 0
    pool_dispatches: int = 0
    pool_tasks: int = 0
    pool_fallbacks: int = 0
    pool_task_retries: int = 0
    pool_respawns: int = 0
    pool_shrinks: int = 0
    pool_corruptions: int = 0
    faults_injected: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    pool_workers: Dict[str, int] = field(default_factory=dict)
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    degradations: List[Dict[str, str]] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock ``seconds`` under phase ``name``."""
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    def record_degradation(
        self, action: str, cause: object, site: str = "pool"
    ) -> None:
        """Log one degradation-ladder transition, preserving its cause.

        ``cause`` is kept as ``repr`` so the record stays picklable and
        JSON-ready whatever exception type the worker raised.  The log
        is capped at :data:`MAX_DEGRADATION_RECORDS` entries.
        """
        if len(self.degradations) < MAX_DEGRADATION_RECORDS:
            self.degradations.append(
                {"action": action, "site": site, "cause": repr(cause)}
            )

    def merge(self, other: "PerfCounters") -> None:
        """Fold ``other``'s counts into this struct (for aggregation)."""
        self.dijkstra_calls += other.dijkstra_calls
        self.dijkstra_sources += other.dijkstra_sources
        self.nodes_settled += other.nodes_settled
        self.edges_repriced += other.edges_repriced
        self.batch_checks += other.batch_checks
        self.batch_sources += other.batch_sources
        self.recheck_sources += other.recheck_sources
        self.retired_free += other.retired_free
        self.injections += other.injections
        self.cut_evals += other.cut_evals
        self.pool_dispatches += other.pool_dispatches
        self.pool_tasks += other.pool_tasks
        self.pool_fallbacks += other.pool_fallbacks
        self.pool_task_retries += other.pool_task_retries
        self.pool_respawns += other.pool_respawns
        self.pool_shrinks += other.pool_shrinks
        self.pool_corruptions += other.pool_corruptions
        self.faults_injected += other.faults_injected
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_evictions += other.cache_evictions
        for record in other.degradations:
            if len(self.degradations) >= MAX_DEGRADATION_RECORDS:
                break
            self.degradations.append(dict(record))
        for worker, sources in other.pool_workers.items():
            self.pool_workers[worker] = (
                self.pool_workers.get(worker, 0) + sources
            )
        for name, seconds in other.phase_seconds.items():
            self.add_phase(name, seconds)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view (used by the benchmark emitter and the CLI)."""
        return {
            "dijkstra_calls": self.dijkstra_calls,
            "dijkstra_sources": self.dijkstra_sources,
            "nodes_settled": self.nodes_settled,
            "edges_repriced": self.edges_repriced,
            "batch_checks": self.batch_checks,
            "batch_sources": self.batch_sources,
            "recheck_sources": self.recheck_sources,
            "retired_free": self.retired_free,
            "injections": self.injections,
            "cut_evals": self.cut_evals,
            "pool_dispatches": self.pool_dispatches,
            "pool_tasks": self.pool_tasks,
            "pool_fallbacks": self.pool_fallbacks,
            "pool_task_retries": self.pool_task_retries,
            "pool_respawns": self.pool_respawns,
            "pool_shrinks": self.pool_shrinks,
            "pool_corruptions": self.pool_corruptions,
            "faults_injected": self.faults_injected,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "pool_workers": dict(self.pool_workers),
            "phase_seconds": dict(self.phase_seconds),
            "degradations": [dict(r) for r in self.degradations],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PerfCounters":
        """Rebuild a struct written by :meth:`as_dict` (JSON round trip).

        Unknown keys are ignored and missing keys default to zero/empty,
        so payloads written by older versions of the struct still load.
        """
        counters = cls()
        for name in (
            "dijkstra_calls",
            "dijkstra_sources",
            "nodes_settled",
            "edges_repriced",
            "batch_checks",
            "batch_sources",
            "recheck_sources",
            "retired_free",
            "injections",
            "cut_evals",
            "pool_dispatches",
            "pool_tasks",
            "pool_fallbacks",
            "pool_task_retries",
            "pool_respawns",
            "pool_shrinks",
            "pool_corruptions",
            "faults_injected",
            "cache_hits",
            "cache_misses",
            "cache_evictions",
        ):
            setattr(counters, name, int(payload.get(name, 0)))
        counters.pool_workers = {
            str(worker): int(sources)
            for worker, sources in dict(payload.get("pool_workers", {})).items()
        }
        counters.phase_seconds = {
            str(name): float(seconds)
            for name, seconds in dict(payload.get("phase_seconds", {})).items()
        }
        counters.degradations = [
            {str(k): str(v) for k, v in dict(record).items()}
            for record in list(payload.get("degradations", []))[
                :MAX_DEGRADATION_RECORDS
            ]
        ]
        return counters

    def summary(self) -> str:
        """One-line human summary (printed by ``htp partition --perf``)."""
        phases = " ".join(
            f"{name}={seconds:.2f}s"
            for name, seconds in sorted(self.phase_seconds.items())
        )
        pool = ""
        if self.pool_dispatches or self.pool_tasks or self.pool_fallbacks:
            pool = (
                f" | pool {self.pool_dispatches} dispatches / "
                f"{self.pool_tasks} tasks / "
                f"{len(self.pool_workers)} workers / "
                f"{self.pool_fallbacks} fallbacks"
            )
        recovery = ""
        if (
            self.pool_task_retries
            or self.pool_respawns
            or self.pool_shrinks
            or self.pool_corruptions
            or self.faults_injected
        ):
            recovery = (
                f" | recovery {self.pool_task_retries} retries / "
                f"{self.pool_respawns} respawns / "
                f"{self.pool_shrinks} shrinks / "
                f"{self.pool_corruptions} corruptions / "
                f"{self.faults_injected} faults"
            )
        cache = ""
        if self.cache_hits or self.cache_misses or self.cache_evictions:
            cache = (
                f" | cache {self.cache_hits} hits / "
                f"{self.cache_misses} misses / "
                f"{self.cache_evictions} evictions"
            )
        return (
            f"dijkstra {self.dijkstra_calls} calls / "
            f"{self.dijkstra_sources} sources / "
            f"{self.nodes_settled} settled | "
            f"batch {self.batch_checks} checks / "
            f"{self.retired_free} retired free / "
            f"{self.recheck_sources} rechecks | "
            f"{self.injections} injections / "
            f"{self.edges_repriced} edges repriced | "
            f"{self.cut_evals} cut evals{pool}{recovery}{cache} | {phases}"
        )
