"""The paper's primary contribution.

* :mod:`repro.core.gfunc` — the spreading lower-bound function ``g``.
* :mod:`repro.core.constraints` — the spreading-constraint oracle
  (Constraint (5): shortest-path-tree form, with the tree-cut
  coefficients of Equation (6)).
* :mod:`repro.core.spreading_metric` — Algorithm 2, the stochastic flow
  injection heuristic.
* :mod:`repro.core.construct` — Algorithm 3, top-down construction with
  the Prim-based ``find_cut``.
* :mod:`repro.core.flow_htp` — Algorithm 1, the FLOW driver (plus the
  multiple-constructions-per-metric extension from the conclusions).
* :mod:`repro.core.parallel` — the process-parallel engine tier: a
  persistent shared-memory worker pool for violation checks and a
  deterministic fan-out helper for the embarrassingly-parallel outer
  loops.
* :mod:`repro.core.lp` — the exact linear program (P1) solved by cutting
  planes (Lemmas 1 and 2).
* :mod:`repro.core.checkpoint` — crash-safe durability: atomic,
  CRC-stamped snapshots of the round state behind
  ``flow_htp(checkpoint_dir=..., resume_from=...)``.
"""

from repro.core.gfunc import spreading_bound, spreading_bound_array
from repro.core.checkpoint import (
    FlowCheckpointer,
    MetricCheckpoint,
    load_latest_checkpoint,
    newest_checkpoint_age,
    run_fingerprint,
)
from repro.core.constraints import SpreadingOracle, Violation
from repro.core.spreading_metric import (
    SpreadingMetricConfig,
    SpreadingMetricResult,
    compute_spreading_metric,
)
from repro.core.construct import construct_partition, find_cut
from repro.core.flow_htp import FlowHTPConfig, FlowHTPResult, flow_htp
from repro.core.lp import LPResult, solve_spreading_lp
from repro.core.parallel import MetricWorkerPool, ParallelConfig, parallel_map
from repro.core.separator import (
    SeparatorResult,
    multiway_from_separator,
    rho_separator,
    separator_spec,
)

__all__ = [
    "spreading_bound",
    "spreading_bound_array",
    "FlowCheckpointer",
    "MetricCheckpoint",
    "load_latest_checkpoint",
    "newest_checkpoint_age",
    "run_fingerprint",
    "SpreadingOracle",
    "Violation",
    "SpreadingMetricConfig",
    "SpreadingMetricResult",
    "compute_spreading_metric",
    "construct_partition",
    "find_cut",
    "FlowHTPConfig",
    "FlowHTPResult",
    "flow_htp",
    "LPResult",
    "solve_spreading_lp",
    "MetricWorkerPool",
    "ParallelConfig",
    "parallel_map",
    "SeparatorResult",
    "rho_separator",
    "multiway_from_separator",
    "separator_spec",
]
