"""Algorithm 3: constructing a partition from a spreading metric.

Two ``find_cut`` strategies are provided:

* ``'prim'`` — the paper's Algorithm 3 verbatim: grow a region from a
  random seed by Prim's minimum-attachment rule under the metric lengths,
  record the hypergraph cut of every prefix, return the best prefix whose
  size lies in ``[LB, UB]``.
* ``'mst'`` — the refinement the paper's conclusions propose (after
  Karger [7]: "find a minimum cut from a minimum spanning tree"): build
  the minimum spanning forest of the block under the metric, consider
  every subtree whose size lands in the window as a candidate region, and
  return the one with minimum hypergraph cut.  Subtrees of the metric MST
  are exactly the clusters the metric separates, so this dominates greedy
  prefix growth in practice.

``'both'`` (the default used by FLOW) evaluates the two and keeps the
better cut.  Cut quality is always evaluated on the *original hypergraph*
(a net is cut when it has pins both inside and outside the region), while
distances come from the graph the metric was computed on — the two share
node ids.
"""

from __future__ import annotations

import math
import random
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.algorithms.heap import IndexedHeap
from repro.algorithms.union_find import UnionFind
from repro.core.perf import PerfCounters
from repro.errors import InfeasibleError, PartitionError
from repro.htp.hierarchy import HierarchySpec
from repro.htp.partition import PartitionTree
from repro.hypergraph.graph import Graph
from repro.hypergraph.hypergraph import Hypergraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.parallel import ParallelConfig

#: Cap on the number of MST subtree candidates whose cut is evaluated.
DEFAULT_MAX_CUT_EVALS = 64

_STRATEGIES = ("prim", "mst", "both")


class _BlockCutCounter:
    """Hypergraph cut bookkeeping for one block's nets."""

    def __init__(self, hypergraph: Hypergraph, candidate_set: Set[int]) -> None:
        self._hypergraph = hypergraph
        self._candidate_set = candidate_set
        self.block_pins: Dict[int, int] = {}
        for v in candidate_set:
            for net_id in hypergraph.incident_nets(v):
                self.block_pins[net_id] = self.block_pins.get(net_id, 0) + 1

    def cut_of(self, region: Sequence[int]) -> float:
        """Capacity of block nets cut by (region, block - region)."""
        inside: Dict[int, int] = {}
        for v in region:
            for net_id in self._hypergraph.incident_nets(v):
                total = self.block_pins.get(net_id, 0)
                if total > 1:
                    inside[net_id] = inside.get(net_id, 0) + 1
        cut = 0.0
        for net_id, count in inside.items():
            if count < self.block_pins[net_id]:
                cut += self._hypergraph.net_capacity(net_id)
        return cut


def find_cut(
    hypergraph: Hypergraph,
    graph: Graph,
    lengths: Sequence[float],
    candidates: Sequence[int],
    lower: float,
    upper: float,
    rng: random.Random,
    restarts: int = 1,
    strategy: str = "both",
    max_cut_evals: int = DEFAULT_MAX_CUT_EVALS,
    counters: Optional[PerfCounters] = None,
) -> List[int]:
    """Carve a low-cut node subset of size in ``[lower, upper]``.

    ``candidates`` is the current block's node set (global ids); growth,
    spanning trees and cut counting are restricted to it.  ``restarts``
    independent attempts (seeds / jittered MSTs) are tried per strategy.

    Falls back to the best under-``upper`` prefix when no region lands in
    the window (possible with non-unit node sizes); raises
    :class:`InfeasibleError` when even a single node exceeds ``upper``.
    """
    if strategy not in _STRATEGIES:
        raise PartitionError(f"unknown find_cut strategy {strategy!r}")
    candidate_set = set(candidates)
    if not candidate_set:
        raise PartitionError("find_cut called with no candidate nodes")
    sizes = graph.node_sizes()
    counter = _BlockCutCounter(hypergraph, candidate_set)

    best_cut = math.inf
    best_region: Optional[List[int]] = None
    fallback_cut = math.inf
    fallback_region: Optional[List[int]] = None

    attempts = max(1, restarts)
    if strategy in ("mst", "both"):
        for _attempt in range(attempts):
            region, cut = _mst_subtree_cut(
                hypergraph,
                graph,
                lengths,
                candidate_set,
                lower,
                upper,
                sizes,
                counter,
                rng,
                max_cut_evals,
                counters,
            )
            if region is not None and cut < best_cut:
                best_cut = cut
                best_region = region
    if strategy in ("prim", "both"):
        for _attempt in range(attempts):
            seed = rng.choice(tuple(candidate_set))
            region, cut, in_window = _prim_window_cut(
                hypergraph,
                graph,
                lengths,
                candidate_set,
                lower,
                upper,
                seed,
                sizes,
                counter,
                rng,
                counters,
            )
            if region is None:
                continue
            if in_window:
                if cut < best_cut:
                    best_cut = cut
                    best_region = region
            elif cut < fallback_cut:
                fallback_cut = cut
                fallback_region = region

    if best_region is not None:
        return best_region
    if fallback_region is not None:
        return fallback_region
    # Last resort for non-unit sizes: a single largest-fitting node.
    fitting = [v for v in candidate_set if sizes[v] <= upper + 1e-9]
    if not fitting:
        raise InfeasibleError(
            f"no node of the block fits under the size bound {upper}"
        )
    return [max(fitting, key=lambda v: sizes[v])]


# ----------------------------------------------------------------------
# Strategy 1: Prim prefix growth (Algorithm 3 verbatim)
# ----------------------------------------------------------------------
def _prim_window_cut(
    hypergraph: Hypergraph,
    graph: Graph,
    lengths: Sequence[float],
    candidate_set: Set[int],
    lower: float,
    upper: float,
    seed: int,
    sizes,
    counter: _BlockCutCounter,
    rng: random.Random,
    counters: Optional[PerfCounters] = None,
) -> Tuple[Optional[List[int]], float, bool]:
    """One Prim growth from ``seed``; returns (best prefix, cut, in window)."""
    inside_count: Dict[int, int] = {}
    cut_capacity = 0.0
    region: List[int] = []
    region_size = 0.0

    best_cut = math.inf
    best_len = 0
    found_in_window = False
    fallback_cut = math.inf
    fallback_len = 0

    restart_order = list(candidate_set)
    rng.shuffle(restart_order)

    for node, _cost, _edge in _restricted_prim(
        graph, seed, lengths, candidate_set, restart_order
    ):
        node_size = float(sizes[node])
        if region and region_size + node_size > upper:
            # Adding this node overshoots; with non-unit sizes a later,
            # smaller node could still fit, but Prim order is the paper's
            # growth rule — stop here.
            break
        region.append(node)
        region_size += node_size
        for net_id in hypergraph.incident_nets(node):
            total = counter.block_pins.get(net_id, 0)
            if total <= 1:
                continue
            inside_count[net_id] = inside_count.get(net_id, 0) + 1
            count = inside_count[net_id]
            if count == 1:
                cut_capacity += hypergraph.net_capacity(net_id)
            elif count == total:
                cut_capacity -= hypergraph.net_capacity(net_id)
        if len(region) == len(candidate_set):
            break  # the full block is never a useful cut
        if lower <= region_size <= upper:
            if cut_capacity < best_cut:
                best_cut = cut_capacity
                best_len = len(region)
            found_in_window = True
        elif region_size <= upper and cut_capacity < fallback_cut:
            # Keep the *minimum-cut* under-window prefix, not the last
            # one seen: growth can walk past the best fallback.
            fallback_cut = cut_capacity
            fallback_len = len(region)

    if counters is not None:
        counters.cut_evals += len(region)  # one maintained cut per prefix
    if found_in_window:
        return region[:best_len], best_cut, True
    if fallback_len:
        return region[:fallback_len], fallback_cut, False
    return None, math.inf, False


def _restricted_prim(
    graph: Graph,
    seed: int,
    lengths: Sequence[float],
    candidate_set: Set[int],
    restart_order: List[int],
):
    """Prim growth over the candidate subset only (yields every member)."""
    visited = {v: False for v in candidate_set}
    heap = IndexedHeap()
    heap.push(seed, -math.inf)
    attach_edge = {seed: -1}
    restarts = iter(restart_order)
    yielded = 0
    target = len(candidate_set)
    while yielded < target:
        if not heap:
            jump = next((v for v in restarts if not visited[v]), None)
            if jump is None:
                jump = next(v for v in candidate_set if not visited[v])
            heap.push(jump, -math.inf)
            attach_edge[jump] = -1
        node, cost = heap.pop()
        node = int(node)
        if visited[node]:
            continue
        visited[node] = True
        yielded += 1
        yield node, (
            math.inf if cost == -math.inf else cost
        ), attach_edge[node]
        for neighbor, edge_id in graph.neighbors(node):
            if neighbor not in visited or visited[neighbor]:
                continue
            weight = lengths[edge_id]
            if neighbor not in heap or weight < heap.priority(neighbor):
                heap.push(neighbor, weight)
                attach_edge[neighbor] = edge_id


# ----------------------------------------------------------------------
# Strategy 2: MST subtree cuts (the conclusions' Karger-style refinement)
# ----------------------------------------------------------------------
def _mst_subtree_cut(
    hypergraph: Hypergraph,
    graph: Graph,
    lengths: Sequence[float],
    candidate_set: Set[int],
    lower: float,
    upper: float,
    sizes,
    counter: _BlockCutCounter,
    rng: random.Random,
    max_cut_evals: int,
    counters: Optional[PerfCounters] = None,
) -> Tuple[Optional[List[int]], float]:
    """Best window-sized MST-subtree cut, or (None, inf)."""
    nodes = sorted(candidate_set)
    index_of = {v: i for i, v in enumerate(nodes)}

    # Kruskal over the block with random tie-jitter (each attempt sees a
    # different spanning tree among metric ties).
    block_edges = [
        (float(lengths[edge_id]) * (1.0 + 1e-9 * rng.random()), edge_id)
        for edge_id, (u, v) in enumerate(graph.edges())
        if u in candidate_set and v in candidate_set
    ]
    block_edges.sort()
    dsu = UnionFind(len(nodes))
    adjacency: Dict[int, List[int]] = {v: [] for v in nodes}
    for _weight, edge_id in block_edges:
        u, v = graph.edge(edge_id)
        if dsu.union(index_of[u], index_of[v]):
            adjacency[u].append(v)
            adjacency[v].append(u)

    # Root the forest; iterative DFS gives parents and an order whose
    # reverse accumulates subtree sizes.
    parent: Dict[int, Optional[int]] = {}
    order: List[int] = []
    for root in nodes:
        if root in parent:
            continue
        parent[root] = None
        stack = [root]
        while stack:
            v = stack.pop()
            order.append(v)
            for u in adjacency[v]:
                if u not in parent:
                    parent[u] = v
                    stack.append(u)
    subtree_size: Dict[int, float] = {v: float(sizes[v]) for v in nodes}
    children: Dict[int, List[int]] = {v: [] for v in nodes}
    for v in reversed(order):
        p = parent[v]
        if p is not None:
            subtree_size[p] += subtree_size[v]
            children[p].append(v)

    candidates = [
        v
        for v in nodes
        if parent[v] is not None and lower <= subtree_size[v] <= upper
    ]
    if not candidates:
        return None, math.inf
    if len(candidates) > max_cut_evals:
        candidates = rng.sample(candidates, max_cut_evals)

    # Evaluate candidate cuts incrementally.  The DFS above is a
    # pre-order, so the subtree of ``v`` is the contiguous slice
    # ``order[tin[v] : tin[v] + tree_count[v]]`` and the candidate
    # intervals form a laminar family: visiting them in ``tin`` order,
    # each transition either swaps disjoint intervals or peels the
    # complement of a nested one, delta-updating the inside pin counts —
    # near O(total pins) instead of one full ``cut_of`` scan per head.
    tin = {v: i for i, v in enumerate(order)}
    tree_count: Dict[int, int] = {v: 1 for v in nodes}
    for v in reversed(order):
        p = parent[v]
        if p is not None:
            tree_count[p] += tree_count[v]

    incident = hypergraph.incident_nets
    net_capacity = hypergraph.net_capacity
    block_pins = counter.block_pins
    inside_count: Dict[int, int] = {}
    cut = 0.0

    def _add(v: int) -> None:
        nonlocal cut
        for net_id in incident(v):
            total = block_pins.get(net_id, 0)
            if total <= 1:
                continue
            count = inside_count.get(net_id, 0) + 1
            inside_count[net_id] = count
            if count == 1:
                cut += net_capacity(net_id)
            elif count == total:
                cut -= net_capacity(net_id)

    def _remove(v: int) -> None:
        nonlocal cut
        for net_id in incident(v):
            total = block_pins.get(net_id, 0)
            if total <= 1:
                continue
            count = inside_count[net_id] - 1
            if count:
                inside_count[net_id] = count
            else:
                del inside_count[net_id]
            if count == total - 1:
                cut += net_capacity(net_id)
            if count == 0:
                cut -= net_capacity(net_id)

    cuts: Dict[int, float] = {}
    cur_l = cur_r = 0  # current interval [cur_l, cur_r) — empty to start
    for head in sorted(candidates, key=tin.__getitem__):
        left = tin[head]
        right = left + tree_count[head]
        if left >= cur_r:
            # Disjoint successor: swap the whole region.
            for i in range(cur_l, cur_r):
                _remove(order[i])
            for i in range(left, right):
                _add(order[i])
        else:
            # Laminarity + tin order make the new interval nested inside
            # the current one: shed the surrounding prefix and suffix.
            for i in range(cur_l, left):
                _remove(order[i])
            for i in range(right, cur_r):
                _remove(order[i])
        cur_l, cur_r = left, right
        cuts[head] = cut
    if counters is not None:
        counters.cut_evals += len(candidates)

    # Select in the original candidate order (strict <) so tie-breaking
    # matches a head-by-head scan.
    best_cut = math.inf
    best_head: Optional[int] = None
    for head in candidates:
        if cuts[head] < best_cut:
            best_cut = cuts[head]
            best_head = head
    if best_head is None:  # pragma: no cover - candidates is non-empty
        return None, math.inf
    best_region: List[int] = []
    stack = [best_head]
    while stack:
        v = stack.pop()
        best_region.append(v)
        stack.extend(children[v])
    return best_region, best_cut


# ----------------------------------------------------------------------
# Algorithm 3 recursion
# ----------------------------------------------------------------------
def _split_block(
    hypergraph: Hypergraph,
    graph: Graph,
    spec: HierarchySpec,
    lengths: Sequence[float],
    nodes: List[int],
    level: int,
    rng: random.Random,
    find_cut_restarts: int,
    strategy: str,
    counters: Optional[PerfCounters],
) -> List[List[int]]:
    """Carve one block into level-``level`` children via ``find_cut``."""
    block_size = sum(graph.node_size(v) for v in nodes)
    lower, upper = spec.child_bounds(level, block_size)
    remaining = list(nodes)
    remaining_size = block_size
    pieces: List[List[int]] = []
    while remaining:
        if remaining_size <= upper:
            pieces.append(remaining)
            break
        piece = find_cut(
            hypergraph,
            graph,
            lengths,
            remaining,
            lower,
            upper,
            rng,
            restarts=find_cut_restarts,
            strategy=strategy,
            counters=counters,
        )
        pieces.append(piece)
        piece_set = set(piece)
        remaining = [v for v in remaining if v not in piece_set]
        remaining_size -= sum(graph.node_size(v) for v in piece)
    return pieces


def _carve_block(
    hypergraph: Hypergraph,
    graph: Graph,
    spec: HierarchySpec,
    lengths: Sequence[float],
    nodes: List[int],
    level: int,
    rng: random.Random,
    find_cut_restarts: int,
    strategy: str,
    counters: Optional[PerfCounters],
):
    """Recursive carve of one block; returns the nested block structure.

    Every child block recurses with an *independent* RNG derived from a
    seed drawn in piece order, so sibling subtrees are pure functions of
    their (piece, seed) pair — the property that lets the top level fan
    children out across processes while staying bit-identical to the
    serial recursion.
    """
    if level == 0:
        return list(nodes)
    pieces = _split_block(
        hypergraph,
        graph,
        spec,
        lengths,
        nodes,
        level,
        rng,
        find_cut_restarts,
        strategy,
        counters,
    )
    child_seeds = [rng.randrange(2**31) for _ in pieces]
    return [
        _carve_block(
            hypergraph,
            graph,
            spec,
            lengths,
            piece,
            level - 1,
            random.Random(seed),
            find_cut_restarts,
            strategy,
            counters,
        )
        for piece, seed in zip(pieces, child_seeds)
    ]


def _carve_child_task(payload):
    """Process-pool task: carve one top-level child subtree.

    Returns ``(nested_structure, counters)`` so the coordinator can graft
    the subtree in child order and merge the instrumentation.
    """
    (
        hypergraph,
        graph,
        spec,
        lengths,
        piece,
        level,
        seed,
        find_cut_restarts,
        strategy,
    ) = payload
    counters = PerfCounters()
    nested = _carve_block(
        hypergraph,
        graph,
        spec,
        lengths,
        piece,
        level,
        random.Random(seed),
        find_cut_restarts,
        strategy,
        counters,
    )
    return nested, counters


def construct_partition(
    hypergraph: Hypergraph,
    graph: Graph,
    spec: HierarchySpec,
    lengths: Sequence[float],
    rng: Optional[random.Random] = None,
    find_cut_restarts: int = 1,
    strategy: str = "both",
    counters: Optional[PerfCounters] = None,
    parallel: Optional["ParallelConfig"] = None,
) -> PartitionTree:
    """Algorithm 3: top-down recursive construction of a partition.

    Parameters
    ----------
    hypergraph : Hypergraph
        The netlist whose nets define cut quality.
    graph : Graph
        The net-model expansion carrying the metric; must share node ids
        with ``hypergraph`` (clique or cycle model — star changes the
        node set and is rejected).
    spec : HierarchySpec
        Per-level size/branching bounds.
    lengths : sequence of float
        The spreading metric, indexed by ``graph`` edge id.
    rng : random.Random, optional
        Randomness for ``find_cut`` seeds and tie jitter.  Child blocks
        recurse with independent RNGs derived from seeds drawn in piece
        order, so sibling subtrees never share RNG state.
    find_cut_restarts : int, optional
        Independent attempts per ``find_cut`` strategy.
    strategy : {'both', 'prim', 'mst'}, optional
        The ``find_cut`` strategy (see module docstring).
    counters : PerfCounters, optional
        Instrumentation sink (``cut_evals``, pool events).
    parallel : repro.core.parallel.ParallelConfig, optional
        When given, the root's child subtrees are carved by worker
        processes (:func:`repro.core.parallel.parallel_map`) and grafted
        in child order.  **Engine equivalence guarantee:** the result is
        bit-identical to the serial recursion for any worker count,
        because each child is a pure function of its (piece, seed) pair
        and the merge preserves piece order.

    Returns
    -------
    PartitionTree
        A frozen partition honouring ``spec``'s size bounds.
    """
    if graph.num_nodes != hypergraph.num_nodes:
        raise PartitionError(
            "graph and hypergraph disagree on the node set (star-expanded "
            "graphs cannot drive construction)"
        )
    rng = rng or random.Random(0)
    level = spec.num_levels
    all_nodes = list(hypergraph.nodes())

    pieces = _split_block(
        hypergraph,
        graph,
        spec,
        lengths,
        all_nodes,
        level,
        rng,
        find_cut_restarts,
        strategy,
        counters,
    )
    child_seeds = [rng.randrange(2**31) for _ in pieces]

    if parallel is not None and level > 1 and len(pieces) > 1:
        from repro.core.parallel import parallel_map

        payloads = [
            (
                hypergraph,
                graph,
                spec,
                lengths,
                piece,
                level - 1,
                seed,
                find_cut_restarts,
                strategy,
            )
            for piece, seed in zip(pieces, child_seeds)
        ]
        outcomes = parallel_map(
            _carve_child_task, payloads, parallel=parallel, counters=counters
        )
        nested = []
        for child_nested, child_counters in outcomes:
            nested.append(child_nested)
            if counters is not None:
                counters.merge(child_counters)
    else:
        nested = [
            _carve_block(
                hypergraph,
                graph,
                spec,
                lengths,
                piece,
                level - 1,
                random.Random(seed),
                find_cut_restarts,
                strategy,
                counters,
            )
            for piece, seed in zip(pieces, child_seeds)
        ]
    return PartitionTree.from_nested(nested, num_nodes=hypergraph.num_nodes)
