"""The spreading lower-bound function ``g`` of linear program (P1).

For a hierarchy with size bounds ``C_0 < C_1 < ... < C_L`` and weights
``w_0 .. w_{L-1}``::

    g(x) = 0                                   if x <= C_0
    g(x) = 2 * sum_{i=0}^{l} (x - C_i) * w_i   if C_l < x <= C_{l+1}

Intuition: any node set of total size ``x > C_l`` must be split across at
least two blocks at every level up to ``l``, so its members must be spread
apart — the constraint charges each level's weight on the overshoot.
``g`` is continuous and nondecreasing (each piece adds a nonnegative term
that vanishes at the breakpoint).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.htp.hierarchy import HierarchySpec


def spreading_bound(spec: HierarchySpec, size: float) -> float:
    """``g(size)`` for a single value."""
    return float(spreading_bound_array(spec, np.array([size]))[0])


def spreading_bound_array(
    spec: HierarchySpec, sizes: Union[Sequence[float], np.ndarray]
) -> np.ndarray:
    """Vectorised ``g`` over an array of sizes.

    Sizes above ``C_L`` are allowed (the root bound only matters for
    feasibility of the partition itself, not for ``g``); they keep
    accumulating every level's term.
    """
    x = np.asarray(sizes, dtype=float)
    capacities = np.asarray(spec.capacities, dtype=float)
    weights = np.asarray(spec.weights, dtype=float)
    result = np.zeros_like(x)
    # Term i contributes 2 * (x - C_i) * w_i whenever x > C_i, for
    # i = 0 .. L-1 (level L has no weight).
    for i in range(spec.num_levels):
        overshoot = x - capacities[i]
        result += np.where(overshoot > 0, 2.0 * overshoot * weights[i], 0.0)
    return result
