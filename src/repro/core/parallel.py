"""The process-parallel engine tier.

Python's GIL caps every in-process engine at one core, while the FLOW
pipeline is full of embarrassingly-parallel structure: the batched
constraint oracle checks dozens of independent sources per sub-round,
Algorithm 1 replays independent metric/construction iterations, Algorithm
3 recurses into independent child blocks, and the hierarchy search
evaluates independent candidate trees.  This module provides the two
primitives every one of those loops shares:

:class:`MetricWorkerPool`
    A persistent ``concurrent.futures.ProcessPoolExecutor`` specialised
    for the Algorithm-2 hot path.  At start-up each worker attaches to
    the graph's CSR ``data`` array through
    ``multiprocessing.shared_memory`` and builds a read-only
    :class:`~repro.core.constraints.SpreadingOracle`
    (``manage_csr=False``) over it.  A batched sub-round is split into
    contiguous source slices, each worker runs the same distance-limited
    CSR Dijkstra + violation scan the in-process engine would, and the
    coordinator concatenates verdicts **in source order** — so the merged
    :class:`~repro.core.constraints.BatchCheck` is bit-identical to a
    single in-process ``batch_check`` call.  Metric invalidation
    piggybacks on the graph's CSR weights token: the coordinator's
    dirty-edge repricing (``update_csr_weights``) patches only the
    changed ``(edge_id, value)`` slots of the *shared* ``data`` array, so
    workers observe every injection with zero per-dispatch broadcast.

:func:`parallel_map`
    A deterministic ordered map for the coarse-grained outer loops (flow
    iterations, construct children, hierarchy candidates).  Results come
    back in item order; any pool failure (pickling, OS limits, a poisoned
    executor) falls back to the plain serial loop, which computes the
    exact same results because every task derives its randomness from a
    pre-drawn seed rather than shared RNG state.

Determinism contract
--------------------
Everything dispatched through this module must be a pure function of its
arguments plus explicitly passed seeds.  Under that contract the pooled
and serial paths are **bit-identical** for every worker count — the
property ``tests/test_parallel_engine.py`` pins across seeds, worker
counts and the fallback path.  Speed may vary with the hardware; results
may not.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

from repro.core.constraints import DEFAULT_TOL, BatchCheck, SpreadingOracle
from repro.core.perf import PerfCounters
from repro.htp.hierarchy import HierarchySpec
from repro.hypergraph.graph import Graph

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ParallelConfig:
    """Tuning knobs of the process-parallel tier.

    Attributes
    ----------
    workers:
        Worker processes per pool; None means ``os.cpu_count()``.
    min_sources_per_task:
        A batched oracle chunk is fanned out only when it can give every
        dispatched task at least this many sources; smaller chunks (the
        injection-heavy phase of Algorithm 2) stay on the coordinator
        where they are cheaper than a dispatch round-trip.
    fallback:
        When True (default), pool/dispatch failures (pickling errors, OS
        process limits, poisoned executors) silently fall back to the
        bit-identical serial path, counting a ``pool_fallbacks`` perf
        event.  When False such failures raise.
    """

    workers: Optional[int] = None
    min_sources_per_task: int = 16
    fallback: bool = True

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.min_sources_per_task < 1:
            raise ValueError("min_sources_per_task must be at least 1")

    def resolved_workers(self) -> int:
        """The effective worker count (``os.cpu_count()`` when unset)."""
        if self.workers is not None:
            return self.workers
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Worker-process state for the metric pool
# ----------------------------------------------------------------------
#: Per-worker-process singleton installed by :func:`_init_metric_worker`.
_WORKER_STATE: Optional[dict] = None


def _init_metric_worker(payload: dict) -> None:
    """Process-pool initializer: attach shared CSR data, build the oracle.

    Runs once per worker process.  The static CSR structure (``indptr``,
    ``indices``, the edge-id -> data-slot map) and the graph/spec travel
    in the pickled ``payload``; only the mutable ``data`` array — the
    floored metric — is attached via shared memory, so the coordinator's
    in-place dirty-edge patches are visible here without any message.
    """
    global _WORKER_STATE
    from scipy.sparse import csr_matrix

    shm = shared_memory.SharedMemory(name=payload["shm_name"])
    data = np.ndarray(
        (payload["nnz"],), dtype=np.float64, buffer=shm.buf
    )
    matrix = csr_matrix(
        (data, payload["indices"], payload["indptr"]),
        shape=payload["shape"],
        copy=False,
    )
    # csr_matrix may have allocated its own data array during validation;
    # force the shared view back in either way.
    matrix.data = data
    graph: Graph = payload["graph"]
    graph.adopt_csr_cache(matrix, payload["slots"])
    oracle = SpreadingOracle(
        graph,
        payload["spec"],
        engine="scipy",
        tol=payload["tol"],
        manage_csr=False,
    )
    _WORKER_STATE = {"oracle": oracle, "shm": shm}


def _metric_worker_check(sources: List[int], mode: str):
    """One worker task: verdicts for a slice of a batched sub-round."""
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("metric worker used before initialisation")
    counters = PerfCounters()
    oracle: SpreadingOracle = state["oracle"]
    oracle.counters = counters
    check = oracle.batch_check(sources, mode=mode)
    return check.violations, check.predecessors, counters, os.getpid()


class MetricWorkerPool:
    """A persistent worker pool for the batched spreading-metric oracle.

    Parameters
    ----------
    graph : Graph
        The graph whose CSR cache is moved into shared memory.  The
        coordinator's oracle keeps writing through the same cache, so
        every ``update_lengths`` is immediately visible to the workers.
    spec : HierarchySpec
        Hierarchy bounds; shipped to workers once at start-up.
    parallel : ParallelConfig, optional
        Worker count and fan-out thresholds.
    tol : float, optional
        Constraint tolerance for the worker oracles (must match the
        coordinator's oracle for bit-identical verdicts).

    Notes
    -----
    Use as a context manager or call :meth:`close` — it restores the
    graph's CSR cache to private memory and unlinks the shared segment.
    After any dispatch failure the pool marks itself broken and
    :meth:`batch_check` returns None forever; callers fall back to the
    in-process oracle, which is bit-identical.
    """

    def __init__(
        self,
        graph: Graph,
        spec: HierarchySpec,
        parallel: Optional[ParallelConfig] = None,
        tol: float = DEFAULT_TOL,
    ) -> None:
        self.parallel = parallel or ParallelConfig()
        self._graph = graph
        self._broken = False
        self._closed = False
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._executor: Optional[ProcessPoolExecutor] = None

        matrix, slots = graph.csr_structure()
        data = np.asarray(matrix.data)  # type: ignore[attr-defined]
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, data.nbytes)
        )
        shared = np.ndarray(data.shape, dtype=data.dtype, buffer=self._shm.buf)
        shared[:] = data
        matrix.data = shared  # type: ignore[attr-defined]
        self._matrix = matrix
        self._shared = shared

        # A cache-free copy of the graph for the workers (cheap relative
        # to pool start-up; avoids shipping the shared-memory views).
        clean_graph = pickle.loads(pickle.dumps(graph))
        payload = {
            "shm_name": self._shm.name,
            "nnz": int(data.shape[0]),
            "indptr": np.asarray(matrix.indptr),  # type: ignore[attr-defined]
            "indices": np.asarray(matrix.indices),  # type: ignore[attr-defined]
            "shape": (graph.num_nodes, graph.num_nodes),
            "slots": slots,
            "graph": clean_graph,
            "spec": spec,
            "tol": tol,
        }
        self.workers = max(1, self.parallel.resolved_workers())
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_metric_worker,
            initargs=(payload,),
        )

    # ------------------------------------------------------------------
    @property
    def broken(self) -> bool:
        """True once a dispatch failed; every later dispatch short-circuits."""
        return self._broken

    def poison(self) -> None:
        """Shut the executor down so the next dispatch hits the fallback.

        Used by the tests (and as an emergency brake): a poisoned pool
        refuses work, ``batch_check`` returns None, and the engine
        continues on the bit-identical serial path.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)

    def batch_check(
        self,
        oracle: SpreadingOracle,
        sources: Sequence[int],
        mode: str = "first",
    ) -> Optional[BatchCheck]:
        """Fan one batched sub-round across the pool; None means "fall back".

        Splits ``sources`` into contiguous per-worker slices, gathers the
        worker verdicts, and merges them in source order — the result is
        bit-identical to ``oracle.batch_check(sources, mode)``.  Returns
        None (without raising) when the chunk is too small to be worth a
        dispatch, or when the pool is broken/poisoned and
        ``ParallelConfig.fallback`` is on.
        """
        if self._broken or self._closed:
            return None
        slices = self._slices(list(int(v) for v in sources))
        if len(slices) <= 1:
            return None  # cheaper on the coordinator
        counters = oracle.counters
        # Make sure the coordinator's current floored metric is installed
        # in the shared data array before anyone reads it.
        oracle.install_weights()
        start = time.perf_counter()
        try:
            futures = [
                self._executor.submit(_metric_worker_check, part, mode)
                for part in slices
            ]
            parts = [future.result() for future in futures]
        except Exception:
            self._broken = True
            if counters is not None:
                counters.pool_fallbacks += 1
            if not self.parallel.fallback:
                raise
            return None
        dispatch_seconds = time.perf_counter() - start

        start = time.perf_counter()
        violations = []
        predecessor_rows = []
        for part_violations, part_predecessors, part_counters, pid in parts:
            violations.extend(part_violations)
            predecessor_rows.append(np.atleast_2d(part_predecessors))
            if counters is not None:
                key = str(pid)
                counters.pool_workers[key] = (
                    counters.pool_workers.get(key, 0)
                    + part_counters.dijkstra_sources
                )
                counters.dijkstra_calls += part_counters.dijkstra_calls
                counters.dijkstra_sources += part_counters.dijkstra_sources
                counters.nodes_settled += part_counters.nodes_settled
                counters.batch_checks += part_counters.batch_checks
                counters.batch_sources += part_counters.batch_sources
        predecessors = np.vstack(predecessor_rows)
        if counters is not None:
            counters.pool_dispatches += 1
            counters.pool_tasks += len(slices)
            counters.add_phase("pool_dispatch", dispatch_seconds)
            counters.add_phase("pool_merge", time.perf_counter() - start)
        return BatchCheck(
            sources=tuple(int(v) for v in sources),
            violations=violations,
            predecessors=predecessors,
        )

    def _slices(self, sources: List[int]) -> List[List[int]]:
        """Contiguous, balanced source slices (order-preserving)."""
        per_task = max(1, self.parallel.min_sources_per_task)
        tasks = min(self.workers, len(sources) // per_task)
        if tasks <= 1:
            return [sources]
        bounds = np.linspace(0, len(sources), tasks + 1).astype(int)
        return [
            sources[bounds[i] : bounds[i + 1]]
            for i in range(tasks)
            if bounds[i] < bounds[i + 1]
        ]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down and return the CSR cache to private memory."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            try:
                self._executor.shutdown(wait=True, cancel_futures=True)
            except Exception:  # pragma: no cover - shutdown is best-effort
                pass
        if self._shm is not None:
            # The graph's cached matrix must outlive the shared segment.
            try:
                self._matrix.data = self._shared.copy()  # type: ignore[attr-defined]
            except Exception:  # pragma: no cover - cache may be replaced
                pass
            try:
                self._shm.close()
                self._shm.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass
            self._shm = None

    def __enter__(self) -> "MetricWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Generic ordered fan-out for the coarse outer loops
# ----------------------------------------------------------------------
def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    parallel: Optional[ParallelConfig] = None,
    counters: Optional[PerfCounters] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, in worker processes when enabled.

    Results are returned **in item order**, so a deterministic ``fn``
    (pure in its argument, all randomness from seeds inside the item)
    yields bit-identical output whether the map ran pooled or serial.

    Parameters
    ----------
    fn : callable
        A module-level (picklable) function of one item.
    items : sequence
        Task payloads; each must be picklable for the pooled path.
    parallel : ParallelConfig, optional
        None, a single worker, or a single item all mean "run serially".
    counters : PerfCounters, optional
        Receives ``pool_tasks``/``pool_dispatches``; a fallback event is
        recorded when the pool path failed and the serial loop took over.

    Returns
    -------
    list
        ``[fn(item) for item in items]``, computed either way.
    """
    items = list(items)
    if (
        parallel is None
        or parallel.resolved_workers() <= 1
        or len(items) <= 1
    ):
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(
            max_workers=min(parallel.resolved_workers(), len(items))
        ) as executor:
            futures = [executor.submit(fn, item) for item in items]
            results = [future.result() for future in futures]
    except Exception:
        if counters is not None:
            counters.pool_fallbacks += 1
        if not parallel.fallback:
            raise
        return [fn(item) for item in items]
    if counters is not None:
        counters.pool_dispatches += 1
        counters.pool_tasks += len(items)
    return results
