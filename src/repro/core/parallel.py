"""The process-parallel engine tier.

Python's GIL caps every in-process engine at one core, while the FLOW
pipeline is full of embarrassingly-parallel structure: the batched
constraint oracle checks dozens of independent sources per sub-round,
Algorithm 1 replays independent metric/construction iterations, Algorithm
3 recurses into independent child blocks, and the hierarchy search
evaluates independent candidate trees.  This module provides the two
primitives every one of those loops shares:

:class:`MetricWorkerPool`
    A persistent ``concurrent.futures.ProcessPoolExecutor`` specialised
    for the Algorithm-2 hot path.  At start-up each worker attaches to
    the graph's CSR ``data`` array through
    ``multiprocessing.shared_memory`` and builds a read-only
    :class:`~repro.core.constraints.SpreadingOracle`
    (``manage_csr=False``) over it.  A batched sub-round is split into
    contiguous source slices, each worker runs the same distance-limited
    CSR Dijkstra + violation scan the in-process engine would, and the
    coordinator concatenates verdicts **in source order** — so the merged
    :class:`~repro.core.constraints.BatchCheck` is bit-identical to a
    single in-process ``batch_check`` call.  Metric invalidation
    piggybacks on the graph's CSR weights token: the coordinator's
    dirty-edge repricing (``update_csr_weights``) patches only the
    changed ``(edge_id, value)`` slots of the *shared* ``data`` array, so
    workers observe every injection with zero per-dispatch broadcast.

:func:`parallel_map`
    A deterministic ordered map for the coarse-grained outer loops (flow
    iterations, construct children, hierarchy candidates).  Results come
    back in item order; any pool failure (pickling, OS limits, a poisoned
    executor) falls back to the plain serial loop, which computes the
    exact same results because every task derives its randomness from a
    pre-drawn seed rather than shared RNG state.

Fault tolerance
---------------
A crashed, hung or corrupting worker must not forfeit the run — or its
parallelism.  :meth:`MetricWorkerPool.batch_check` runs every dispatch
through a **degradation ladder** whose budgets live in
:class:`~repro.core.faults.FaultTolerance`:

1. **retry task** — a failed slice is resubmitted with bounded
   exponential backoff (``pool_task_retries``);
2. **respawn worker** — a dead worker (``BrokenProcessPool``) or a task
   past its deadline kills and rebuilds the executor, re-attaching the
   same shared-memory segment (``pool_respawns``);
3. **shrink pool** — when the respawn budget at the current size runs
   out, the worker count is halved and the budget reset
   (``pool_shrinks``);
4. **serial** — at ``min_workers`` the pool marks itself broken and
   every later dispatch short-circuits to the bit-identical in-process
   path (``pool_fallbacks``).

A scribbled shared-memory segment is caught by a CRC over the CSR
``data`` array around each dispatch; the coordinator repairs the segment
from its private metric (:meth:`SpreadingOracle.reinstall_weights`) and
re-runs the dispatch cleanly (``pool_corruptions``).  Every transition
is logged with its *original* cause in ``PerfCounters.degradations`` —
the ladder never swallows the exception that triggered it.  Controlled
failures for the chaos harness come from
:class:`~repro.core.faults.FaultPlan` (``htp partition --fault-plan``).

Determinism contract
--------------------
Everything dispatched through this module must be a pure function of its
arguments plus explicitly passed seeds.  Under that contract the pooled
and serial paths are **bit-identical** for every worker count — the
property ``tests/test_parallel_engine.py`` pins across seeds, worker
counts and the fallback path, and ``tests/chaos/`` pins under every
injected fault.  Speed may vary with the hardware; results may not.
"""

from __future__ import annotations

import os
import pickle
import time
import zlib
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

import numpy as np

from repro.core.constraints import DEFAULT_TOL, BatchCheck, SpreadingOracle
from repro.core.faults import FaultPlan, FaultTolerance, InjectedFault, trip
from repro.core.perf import PerfCounters
from repro.htp.hierarchy import HierarchySpec
from repro.hypergraph.graph import Graph

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ParallelConfig:
    """Tuning knobs of the process-parallel tier.

    Attributes
    ----------
    workers:
        Worker processes per pool; None means ``os.cpu_count()``.
    min_sources_per_task:
        A batched oracle chunk is fanned out only when it can give every
        dispatched task at least this many sources; smaller chunks (the
        injection-heavy phase of Algorithm 2) stay on the coordinator
        where they are cheaper than a dispatch round-trip.
    fallback:
        When True (default), pool/dispatch failures that exhaust the
        degradation ladder fall back to the bit-identical serial path,
        counting a ``pool_fallbacks`` perf event and logging the cause.
        When False the original exception is re-raised.
    tolerance:
        Degradation-ladder budgets (deadline, retries, respawn/shrink
        limits); None means :class:`FaultTolerance` defaults.
    fault_plan:
        Deterministic fault injection for chaos testing; None (default)
        injects nothing.
    autoserial:
        When True (default) the engine-resolution sites skip the pool
        entirely on boxes where it cannot win (``os.cpu_count() <= 1``
        or a single resolved worker — see :func:`should_autoserial`),
        and a running pool retires itself once measured dispatch
        overhead exceeds ``overhead_threshold`` for
        ``overhead_strikes`` consecutive dispatches.  Both paths count
        ``pool_autoserial`` and stay warning-free; results are
        bit-identical either way.  Tests that exercise the pool
        machinery itself pass False.
    overhead_threshold:
        Fraction of a dispatch's wall time NOT covered by its longest
        worker task above which the dispatch counts as overhead-bound
        (tasks serialised on too few cores, or IPC dominating tiny
        tasks).
    overhead_strikes:
        Consecutive overhead-bound dispatches before the pool degrades
        itself to the serial path.
    """

    workers: Optional[int] = None
    min_sources_per_task: int = 16
    fallback: bool = True
    tolerance: Optional[FaultTolerance] = None
    fault_plan: Optional[FaultPlan] = None
    autoserial: bool = True
    overhead_threshold: float = 0.45
    overhead_strikes: int = 3

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.min_sources_per_task < 1:
            raise ValueError("min_sources_per_task must be at least 1")
        if not 0.0 < self.overhead_threshold <= 1.0:
            raise ValueError("overhead_threshold must be in (0, 1]")
        if self.overhead_strikes < 1:
            raise ValueError("overhead_strikes must be at least 1")

    def resolved_workers(self) -> int:
        """The effective worker count (``os.cpu_count()`` when unset)."""
        if self.workers is not None:
            return self.workers
        return os.cpu_count() or 1


def should_autoserial(parallel: Optional[ParallelConfig]) -> bool:
    """True when ``engine='parallel'`` should quietly run serial instead.

    A pool on a single-core box (or with a single resolved worker) can
    only serialise its tasks behind IPC overhead — the BENCH_micro
    ``parallel4`` row on a 1-CPU container measured speedup *below* 1 —
    so the engine-resolution sites consult this before spawning a pool
    and take the bit-identical in-process path, counting
    ``pool_autoserial``.  Explicitly supplied pools bypass the check, as
    does ``ParallelConfig(autoserial=False)`` (the pool-machinery and
    chaos tests, which must exercise real dispatches anywhere).
    """
    config = parallel or ParallelConfig()
    if not config.autoserial:
        return False
    return config.resolved_workers() <= 1 or (os.cpu_count() or 1) <= 1


# ----------------------------------------------------------------------
# Worker-process state for the metric pool
# ----------------------------------------------------------------------
#: Per-worker-process singleton installed by :func:`_init_metric_worker`.
_WORKER_STATE: Optional[dict] = None


def _init_metric_worker(payload: dict) -> None:
    """Process-pool initializer: attach shared CSR data, build the oracle.

    Runs once per worker process.  The static CSR structure (``indptr``,
    ``indices``, the edge-id -> data-slot map) and the graph/spec travel
    in the pickled ``payload``; only the mutable ``data`` array — the
    floored metric — is attached via shared memory, so the coordinator's
    in-place dirty-edge patches are visible here without any message.
    """
    global _WORKER_STATE
    from scipy.sparse import csr_matrix

    shm = shared_memory.SharedMemory(name=payload["shm_name"])
    data = np.ndarray(
        (payload["nnz"],), dtype=np.float64, buffer=shm.buf
    )
    matrix = csr_matrix(
        (data, payload["indices"], payload["indptr"]),
        shape=payload["shape"],
        copy=False,
    )
    # csr_matrix may have allocated its own data array during validation;
    # force the shared view back in either way.
    matrix.data = data
    graph: Graph = payload["graph"]
    graph.adopt_csr_cache(matrix, payload["slots"])
    oracle = SpreadingOracle(
        graph,
        payload["spec"],
        engine="scipy",
        tol=payload["tol"],
        manage_csr=False,
    )
    kernel = None
    if payload.get("native"):
        # Opportunistic: the coordinator saw the compiled kernel, but a
        # worker that cannot build one (import raced, env flipped) just
        # answers with the bit-identical scipy path instead.
        try:
            from repro.core import _kernel as native_kernel_mod

            if native_kernel_mod.available():
                kernel = native_kernel_mod.NativeMetricKernel(
                    graph, payload["spec"], tol=payload["tol"]
                )
        except Exception:  # pragma: no cover - defensive
            kernel = None
    _WORKER_STATE = {
        "oracle": oracle,
        "shm": shm,
        "data": data,
        "plan": payload.get("plan"),
        "kernel": kernel,
    }


def _metric_worker_check(
    sources: List[int], mode: str, coords: Optional[Dict[str, int]] = None
):
    """One worker task: verdicts for a slice of a batched sub-round.

    ``coords`` names the task for the worker-side fault-injection point
    (``dispatch``/``task``/``attempt``/``round``); production runs ship
    no plan and the trip is a no-op.
    """
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("metric worker used before initialisation")
    trip(state["plan"], "task", coords or {}, corrupt_target=state["data"])
    started = time.perf_counter()
    counters = PerfCounters()
    oracle: SpreadingOracle = state["oracle"]
    oracle.counters = counters
    kernel = state.get("kernel")
    if kernel is not None and mode == "first":
        # Native composition: each source of the slice is answered by
        # the early-exiting C kernel.  The shipped distance rows hold
        # only the settled prefix (the rest stays +inf) — exactly the
        # region the snapshot-reuse proof needs, because a dirty edge
        # that changes a first-violation verdict always lies on a
        # snapshot shortest path *inside* that prefix.
        n = oracle.graph.num_nodes
        dist = np.full((len(sources), n), np.inf)
        violations = []
        for j, source in enumerate(sources):
            settled, violation = kernel.check(int(source), out_row=dist[j])
            counters.dijkstra_calls += 1
            counters.dijkstra_sources += 1
            counters.nodes_settled += settled
            violations.append(violation)
        counters.batch_checks += 1
        counters.batch_sources += len(sources)
        seconds = time.perf_counter() - started
        return violations, dist, counters, os.getpid(), seconds
    check = oracle.batch_check(sources, mode=mode)
    seconds = time.perf_counter() - started
    return check.violations, check.dist, counters, os.getpid(), seconds


class MetricWorkerPool:
    """A persistent, fault-tolerant worker pool for the batched oracle.

    Parameters
    ----------
    graph : Graph
        The graph whose CSR cache is moved into shared memory.  The
        coordinator's oracle keeps writing through the same cache, so
        every ``update_lengths`` is immediately visible to the workers.
    spec : HierarchySpec
        Hierarchy bounds; shipped to workers once at start-up.
    parallel : ParallelConfig, optional
        Worker count, fan-out thresholds, ladder budgets and fault plan.
    tol : float, optional
        Constraint tolerance for the worker oracles (must match the
        coordinator's oracle for bit-identical verdicts).
    fault_plan : FaultPlan, optional
        Overrides ``parallel.fault_plan`` when given.
    tolerance : FaultTolerance, optional
        Overrides ``parallel.tolerance`` when given.
    use_native : bool, optional
        When True, workers answer ``mode='first'`` slices with the
        compiled metric kernel (``repro.core._kernel``) where it is
        importable in the worker process.  Verdicts are bit-identical
        either way; this only changes who computes them.

    Notes
    -----
    Use as a context manager or call :meth:`close` — it restores the
    graph's CSR cache to private memory and unlinks the shared segment.
    Worker failures walk the degradation ladder (see the module
    docstring); only when the ladder is exhausted does the pool mark
    itself broken, after which :meth:`batch_check` returns None forever
    and callers continue on the bit-identical in-process path.  The
    exception that broke the pool is kept on :attr:`last_error` and in
    the counters' degradation log — never swallowed.
    """

    def __init__(
        self,
        graph: Graph,
        spec: HierarchySpec,
        parallel: Optional[ParallelConfig] = None,
        tol: float = DEFAULT_TOL,
        fault_plan: Optional[FaultPlan] = None,
        tolerance: Optional[FaultTolerance] = None,
        use_native: bool = False,
    ) -> None:
        self.parallel = parallel or ParallelConfig()
        self.tolerance = tolerance or self.parallel.tolerance or FaultTolerance()
        self._plan = fault_plan if fault_plan is not None else self.parallel.fault_plan
        self._graph = graph
        self._broken = False
        self._broken_recorded = False
        self._closed = False
        self._round = 0
        self._dispatch_index = 0
        self._respawns_since_shrink = 0
        self._overhead_strikes = 0
        #: The most recent underlying exception (preserved, never swallowed).
        self.last_error: Optional[BaseException] = None
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._executor: Optional[ProcessPoolExecutor] = None

        matrix, slots = graph.csr_structure()
        data = np.asarray(matrix.data)  # type: ignore[attr-defined]
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, data.nbytes)
        )
        shared = np.ndarray(data.shape, dtype=data.dtype, buffer=self._shm.buf)
        shared[:] = data
        matrix.data = shared  # type: ignore[attr-defined]
        self._matrix = matrix
        self._shared = shared

        # A cache-free copy of the graph for the workers (cheap relative
        # to pool start-up; avoids shipping the shared-memory views).
        clean_graph = pickle.loads(pickle.dumps(graph))
        self._payload = {
            "shm_name": self._shm.name,
            "nnz": int(data.shape[0]),
            "indptr": np.asarray(matrix.indptr),  # type: ignore[attr-defined]
            "indices": np.asarray(matrix.indices),  # type: ignore[attr-defined]
            "shape": (graph.num_nodes, graph.num_nodes),
            "slots": slots,
            "graph": clean_graph,
            "spec": spec,
            "tol": tol,
            "plan": self._plan,
            "native": bool(use_native),
        }
        self.workers = max(1, self.parallel.resolved_workers())
        self._spawn_executor()

    # ------------------------------------------------------------------
    @property
    def broken(self) -> bool:
        """True once the degradation ladder was exhausted (or the pool
        was poisoned); every later dispatch short-circuits to serial."""
        return self._broken

    def begin_round(self, round_index: int) -> None:
        """Tell the pool which Algorithm-2 round is running.

        Only consumed by the fault-injection coordinates (``round=``
        conditions in a :class:`FaultPlan`); a plain production run may
        skip it.
        """
        self._round = int(round_index)

    def poison(self) -> None:
        """Emergency brake: mark the pool broken and kill its workers.

        A poisoned pool refuses work — ``batch_check`` returns None (one
        ``pool_fallbacks`` event is recorded on its next call) and the
        engine continues on the bit-identical serial path.  Unlike
        ladder exhaustion this is immediate and unconditional.
        """
        self._broken = True
        if self.last_error is None:
            self.last_error = RuntimeError("pool poisoned")
        self._kill_executor()

    # ------------------------------------------------------------------
    # Executor lifecycle (the respawn/shrink rungs of the ladder)
    # ------------------------------------------------------------------
    def _spawn_executor(self) -> None:
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_metric_worker,
            initargs=(self._payload,),
        )

    def _kill_executor(self) -> None:
        """Tear the executor down hard, terminating hung workers."""
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        processes = list(getattr(executor, "_processes", {}).values())
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - shutdown is best-effort
            pass
        for process in processes:
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already dead
                pass

    def _respawn_or_shrink(
        self, counters: Optional[PerfCounters], cause: BaseException
    ) -> bool:
        """Walk one rung up the ladder: respawn, then shrink, then give up.

        Returns True when a fresh executor is available, False when the
        ladder is exhausted (the pool is then broken and the caller must
        degrade this dispatch to the serial path).
        """
        tol = self.tolerance
        if self._respawns_since_shrink >= tol.respawn_limit:
            shrunk = max(tol.min_workers, self.workers // 2)
            if shrunk >= self.workers:
                self._mark_broken(counters, cause)
                return False
            self.workers = shrunk
            self._respawns_since_shrink = 0
            if counters is not None:
                counters.pool_shrinks += 1
                counters.record_degradation("shrink", cause)
        else:
            self._respawns_since_shrink += 1
        if counters is not None:
            counters.pool_respawns += 1
            counters.record_degradation("respawn", cause)
        self._kill_executor()
        try:
            self._spawn_executor()
        except Exception as exc:  # pragma: no cover - OS-level spawn failure
            self._mark_broken(counters, exc)
            return False
        return True

    def _mark_broken(
        self, counters: Optional[PerfCounters], cause: object
    ) -> None:
        """Final rung: give up on parallelism, keep the cause."""
        self._broken = True
        self._broken_recorded = True
        if isinstance(cause, BaseException):
            self.last_error = cause
        elif self.last_error is None:
            self.last_error = RuntimeError(str(cause))
        if counters is not None:
            counters.record_degradation("serial", cause)
        self._kill_executor()

    # ------------------------------------------------------------------
    def batch_check(
        self,
        oracle: SpreadingOracle,
        sources: Sequence[int],
        mode: str = "first",
    ) -> Optional[BatchCheck]:
        """Fan one batched sub-round across the pool; None means "fall back".

        Splits ``sources`` into contiguous per-worker slices, gathers the
        worker verdicts, and merges them in source order — the result is
        bit-identical to ``oracle.batch_check(sources, mode)``.  Worker
        failures are absorbed by the degradation ladder; a None return
        (chunk too small, ladder exhausted, pool poisoned) tells the
        caller to run the bit-identical in-process check instead.  With
        ``ParallelConfig.fallback`` off, the *original* failure is
        re-raised instead of returning None.
        """
        counters = oracle.counters
        if self._closed:
            return None
        if self._broken:
            self._record_broken_once(counters)
            return None
        slices = self._slices(list(int(v) for v in sources))
        if len(slices) <= 1:
            return None  # cheaper on the coordinator
        dispatch = self._dispatch_index
        self._dispatch_index += 1
        # Make sure the coordinator's current floored metric is installed
        # in the shared data array before anyone reads it.
        oracle.install_weights()
        try:
            trip(
                self._plan,
                "dispatch",
                {"dispatch": dispatch, "round": self._round, "attempt": 0},
            )
        except InjectedFault as exc:
            self.last_error = exc
            if counters is not None:
                counters.faults_injected += 1
                counters.pool_fallbacks += 1
                counters.record_degradation("dispatch-serial", exc, site="dispatch")
            if not self.parallel.fallback:
                raise
            return None
        start = time.perf_counter()
        checksum_before = self._checksum()
        attempts = [0] * len(slices)
        parts = self._run_ladder(slices, mode, dispatch, counters, attempts)
        if parts is not None and self._checksum() != checksum_before:
            parts = self._recover_corruption(
                oracle, slices, mode, dispatch, counters, attempts,
                checksum_before,
            )
        if parts is None:
            if counters is not None:
                counters.pool_fallbacks += 1
            if not self.parallel.fallback and self.last_error is not None:
                raise self.last_error
            return None
        dispatch_seconds = time.perf_counter() - start

        start = time.perf_counter()
        violations = []
        dist_rows = []
        task_seconds: List[float] = []
        for part_violations, part_dist, part_counters, pid, seconds in parts:
            violations.extend(part_violations)
            dist_rows.append(np.atleast_2d(part_dist))
            task_seconds.append(seconds)
            if counters is not None:
                key = str(pid)
                counters.pool_workers[key] = (
                    counters.pool_workers.get(key, 0)
                    + part_counters.dijkstra_sources
                )
                counters.dijkstra_calls += part_counters.dijkstra_calls
                counters.dijkstra_sources += part_counters.dijkstra_sources
                counters.nodes_settled += part_counters.nodes_settled
                counters.batch_checks += part_counters.batch_checks
                counters.batch_sources += part_counters.batch_sources
        dist = np.vstack(dist_rows)
        if counters is not None:
            counters.pool_dispatches += 1
            counters.pool_tasks += len(slices)
            counters.add_phase("pool_dispatch", dispatch_seconds)
            counters.add_phase("pool_merge", time.perf_counter() - start)
        self._note_dispatch_economics(counters, dispatch_seconds, task_seconds)
        return BatchCheck(
            sources=tuple(int(v) for v in sources),
            violations=violations,
            dist=dist,
        )

    def _note_dispatch_economics(
        self,
        counters: Optional[PerfCounters],
        dispatch_seconds: float,
        task_seconds: List[float],
    ) -> None:
        """Self-degrade when dispatching measurably cannot pay for itself.

        The fraction of a dispatch's wall time not covered by its
        longest worker task is pure overhead: either the tasks
        serialised behind too few cores (the 1-core regression) or IPC
        dominates tiny tasks.  After ``overhead_strikes`` consecutive
        overhead-bound dispatches the pool retires itself — every later
        ``batch_check`` returns None and the engine continues on the
        bit-identical in-process path.  Gated on
        ``ParallelConfig.autoserial`` so the pool-machinery and chaos
        tests are unaffected.
        """
        if not self.parallel.autoserial or self._broken:
            return
        if dispatch_seconds <= 0 or not task_seconds:
            return
        overhead = (
            max(0.0, dispatch_seconds - max(task_seconds)) / dispatch_seconds
        )
        if overhead <= self.parallel.overhead_threshold:
            self._overhead_strikes = 0
            return
        self._overhead_strikes += 1
        if self._overhead_strikes < self.parallel.overhead_strikes:
            return
        # Not a fault: suppress the broken-pool fallback accounting and
        # keep the path warning-free.
        self._broken = True
        self._broken_recorded = True
        if counters is not None:
            counters.pool_autoserial += 1
            counters.record_degradation(
                "autoserial",
                f"dispatch overhead {overhead:.0%} exceeded "
                f"{self.parallel.overhead_threshold:.0%} for "
                f"{self.parallel.overhead_strikes} consecutive dispatches",
                site="dispatch-economics",
            )

    def _record_broken_once(self, counters: Optional[PerfCounters]) -> None:
        """Count the transition to permanent-serial exactly once."""
        if self._broken_recorded:
            return
        self._broken_recorded = True
        if counters is not None:
            counters.pool_fallbacks += 1
            counters.record_degradation(
                "serial", self.last_error or "pool broken"
            )

    def _checksum(self) -> int:
        """CRC of the shared CSR ``data`` segment (corruption detector)."""
        return zlib.crc32(self._shared.tobytes())

    def _recover_corruption(
        self,
        oracle: SpreadingOracle,
        slices: List[List[int]],
        mode: str,
        dispatch: int,
        counters: Optional[PerfCounters],
        attempts: List[int],
        checksum_before: int,
    ) -> Optional[list]:
        """Repair a scribbled shared segment and re-run the dispatch.

        The coordinator's oracle holds the authoritative metric in
        private memory; reinstalling it rewrites every shared slot, so
        the repair is exact.  The re-run uses fresh ``attempt``
        coordinates — an attempt-0 fault plan cannot re-fire — and its
        results are only accepted if the segment stays clean.
        """
        corruption = RuntimeError(
            f"shared CSR data corrupted during dispatch {dispatch}"
        )
        self.last_error = corruption
        if counters is not None:
            counters.pool_corruptions += 1
            counters.faults_injected += 1
            counters.record_degradation("repair", corruption)
        oracle.reinstall_weights()
        if self._checksum() != checksum_before:  # pragma: no cover - exact
            self._mark_broken(counters, corruption)
            return None
        for i in range(len(attempts)):
            attempts[i] += 1
        parts = self._run_ladder(slices, mode, dispatch, counters, attempts)
        if parts is not None and self._checksum() != checksum_before:
            # Corrupted again on the clean re-run: stop trusting the pool.
            oracle.reinstall_weights()
            self._mark_broken(counters, corruption)
            return None
        return parts

    def _run_ladder(
        self,
        slices: List[List[int]],
        mode: str,
        dispatch: int,
        counters: Optional[PerfCounters],
        attempts: List[int],
    ) -> Optional[list]:
        """Run one dispatch to completion through the degradation ladder.

        Returns the per-slice worker results (in slice order) or None
        when the ladder was exhausted.  ``attempts`` is caller-owned so
        a corruption re-run continues the attempt numbering.
        """
        tol = self.tolerance
        results: List[Optional[tuple]] = [None] * len(slices)
        pending = list(range(len(slices)))
        escalations = 0
        wave = 0
        shrink_depth = max(1, self.workers).bit_length()
        max_waves = (tol.task_retries + 2) * (tol.respawn_limit + 2) * (
            shrink_depth + 1
        )
        while pending:
            wave += 1
            if wave > max_waves:  # pragma: no cover - defensive bound
                self._mark_broken(
                    counters,
                    self.last_error
                    or RuntimeError("dispatch wave budget exhausted"),
                )
                return None
            if self._executor is None:
                try:
                    self._spawn_executor()
                except Exception as exc:  # pragma: no cover - spawn failure
                    self._mark_broken(counters, exc)
                    return None
            futures = {}
            submit_error: Optional[BaseException] = None
            for i in pending:
                coords = {
                    "dispatch": dispatch,
                    "task": i,
                    "attempt": attempts[i],
                    "round": self._round,
                }
                try:
                    futures[i] = self._executor.submit(
                        _metric_worker_check, slices[i], mode, coords
                    )
                except Exception as exc:
                    submit_error = exc
                    break
            if submit_error is not None:
                for future in futures.values():
                    future.cancel()
                self.last_error = submit_error
                if not self._respawn_or_shrink(counters, submit_error):
                    return None
                continue
            done, not_done = futures_wait(
                list(futures.values()), timeout=tol.task_deadline
            )
            index_of = {future: i for i, future in futures.items()}
            next_pending: List[int] = []
            respawn_cause: Optional[BaseException] = None
            for future in done:
                i = index_of[future]
                try:
                    results[i] = future.result()
                    continue
                except BrokenExecutor as exc:
                    # A worker process died; the whole executor is gone.
                    respawn_cause = exc
                except Exception as exc:
                    if counters is not None:
                        if isinstance(exc, InjectedFault):
                            counters.faults_injected += 1
                        counters.pool_task_retries += 1
                        counters.record_degradation("retry", exc)
                    self.last_error = exc
                attempts[i] += 1
                next_pending.append(i)
            if not_done:
                timed_out = sorted(index_of[future] for future in not_done)
                respawn_cause = TimeoutError(
                    f"tasks {timed_out} of dispatch {dispatch} missed the "
                    f"{tol.task_deadline}s deadline"
                )
                for future in not_done:
                    future.cancel()
                for i in timed_out:
                    attempts[i] += 1
                    next_pending.append(i)
                    if counters is not None:
                        counters.pool_task_retries += 1
            if respawn_cause is not None:
                self.last_error = respawn_cause
                if not self._respawn_or_shrink(counters, respawn_cause):
                    return None
            elif next_pending:
                # Plain failures only escalate once their retry budget
                # (grown by one per prior escalation) is spent.
                over_budget = [
                    i
                    for i in next_pending
                    if attempts[i] > tol.task_retries + escalations
                ]
                if over_budget:
                    escalations += 1
                    if not self._respawn_or_shrink(
                        counters, self.last_error or RuntimeError("retries exhausted")
                    ):
                        return None
            pending = sorted(set(next_pending))
            if pending:
                backoff = tol.backoff(wave)
                if backoff > 0:
                    time.sleep(backoff)
        return results

    def _slices(self, sources: List[int]) -> List[List[int]]:
        """Contiguous, balanced source slices (order-preserving)."""
        per_task = max(1, self.parallel.min_sources_per_task)
        tasks = min(self.workers, len(sources) // per_task)
        if tasks <= 1:
            return [sources]
        bounds = np.linspace(0, len(sources), tasks + 1).astype(int)
        return [
            sources[bounds[i] : bounds[i + 1]]
            for i in range(tasks)
            if bounds[i] < bounds[i + 1]
        ]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down and return the CSR cache to private memory."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            try:
                self._executor.shutdown(wait=True, cancel_futures=True)
            except Exception:  # pragma: no cover - shutdown is best-effort
                pass
            self._executor = None
        if self._shm is not None:
            # The graph's cached matrix must outlive the shared segment.
            try:
                self._matrix.data = self._shared.copy()  # type: ignore[attr-defined]
            except Exception:  # pragma: no cover - cache may be replaced
                pass
            try:
                self._shm.close()
                self._shm.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass
            self._shm = None

    def __enter__(self) -> "MetricWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Generic ordered fan-out for the coarse outer loops
# ----------------------------------------------------------------------
def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    parallel: Optional[ParallelConfig] = None,
    counters: Optional[PerfCounters] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, in worker processes when enabled.

    Results are returned **in item order**, so a deterministic ``fn``
    (pure in its argument, all randomness from seeds inside the item)
    yields bit-identical output whether the map ran pooled or serial.

    Parameters
    ----------
    fn : callable
        A module-level (picklable) function of one item.
    items : sequence
        Task payloads; each must be picklable for the pooled path.
    parallel : ParallelConfig, optional
        None, a single worker, or a single item all mean "run serially".
    counters : PerfCounters, optional
        Receives ``pool_tasks``/``pool_dispatches``; a fallback event —
        with the original exception preserved on the degradation record —
        is logged when the pool path failed and the serial loop took
        over.

    Returns
    -------
    list
        ``[fn(item) for item in items]``, computed either way.
    """
    items = list(items)
    if (
        parallel is None
        or parallel.resolved_workers() <= 1
        or len(items) <= 1
    ):
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(
            max_workers=min(parallel.resolved_workers(), len(items))
        ) as executor:
            futures = [executor.submit(fn, item) for item in items]
            results = [future.result() for future in futures]
    except Exception as exc:
        if counters is not None:
            counters.pool_fallbacks += 1
            counters.record_degradation("map-serial", exc, site="parallel_map")
        if not parallel.fallback:
            raise
        return [fn(item) for item in items]
    if counters is not None:
        counters.pool_dispatches += 1
        counters.pool_tasks += len(items)
    return results
