"""Crash-safe checkpointing of the FLOW driver (Algorithm 1/2 state).

The spreading-metric rounds of Algorithm 2 dominate the runtime on large
netlists, and before this module a killed process replayed every round
from scratch.  Here the round state becomes durable: a checkpoint is an
atomic (write-to-tmp, ``os.replace``) JSON file stamped with a CRC-32 of
its canonical payload, holding everything the round loop needs to
continue bit-identically —

* the flow array ``f`` and edge lengths ``d`` (base64 of the raw float64
  bytes, so the round trip is exact to the last bit);
* the still-active source set, in its current shuffled order;
* the injection / round counters and the batched loop's chunk size;
* the visit-order RNG state (``random.Random.getstate()``);
* the outcomes of every *completed* FLOW iteration (cost, partition,
  metric) so the driver itself is resumable, not just one metric.

A run killed at any point and resumed via ``flow_htp(resume_from=...)``
produces the same :class:`~repro.core.flow_htp.FlowHTPResult` (partition,
cost, per-iteration diagnostics, metric arrays) as an uninterrupted run:
checkpoints land only at round boundaries, and every decision after a
round boundary is a pure function of the state captured there.

Corruption is a counted event, never a crash: a torn or CRC-failing
checkpoint file is skipped (``checkpoints_discarded``) and the newest
*valid* one wins; a checkpoint whose fingerprint does not match the
current (netlist, hierarchy, config) is stale and likewise discarded.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.perf import PerfCounters
from repro.errors import CheckpointError

#: Checkpoint file name pattern: ``ckpt-<seq>.json``; the sequence number
#: only orders files, the payload's own counters carry the semantics.
_CKPT_RE = re.compile(r"^ckpt-(\d{8})\.json$")

#: Format version written into every payload; bumped on layout changes.
CHECKPOINT_VERSION = 1

#: Checkpoints retained per directory (newest first); older ones are
#: pruned after each successful write so disk use stays bounded.
DEFAULT_KEEP = 3


# ----------------------------------------------------------------------
# Encoding helpers
# ----------------------------------------------------------------------
def encode_array(array: np.ndarray) -> Dict[str, str]:
    """A float array as ``{"dtype", "b64"}`` — bit-exact, JSON-safe."""
    array = np.ascontiguousarray(array)
    return {
        "dtype": str(array.dtype),
        "b64": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(doc: Dict[str, str]) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    try:
        return np.frombuffer(
            base64.b64decode(doc["b64"]), dtype=np.dtype(doc["dtype"])
        ).copy()
    except (KeyError, TypeError, ValueError, binascii.Error) as exc:
        raise CheckpointError(f"malformed array payload: {exc!r}") from exc


def encode_rng_state(state) -> List[object]:
    """``random.Random.getstate()`` as JSON scalars."""
    version, internal, gauss_next = state
    return [int(version), [int(x) for x in internal], gauss_next]


def decode_rng_state(doc) -> Tuple[object, ...]:
    """Inverse of :func:`encode_rng_state` (feed to ``setstate``)."""
    try:
        version, internal, gauss_next = doc
        return (int(version), tuple(int(x) for x in internal), gauss_next)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed RNG state: {exc!r}") from exc


def payload_crc(payload: Dict[str, object]) -> str:
    """CRC-32 (hex) of the canonical JSON form of ``payload``."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return format(binascii.crc32(blob.encode("utf-8")) & 0xFFFFFFFF, "08x")


# ----------------------------------------------------------------------
# Atomic file I/O
# ----------------------------------------------------------------------
def write_checkpoint_file(
    directory: Union[str, Path], seq: int, payload: Dict[str, object]
) -> Path:
    """Write ``payload`` atomically as ``ckpt-<seq>.json`` under ``directory``.

    The envelope is ``{"crc32": ..., "payload": ...}`` with the CRC over
    the canonical payload JSON; the file appears via tmp + ``os.replace``
    so a crash mid-write can only ever leave a ``.tmp`` orphan, never a
    torn checkpoint under the real name.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"ckpt-{seq:08d}.json"
    envelope = {"crc32": payload_crc(payload), "payload": payload}
    tmp = path.with_suffix(".json.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def read_checkpoint_file(path: Union[str, Path]) -> Dict[str, object]:
    """The verified payload of one checkpoint file.

    Raises :class:`CheckpointError` on unreadable/unparsable files and on
    CRC mismatches (callers scanning a directory count and skip these).
    """
    path = Path(path)
    try:
        envelope = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    if not isinstance(envelope, dict) or "payload" not in envelope:
        raise CheckpointError(f"checkpoint {path} has no payload envelope")
    payload = envelope["payload"]
    stamped = envelope.get("crc32")
    if stamped != payload_crc(payload):
        raise CheckpointError(
            f"checkpoint {path} failed its CRC check "
            f"(stamped {stamped!r})"
        )
    return payload


def list_checkpoint_frames(
    directory: Union[str, Path],
) -> List[Tuple[int, Path]]:
    """All ``ckpt-<seq>.json`` files under ``directory``, oldest first.

    Only names are inspected — no CRC check — so this is cheap enough to
    run on every replication sweep; validity is enforced where it
    matters, at install and load time.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    frames: List[Tuple[int, Path]] = []
    for entry in directory.iterdir():
        match = _CKPT_RE.match(entry.name)
        if match:
            frames.append((int(match.group(1)), entry))
    return sorted(frames)


def install_checkpoint_frame(
    directory: Union[str, Path],
    seq: int,
    envelope: Dict[str, object],
    counters: Optional[PerfCounters] = None,
) -> Optional[Path]:
    """Install a replicated ``{"crc32", "payload"}`` envelope as a frame.

    The CRC is re-verified against the payload *before* anything touches
    disk, so a frame torn in transit (or forged by a buggy peer) is
    discarded with a ``checkpoints_discarded`` count and never becomes a
    resume candidate.  Valid frames land atomically under the canonical
    ``ckpt-<seq>.json`` name via :func:`write_checkpoint_file`, which
    re-stamps the CRC from the verified payload.  Returns the written
    path, or None when the envelope was rejected.
    """
    payload = (
        envelope.get("payload") if isinstance(envelope, dict) else None
    )
    if not isinstance(payload, dict) or envelope.get("crc32") != payload_crc(
        payload
    ):
        if counters is not None:
            counters.checkpoints_discarded += 1
            counters.record_degradation(
                "checkpoint-discard",
                f"replicated frame seq {seq} failed its CRC check",
                site="checkpoint",
            )
        return None
    return write_checkpoint_file(directory, int(seq), payload)


def load_latest_checkpoint(
    directory: Union[str, Path],
    fingerprint: Optional[str] = None,
    counters: Optional[PerfCounters] = None,
) -> Optional[Tuple[int, Dict[str, object]]]:
    """The newest valid checkpoint ``(seq, payload)`` in ``directory``.

    Files that fail to parse or fail their CRC, and payloads whose
    ``fingerprint`` does not match the requested one, are discarded with
    a ``checkpoints_discarded`` count — never an exception.  Returns
    ``None`` when the directory is missing or holds nothing usable.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates: List[Tuple[int, Path]] = []
    for entry in directory.iterdir():
        match = _CKPT_RE.match(entry.name)
        if match:
            candidates.append((int(match.group(1)), entry))
    for seq, path in sorted(candidates, reverse=True):
        try:
            payload = read_checkpoint_file(path)
        except CheckpointError as exc:
            if counters is not None:
                counters.checkpoints_discarded += 1
                counters.record_degradation(
                    "checkpoint-discard", exc, site="checkpoint"
                )
            continue
        if fingerprint is not None and payload.get("fingerprint") != fingerprint:
            if counters is not None:
                counters.checkpoints_discarded += 1
                counters.record_degradation(
                    "checkpoint-stale",
                    f"{path.name} fingerprints a different run",
                    site="checkpoint",
                )
            continue
        return seq, payload
    return None


def newest_checkpoint_age(directory: Union[str, Path]) -> Optional[float]:
    """Seconds since the newest checkpoint file changed (None if none)."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    newest: Optional[float] = None
    for entry in directory.rglob("ckpt-*.json"):
        try:
            mtime = entry.stat().st_mtime
        except OSError:
            continue
        if newest is None or mtime > newest:
            newest = mtime
    if newest is None:
        return None
    return max(0.0, time.time() - newest)


# ----------------------------------------------------------------------
# Algorithm 2 round state
# ----------------------------------------------------------------------
@dataclass
class MetricCheckpoint:
    """Algorithm 2 state at a round boundary — enough to continue exactly.

    ``chunk_size`` is the batched loop's adaptive sub-round size (``None``
    for the serial engine); ``rng_state`` the visit-order RNG state as
    returned by ``random.Random.getstate()``.
    """

    flows: np.ndarray
    lengths: np.ndarray
    active: List[int]
    injections: int
    rounds: int
    chunk_size: Optional[int] = None
    rng_state: Optional[Tuple[object, ...]] = None

    def to_payload(self) -> Dict[str, object]:
        return {
            "flows": encode_array(self.flows),
            "lengths": encode_array(self.lengths),
            "active": [int(v) for v in self.active],
            "injections": int(self.injections),
            "rounds": int(self.rounds),
            "chunk_size": self.chunk_size,
            "rng_state": (
                encode_rng_state(self.rng_state)
                if self.rng_state is not None
                else None
            ),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "MetricCheckpoint":
        try:
            return cls(
                flows=decode_array(payload["flows"]),
                lengths=decode_array(payload["lengths"]),
                active=[int(v) for v in payload["active"]],
                injections=int(payload["injections"]),
                rounds=int(payload["rounds"]),
                chunk_size=(
                    int(payload["chunk_size"])
                    if payload.get("chunk_size") is not None
                    else None
                ),
                rng_state=(
                    decode_rng_state(payload["rng_state"])
                    if payload.get("rng_state") is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed metric checkpoint: {exc!r}"
            ) from exc


# ----------------------------------------------------------------------
# Run fingerprint
# ----------------------------------------------------------------------
def run_fingerprint(hypergraph, spec, config) -> str:
    """SHA-256 identifying *which* run a checkpoint belongs to.

    Covers the netlist, the hierarchy and every config knob that changes
    the solve trajectory.  The engine and worker count are deliberately
    excluded: all engines are bit-identical for a fixed seed, so a run
    checkpointed under ``scipy`` may resume under ``parallel`` (and vice
    versa) without breaking the identity guarantee.
    """
    doc = {
        "netlist": {
            "num_nodes": hypergraph.num_nodes,
            "node_sizes": [float(s) for s in hypergraph.node_sizes()],
            "nets": [list(pins) for pins in hypergraph.nets()],
            "net_capacities": [float(c) for c in hypergraph.net_capacities()],
        },
        "hierarchy": {
            "capacities": [float(c) for c in spec.capacities],
            "branching": [int(k) for k in spec.branching],
            "weights": [float(w) for w in spec.weights],
        },
        "config": {
            "iterations": config.iterations,
            "constructions_per_metric": config.constructions_per_metric,
            "find_cut_restarts": config.find_cut_restarts,
            "find_cut_strategy": config.find_cut_strategy,
            "net_model": config.net_model,
            "seed": config.seed,
            "alpha": config.metric.alpha,
            "delta": config.metric.delta,
            "epsilon": config.metric.epsilon,
            "max_rounds": config.metric.max_rounds,
            "node_sample": config.metric.node_sample,
        },
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Iteration outcome (de)serialization
# ----------------------------------------------------------------------
def encode_outcome(outcome) -> Dict[str, object]:
    """One completed FLOW iteration as a JSON payload.

    ``outcome`` is the driver's ``(cost, partition, metric, counters)``
    tuple; metric arrays go through :func:`encode_array` so the restored
    iteration is bit-identical to the one that ran.
    """
    cost, partition, metric, counters = outcome
    return {
        "cost": float(cost),
        "partition": partition.to_dict(),
        "metric": {
            "lengths": encode_array(metric.lengths),
            "flows": encode_array(metric.flows),
            "objective": float(metric.objective),
            "injections": int(metric.injections),
            "rounds": int(metric.rounds),
            "satisfied": bool(metric.satisfied),
        },
        "counters": counters.as_dict(),
    }


def decode_outcome(payload: Dict[str, object]):
    """Inverse of :func:`encode_outcome`."""
    from repro.core.spreading_metric import SpreadingMetricResult
    from repro.htp.partition import PartitionTree

    try:
        metric_doc = payload["metric"]
        metric = SpreadingMetricResult(
            lengths=decode_array(metric_doc["lengths"]),
            flows=decode_array(metric_doc["flows"]),
            objective=float(metric_doc["objective"]),
            injections=int(metric_doc["injections"]),
            rounds=int(metric_doc["rounds"]),
            satisfied=bool(metric_doc["satisfied"]),
        )
        return (
            float(payload["cost"]),
            PartitionTree.from_dict(payload["partition"]),
            metric,
            PerfCounters.from_dict(payload["counters"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"malformed iteration outcome payload: {exc!r}"
        ) from exc


# ----------------------------------------------------------------------
# The driver-facing checkpointer
# ----------------------------------------------------------------------
class FlowCheckpointer:
    """Owns one checkpoint directory for one ``flow_htp`` run.

    The driver feeds it round states (via :meth:`on_metric_round`, wired
    into the metric loops as the ``on_round`` hook) and completed
    iteration outcomes (:meth:`complete_iteration`); every write captures
    the *whole* driver state — completed outcomes plus the in-progress
    metric — so any single file is sufficient to resume from.

    Parameters
    ----------
    directory:
        Where ``ckpt-*.json`` files live (created on first write).
    fingerprint:
        :func:`run_fingerprint` of the run; stamped into every payload
        and required to match on load.
    every:
        Write cadence in metric rounds (1 = every round).  Final states
        (metric finished, abort) are always written regardless.
    keep:
        Newest checkpoints retained; older files are pruned after each
        successful write.
    counters:
        Shared perf struct (``checkpoints_written`` et al).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        fingerprint: str,
        every: int = 1,
        keep: int = DEFAULT_KEEP,
        counters: Optional[PerfCounters] = None,
    ) -> None:
        if every < 1:
            raise CheckpointError("checkpoint_every must be at least 1")
        if keep < 1:
            raise CheckpointError("keep must be at least 1")
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.every = every
        self.keep = keep
        self.counters = counters
        self._seq = 0
        self._iteration = 0
        self._completed: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    def restore(self, payload: Dict[str, object]) -> None:
        """Adopt a loaded payload: later writes extend, not restart.

        Also bumps the sequence counter past any file already on disk so
        resumed runs never overwrite live history.
        """
        self._completed = [dict(doc) for doc in payload.get("completed", [])]
        self._iteration = int(payload.get("iteration", len(self._completed)))
        newest = load_latest_checkpoint(self.directory)
        if newest is not None:
            self._seq = newest[0] + 1

    def begin_iteration(self, iteration: int) -> None:
        """Note which iteration subsequent round states belong to."""
        self._iteration = iteration

    def on_metric_round(self, state: MetricCheckpoint, final: bool) -> None:
        """The metric loops' round hook; honours the ``every`` cadence."""
        if not final and state.rounds % self.every != 0:
            return
        self._write(metric_payload=state.to_payload())

    def complete_iteration(self, iteration: int, outcome) -> None:
        """Record a finished iteration and checkpoint the driver state."""
        self._completed.append(encode_outcome(outcome))
        self._iteration = iteration + 1
        self._write(metric_payload=None)

    # ------------------------------------------------------------------
    def _write(self, metric_payload: Optional[Dict[str, object]]) -> None:
        payload = {
            "kind": "flow-htp",
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "iteration": self._iteration,
            "completed": self._completed,
            "metric": metric_payload,
        }
        write_checkpoint_file(self.directory, self._seq, payload)
        self._seq += 1
        if self.counters is not None:
            self.counters.checkpoints_written += 1
        self._prune()

    def _prune(self) -> None:
        entries = sorted(
            (
                (int(m.group(1)), entry)
                for entry in self.directory.iterdir()
                if (m := _CKPT_RE.match(entry.name))
            ),
            reverse=True,
        )
        for _seq, entry in entries[self.keep:]:
            try:
                entry.unlink()
            except OSError:  # pragma: no cover - benign race
                pass


def load_flow_resume(
    directory: Union[str, Path],
    fingerprint: str,
    counters: Optional[PerfCounters] = None,
) -> Optional[Dict[str, object]]:
    """The newest matching flow-htp payload under ``directory``, or None.

    Wrong-kind payloads are treated exactly like stale fingerprints:
    counted and skipped, never raised.
    """
    found = load_latest_checkpoint(
        directory, fingerprint=fingerprint, counters=counters
    )
    if found is None:
        return None
    _seq, payload = found
    if payload.get("kind") != "flow-htp":
        if counters is not None:
            counters.checkpoints_discarded += 1
            counters.record_degradation(
                "checkpoint-stale",
                f"payload kind {payload.get('kind')!r} is not flow-htp",
                site="checkpoint",
            )
        return None
    return payload
