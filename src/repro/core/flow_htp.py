"""Algorithm 1: the FLOW constructive algorithm for HTP.

Repeat ``iterations`` times: compute a spreading metric (Algorithm 2),
construct one or more partitions from it (Algorithm 3), keep the best.
``constructions_per_metric > 1`` implements the extension suggested in the
paper's conclusions — the metric computation dominates the runtime, so
constructing several partitions per metric is nearly free.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.construct import construct_partition
from repro.core.perf import PerfCounters
from repro.core.spreading_metric import (
    SpreadingMetricConfig,
    SpreadingMetricResult,
    compute_spreading_metric,
)
from repro.errors import PartitionError
from repro.htp.cost import total_cost
from repro.htp.hierarchy import HierarchySpec
from repro.htp.partition import PartitionTree
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.graph import Graph
from repro.hypergraph.hypergraph import Hypergraph


@dataclass
class FlowHTPConfig:
    """Configuration of the FLOW driver (Algorithm 1).

    Attributes
    ----------
    iterations:
        ``N`` of Algorithm 1 — metric/construction rounds.
    constructions_per_metric:
        Partitions constructed per metric (the conclusions' extension; 1
        reproduces the paper's Algorithm 1 exactly).
    find_cut_restarts:
        Random seeds tried inside each ``find_cut`` call.
    find_cut_strategy:
        ``'prim'`` (Algorithm 3 verbatim), ``'mst'`` (the conclusions'
        Karger-style MST-subtree refinement) or ``'both'`` (default).
    net_model:
        ``'clique'`` or ``'cycle'`` — how the netlist becomes a graph.
    metric:
        Algorithm 2 configuration.
    seed:
        Master seed; per-iteration randomness derives from it.
    """

    iterations: int = 2
    constructions_per_metric: int = 4
    find_cut_restarts: int = 2
    find_cut_strategy: str = "both"
    net_model: str = "clique"
    metric: SpreadingMetricConfig = field(default_factory=SpreadingMetricConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be at least 1")
        if self.constructions_per_metric < 1:
            raise ValueError("constructions_per_metric must be at least 1")


@dataclass
class FlowHTPResult:
    """Best partition found plus per-iteration diagnostics.

    ``iteration_costs`` holds the best construction cost of each metric
    iteration; ``metric_objectives`` the LP objective ``sum c(e) d(e)`` of
    each metric (an *upper* proxy for solution quality, not a bound);
    ``runtime_seconds`` the wall-clock cost of the whole run; ``perf``
    aggregates the solver's :class:`PerfCounters` (Dijkstra calls, dirty
    edges repriced, cut evaluations, per-phase wall time) across all
    iterations.
    """

    partition: PartitionTree
    cost: float
    iteration_costs: List[float]
    metric_objectives: List[float]
    metric_results: List[SpreadingMetricResult]
    runtime_seconds: float
    perf: Optional[PerfCounters] = None


def flow_htp(
    hypergraph: Hypergraph,
    spec: HierarchySpec,
    config: Optional[FlowHTPConfig] = None,
    graph: Optional[Graph] = None,
) -> FlowHTPResult:
    """Run the FLOW algorithm on a netlist under a hierarchy spec.

    ``graph`` may be supplied to reuse a pre-built net-model expansion
    (it must share node ids with the netlist).
    """
    config = config or FlowHTPConfig()
    start = time.perf_counter()
    counters = PerfCounters()
    rng = random.Random(config.seed)
    if graph is None:
        graph = to_graph(
            hypergraph, model=config.net_model, rng=random.Random(config.seed)
        )

    best_partition: Optional[PartitionTree] = None
    best_cost = float("inf")
    iteration_costs: List[float] = []
    metric_objectives: List[float] = []
    metric_results: List[SpreadingMetricResult] = []

    for iteration in range(config.iterations):
        metric_config = SpreadingMetricConfig(
            alpha=config.metric.alpha,
            delta=config.metric.delta,
            epsilon=config.metric.epsilon,
            max_rounds=config.metric.max_rounds,
            engine=config.metric.engine,
            seed=rng.randrange(2**31),
            node_sample=config.metric.node_sample,
        )
        phase_start = time.perf_counter()
        metric = compute_spreading_metric(
            graph,
            spec,
            metric_config,
            rng=random.Random(metric_config.seed),
            counters=counters,
        )
        counters.add_phase("metric", time.perf_counter() - phase_start)
        metric_results.append(metric)
        metric_objectives.append(metric.objective)

        iteration_best = float("inf")
        phase_start = time.perf_counter()
        for _construction in range(config.constructions_per_metric):
            partition = construct_partition(
                hypergraph,
                graph,
                spec,
                metric.lengths,
                rng=rng,
                find_cut_restarts=config.find_cut_restarts,
                strategy=config.find_cut_strategy,
                counters=counters,
            )
            cost = total_cost(hypergraph, partition, spec)
            iteration_best = min(iteration_best, cost)
            if cost < best_cost:
                best_cost = cost
                best_partition = partition
        counters.add_phase("construct", time.perf_counter() - phase_start)
        iteration_costs.append(iteration_best)

    if best_partition is None:  # pragma: no cover - unreachable by config guard
        raise PartitionError("FLOW produced no partition")
    return FlowHTPResult(
        partition=best_partition,
        cost=best_cost,
        iteration_costs=iteration_costs,
        metric_objectives=metric_objectives,
        metric_results=metric_results,
        runtime_seconds=time.perf_counter() - start,
        perf=counters,
    )
