"""Algorithm 1: the FLOW constructive algorithm for HTP.

Repeat ``iterations`` times: compute a spreading metric (Algorithm 2),
construct one or more partitions from it (Algorithm 3), keep the best.
``constructions_per_metric > 1`` implements the extension suggested in the
paper's conclusions — the metric computation dominates the runtime, so
constructing several partitions per metric is nearly free.

Every iteration is a pure function of a pair of pre-drawn seeds
``(metric_seed, construction_seeds)``, drawn from the master RNG in
iteration order.  That makes the iteration loop embarrassingly parallel:
with ``engine='parallel'`` and more than one iteration, whole iterations
fan out across worker processes (:func:`repro.core.parallel.parallel_map`)
and the merged result is bit-identical to the serial loop.  With a single
iteration the process pool is instead spent *inside* the metric
computation (one persistent :class:`~repro.core.parallel.MetricWorkerPool`
shared across the run).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core import _kernel as native_kernel
from repro.core.checkpoint import (
    FlowCheckpointer,
    MetricCheckpoint,
    decode_outcome,
    load_flow_resume,
    run_fingerprint,
)
from repro.core.construct import construct_partition
from repro.core.parallel import (
    MetricWorkerPool,
    ParallelConfig,
    parallel_map,
    should_autoserial,
)
from repro.core.perf import PerfCounters
from repro.core.spreading_metric import (
    SpreadingMetricConfig,
    SpreadingMetricResult,
    compute_spreading_metric,
)
from repro.errors import CheckpointError, PartitionError, SolverAborted
from repro.htp.cost import total_cost
from repro.htp.hierarchy import HierarchySpec
from repro.htp.partition import PartitionTree
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.graph import Graph
from repro.hypergraph.hypergraph import Hypergraph


@dataclass
class FlowHTPConfig:
    """Configuration of the FLOW driver (Algorithm 1).

    Attributes
    ----------
    iterations:
        ``N`` of Algorithm 1 — metric/construction rounds.
    constructions_per_metric:
        Partitions constructed per metric (the conclusions' extension; 1
        reproduces the paper's Algorithm 1 exactly).
    find_cut_restarts:
        Random seeds tried inside each ``find_cut`` call.
    find_cut_strategy:
        ``'prim'`` (Algorithm 3 verbatim), ``'mst'`` (the conclusions'
        Karger-style MST-subtree refinement) or ``'both'`` (default).
    net_model:
        ``'clique'`` or ``'cycle'`` — how the netlist becomes a graph.
    metric:
        Algorithm 2 configuration.
    seed:
        Master seed; per-iteration randomness derives from it.
    parallel:
        Worker-pool configuration, honoured only when
        ``metric.engine == 'parallel'``.  With several iterations the
        iterations themselves fan out; with one iteration the pool
        accelerates the metric's violation checks.  Either way the
        result is bit-identical to ``engine='scipy'``.
    exact_refine:
        When True, run :func:`repro.analysis.exact.tree_dp_refine` on
        the best partition before returning — exact on tree-structured
        instances, a max-spanning-forest surrogate otherwise; adopted
        only if feasible and strictly cheaper.  Pure end-of-run
        post-processing on small instances (it gives up silently past
        its node budget), so it deliberately does not enter the resume
        fingerprint.
    """

    iterations: int = 2
    constructions_per_metric: int = 4
    find_cut_restarts: int = 2
    find_cut_strategy: str = "both"
    net_model: str = "clique"
    metric: SpreadingMetricConfig = field(default_factory=SpreadingMetricConfig)
    seed: int = 0
    parallel: Optional[ParallelConfig] = None
    exact_refine: bool = False

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be at least 1")
        if self.constructions_per_metric < 1:
            raise ValueError("constructions_per_metric must be at least 1")


@dataclass
class FlowHTPResult:
    """Best partition found plus per-iteration diagnostics.

    ``iteration_costs`` holds the best construction cost of each metric
    iteration; ``metric_objectives`` the LP objective ``sum c(e) d(e)`` of
    each metric (an *upper* proxy for solution quality, not a bound);
    ``runtime_seconds`` the wall-clock cost of the whole run; ``perf``
    aggregates the solver's :class:`PerfCounters` (Dijkstra calls, dirty
    edges repriced, cut evaluations, pool dispatches, per-phase wall
    time) across all iterations and worker processes.
    """

    partition: PartitionTree
    cost: float
    iteration_costs: List[float]
    metric_objectives: List[float]
    metric_results: List[SpreadingMetricResult]
    runtime_seconds: float
    perf: Optional[PerfCounters] = None

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready document; inverse of :meth:`from_dict`.

        Carries the partition, every per-iteration diagnostic, the
        solved spreading metrics (lengths and flows as plain lists, so a
        cached result can hand the metric back without re-running
        Algorithm 2) and the aggregated perf counters.  Per-metric
        ``counters`` references are not serialized — the aggregate in
        ``perf`` already folds them in.
        """
        return {
            "partition": self.partition.to_dict(),
            "cost": self.cost,
            "iteration_costs": list(self.iteration_costs),
            "metric_objectives": list(self.metric_objectives),
            "metric_results": [
                {
                    "lengths": [float(x) for x in metric.lengths],
                    "flows": [float(x) for x in metric.flows],
                    "objective": metric.objective,
                    "injections": metric.injections,
                    "rounds": metric.rounds,
                    "satisfied": metric.satisfied,
                }
                for metric in self.metric_results
            ],
            "runtime_seconds": self.runtime_seconds,
            "perf": self.perf.as_dict() if self.perf is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FlowHTPResult":
        """Rebuild a result written by :meth:`to_dict` (JSON round trip)."""
        try:
            partition = PartitionTree.from_dict(payload["partition"])
            metrics = [
                SpreadingMetricResult(
                    lengths=np.asarray(entry["lengths"], dtype=float),
                    flows=np.asarray(entry["flows"], dtype=float),
                    objective=float(entry["objective"]),
                    injections=int(entry["injections"]),
                    rounds=int(entry["rounds"]),
                    satisfied=bool(entry["satisfied"]),
                )
                for entry in payload["metric_results"]
            ]
            perf_payload = payload.get("perf")
            return cls(
                partition=partition,
                cost=float(payload["cost"]),
                iteration_costs=[float(c) for c in payload["iteration_costs"]],
                metric_objectives=[
                    float(o) for o in payload["metric_objectives"]
                ],
                metric_results=metrics,
                runtime_seconds=float(payload["runtime_seconds"]),
                perf=(
                    PerfCounters.from_dict(perf_payload)
                    if perf_payload is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PartitionError(
                f"malformed FlowHTPResult payload: {exc!r}"
            ) from exc


def _run_flow_iteration(
    task,
    pool: Optional[MetricWorkerPool] = None,
    on_round=None,
    metric_resume: Optional[MetricCheckpoint] = None,
    abort_check=None,
) -> Tuple[float, PartitionTree, SpreadingMetricResult, PerfCounters]:
    """One FLOW iteration as a pure, picklable task.

    ``task`` is ``(hypergraph, graph, spec, config, metric_seed,
    construction_seeds, in_worker)``.  When ``in_worker`` is true the
    iteration is running inside a fan-out worker: the metric engine is
    demoted from ``'parallel'`` to the bit-identical ``'scipy'`` path so
    workers never spawn nested pools.  ``pool`` (coordinator-side only;
    pools do not pickle) lets the serial loop share one persistent
    :class:`MetricWorkerPool` across iterations.

    Returns ``(iteration_best_cost, best_partition, metric_result,
    counters)``; the caller merges counters and picks the global best.
    """
    hypergraph, graph, spec, config, metric_seed, construction_seeds, in_worker = task
    counters = PerfCounters()
    engine = config.metric.engine
    if in_worker and engine == "parallel":
        engine = "scipy"
    metric_config = SpreadingMetricConfig(
        alpha=config.metric.alpha,
        delta=config.metric.delta,
        epsilon=config.metric.epsilon,
        max_rounds=config.metric.max_rounds,
        engine=engine,
        seed=metric_seed,
        node_sample=config.metric.node_sample,
        parallel=config.parallel or config.metric.parallel,
    )
    phase_start = time.perf_counter()
    metric = compute_spreading_metric(
        graph,
        spec,
        metric_config,
        rng=random.Random(metric_seed),
        counters=counters,
        pool=pool,
        spawn_pool=False,
        on_round=on_round,
        resume=metric_resume,
        abort_check=abort_check,
    )
    counters.add_phase("metric", time.perf_counter() - phase_start)

    construct_parallel = None
    if not in_worker and config.metric.engine == "parallel":
        construct_parallel = config.parallel or config.metric.parallel

    iteration_best = float("inf")
    iteration_partition: Optional[PartitionTree] = None
    phase_start = time.perf_counter()
    for construct_seed in construction_seeds:
        if abort_check is not None:
            reason = abort_check()
            if reason:
                # The metric's final checkpoint is already on disk; the
                # (cheap, deterministic) constructions rerun on resume.
                raise SolverAborted(str(reason))
        partition = construct_partition(
            hypergraph,
            graph,
            spec,
            metric.lengths,
            rng=random.Random(construct_seed),
            find_cut_restarts=config.find_cut_restarts,
            strategy=config.find_cut_strategy,
            counters=counters,
            parallel=construct_parallel,
        )
        cost = total_cost(hypergraph, partition, spec)
        if cost < iteration_best:
            iteration_best = cost
            iteration_partition = partition
    counters.add_phase("construct", time.perf_counter() - phase_start)
    if iteration_partition is None:  # pragma: no cover - config guard
        raise PartitionError("FLOW iteration produced no partition")
    return iteration_best, iteration_partition, metric, counters


def flow_htp(
    hypergraph: Hypergraph,
    spec: HierarchySpec,
    config: Optional[FlowHTPConfig] = None,
    graph: Optional[Graph] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    checkpoint_every: int = 1,
    resume_from: Optional[Union[str, Path]] = None,
    abort_check: Optional[Callable[[], object]] = None,
) -> FlowHTPResult:
    """Run the FLOW algorithm on a netlist under a hierarchy spec.

    Parameters
    ----------
    hypergraph : Hypergraph
        The netlist to partition.
    spec : HierarchySpec
        Per-level size and branching bounds.
    config : FlowHTPConfig, optional
        Driver configuration; defaults to :class:`FlowHTPConfig`.
    graph : Graph, optional
        A pre-built net-model expansion to reuse (must share node ids
        with the netlist).  Supplying it lets callers evaluating many
        configurations amortise the expansion and its CSR cache.
    checkpoint_dir : str or Path, optional
        Enable crash-safe durability: atomic, CRC-stamped snapshots of
        the round state land here (see :mod:`repro.core.checkpoint`).
    checkpoint_every : int, optional
        Snapshot cadence in metric rounds (1 = every round); iteration
        boundaries and final/abort states are always written.
    resume_from : str or Path, optional
        Directory to restore from.  The newest valid checkpoint whose
        fingerprint matches this exact run (netlist + hierarchy +
        config) is adopted; anything torn, CRC-failing or stale is
        counted on ``checkpoints_discarded`` and skipped — a directory
        with nothing usable simply starts cold.  Passing the same
        directory as both ``checkpoint_dir`` and ``resume_from`` is the
        idiomatic "continue if possible" spelling.
    abort_check : callable, optional
        Cooperative abort polled at every metric round boundary (and
        between constructions): a truthy return value aborts the run
        with :class:`~repro.errors.SolverAborted` after writing a final
        checkpoint, so the next run resumes instead of restarting.

    Returns
    -------
    FlowHTPResult
        Best partition, its cost, per-iteration diagnostics and merged
        :class:`PerfCounters`.

    Notes
    -----
    **Engine equivalence guarantee.**  For a fixed ``config.seed`` the
    returned partition and every diagnostic list are bit-identical
    across ``metric.engine`` values ``'scipy'`` and ``'parallel'`` (any
    worker count): iterations consume pre-drawn seeds, fan-out workers
    run the same floored arithmetic, and results merge in iteration
    order with strict ``<`` tie-breaking — the same first-minimum rule
    as the serial loop.

    **Resume identity guarantee.**  A run killed at any point and
    resumed via ``resume_from`` returns the same partition, cost and
    per-iteration diagnostics (metric arrays included) as an
    uninterrupted run; only wall-clock and perf counters differ.
    Checkpointing (or an ``abort_check``) pins the iteration loop to
    the serial path — hooks do not pickle into fan-out workers — but
    the in-metric process pool still applies.
    """
    config = config or FlowHTPConfig()
    start = time.perf_counter()
    counters = PerfCounters()
    rng = random.Random(config.seed)
    if graph is None:
        graph = to_graph(
            hypergraph, model=config.net_model, rng=random.Random(config.seed)
        )

    durable = checkpoint_dir is not None or resume_from is not None
    checkpointer: Optional[FlowCheckpointer] = None
    completed_outcomes: List[
        Tuple[float, PartitionTree, SpreadingMetricResult, PerfCounters]
    ] = []
    start_iteration = 0
    metric_resume: Optional[MetricCheckpoint] = None
    if durable:
        fingerprint = run_fingerprint(hypergraph, spec, config)
        resume_payload = None
        if resume_from is not None:
            resume_payload = load_flow_resume(
                resume_from, fingerprint, counters=counters
            )
        if resume_payload is not None:
            try:
                completed_outcomes = [
                    decode_outcome(doc)
                    for doc in resume_payload.get("completed", [])
                ]
                start_iteration = int(resume_payload.get("iteration", 0))
                metric_doc = resume_payload.get("metric")
                metric_resume = (
                    MetricCheckpoint.from_payload(metric_doc)
                    if metric_doc
                    else None
                )
                if metric_resume is None:
                    counters.checkpoint_resumes += 1
            except CheckpointError as exc:
                # A CRC-valid envelope with an undecodable body (e.g. a
                # future format) is stale, not fatal: start cold.
                counters.checkpoints_discarded += 1
                counters.record_degradation(
                    "checkpoint-stale", exc, site="checkpoint"
                )
                completed_outcomes = []
                start_iteration = 0
                metric_resume = None
                resume_payload = None
        if checkpoint_dir is not None:
            checkpointer = FlowCheckpointer(
                checkpoint_dir,
                fingerprint,
                every=checkpoint_every,
                counters=counters,
            )
            if resume_payload is not None:
                checkpointer.restore(resume_payload)

    seeds: List[Tuple[int, List[int]]] = []
    for _iteration in range(config.iterations):
        metric_seed = rng.randrange(2**31)
        construction_seeds = [
            rng.randrange(2**31)
            for _ in range(config.constructions_per_metric)
        ]
        seeds.append((metric_seed, construction_seeds))

    parallel_cfg: Optional[ParallelConfig] = None
    if config.metric.engine == "parallel":
        parallel_cfg = config.parallel or config.metric.parallel or ParallelConfig()
    workers = parallel_cfg.resolved_workers() if parallel_cfg is not None else 1
    fan_iterations = (
        parallel_cfg is not None
        and config.iterations > 1
        and workers > 1
        # Durability hooks and abort checks are coordinator-side
        # closures; they do not pickle into fan-out workers, so those
        # runs keep the (bit-identical) serial iteration loop.
        and not durable
        and abort_check is None
        # One core cannot overlap fanned iterations either.
        and not should_autoserial(parallel_cfg)
    )

    tasks = [
        (hypergraph, graph, spec, config, metric_seed, construction_seeds, fan_iterations)
        for metric_seed, construction_seeds in seeds
    ]

    if fan_iterations:
        outcomes = parallel_map(
            _run_flow_iteration, tasks, parallel=parallel_cfg, counters=counters
        )
    else:
        pool: Optional[MetricWorkerPool] = None
        if config.metric.engine == "parallel":
            if should_autoserial(parallel_cfg):
                # One core / one worker: skip the pool entirely and run
                # the bit-identical in-process engine, warning-free.
                counters.pool_autoserial += 1
            else:
                try:
                    pool = MetricWorkerPool(
                        graph,
                        spec,
                        parallel=parallel_cfg,
                        use_native=native_kernel.available(),
                    )
                except Exception as exc:
                    counters.pool_fallbacks += 1
                    counters.record_degradation("spawn-serial", exc, site="pool-spawn")
                    if parallel_cfg is not None and not parallel_cfg.fallback:
                        raise
                    pool = None
        try:
            outcomes = list(completed_outcomes)
            for index in range(start_iteration, len(tasks)):
                if checkpointer is not None:
                    checkpointer.begin_iteration(index)
                outcome = _run_flow_iteration(
                    tasks[index],
                    pool=pool,
                    on_round=(
                        checkpointer.on_metric_round
                        if checkpointer is not None
                        else None
                    ),
                    metric_resume=(
                        metric_resume if index == start_iteration else None
                    ),
                    abort_check=abort_check,
                )
                outcomes.append(outcome)
                if checkpointer is not None:
                    checkpointer.complete_iteration(index, outcome)
        finally:
            if pool is not None:
                pool.close()

    best_partition: Optional[PartitionTree] = None
    best_cost = float("inf")
    iteration_costs: List[float] = []
    metric_objectives: List[float] = []
    metric_results: List[SpreadingMetricResult] = []
    for outcome in outcomes:
        iteration_best, iteration_partition, metric, iteration_counters = outcome
        counters.merge(iteration_counters)
        iteration_costs.append(iteration_best)
        metric_objectives.append(metric.objective)
        metric_results.append(metric)
        if iteration_best < best_cost:
            best_cost = iteration_best
            best_partition = iteration_partition

    if best_partition is None:  # pragma: no cover - unreachable by config guard
        raise PartitionError("FLOW produced no partition")
    if config.exact_refine:
        from repro.analysis.exact.tree_dp import tree_dp_refine

        refined = tree_dp_refine(hypergraph, spec, best_partition, graph=graph)
        if refined is not None:
            best_partition, best_cost = refined
    return FlowHTPResult(
        partition=best_partition,
        cost=best_cost,
        iteration_costs=iteration_costs,
        metric_objectives=metric_objectives,
        metric_results=metric_results,
        runtime_seconds=time.perf_counter() - start,
        perf=counters,
    )
