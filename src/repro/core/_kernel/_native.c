/* Native metric kernel: fused distance-limited Dijkstra + first-violation
 * scan for the Algorithm-2 hot loop.
 *
 * One call answers "what is the first violated spreading constraint
 * anchored at this source?" exactly like the scipy engines, but fused:
 * the Dijkstra, the (distance, id)-ordered prefix scan against g, and
 * the canonical-parent tree extraction all happen in one pass with zero
 * allocation, and the search stops the moment the first violation is
 * found instead of settling the whole distance-limited ball.
 *
 * Bit-identity contract (asserted by tests/test_native_kernel.py and the
 * differential fuzzer):
 *
 * - Distances are heap-order independent: relaxation takes the float64
 *   minimum of left-to-right path sums, so any correct Dijkstra over the
 *   same CSR produces the same dist array as scipy's.
 * - Settle order within one distance value is heap dependent, so popped
 *   nodes are buffered per distance *plateau* and flushed in node-id
 *   order once a strictly larger key pops — the flushed stream is
 *   exactly numpy's stable argsort order over (distance, id).
 * - The running sums replicate numpy's cumsum addition for addition, and
 *   g is evaluated with the same per-level expression and accumulation
 *   order as repro.core.gfunc.spreading_bound_array (unit-size instances
 *   use the precomputed bound table passed in from Python verbatim).
 * - Tree edges come from canonical parents (min (dist[v], v) among
 *   neighbours with dist[v] + d(v,w) == dist[w], exact float64), the
 *   same rule as SpreadingOracle._canonical_tree_edges.
 *
 * Robustness: the CSR data array is shared memory under the parallel
 * engine and the chaos harness deliberately scribbles on it.  The kernel
 * must therefore never crash or loop on garbage lengths (negative, NaN,
 * inf): the heap is capacity-bounded, NaN relaxations are rejected by
 * the `nd <= limit` filter, settled nodes never resettle, and a
 * canonical-parent miss (impossible on consistent data) degrades to a
 * structurally valid placeholder — corrupted verdicts are discarded by
 * the pool's dispatch checksum anyway.
 */
#define PY_SSIZE_T_CLEAN
#define NPY_NO_DEPRECATED_API NPY_1_7_API_VERSION
#include <Python.h>
#include <numpy/arrayobject.h>
#include <math.h>
#include <stdlib.h>
#include <string.h>

typedef struct {
    npy_int64 n;            /* number of nodes */
    npy_int64 nnz;          /* CSR entries (2 per undirected edge) */
    const npy_int64 *indptr;     /* n + 1 */
    const npy_int64 *indices;    /* nnz */
    const npy_int64 *entry_edge; /* nnz: data position -> edge id */
    const double *sizes;         /* n, NULL for unit sizes */
    const double *unit_bounds;   /* n (g(1..n)), NULL unless unit sizes */
    const double *caps;          /* num_levels + 1 */
    const double *weights;       /* num_levels */
    npy_int64 num_levels;
    double leaf_capacity;   /* caps[0]: g == 0 at or below this */
    double limit;           /* exactness radius 2W */
    double tol;
    /* epoch-stamped workspaces: no O(n) clearing between calls */
    double *dist;           /* n */
    npy_int64 *seen;        /* n: epoch when dist[v] became valid */
    npy_int64 *done;        /* n: epoch when v settled */
    npy_int64 *order;       /* n: settled nodes in (dist, id) order */
    npy_int64 *plateau;     /* n: popped-but-unflushed equal-dist nodes */
    double *heap_key;       /* heap capacity nnz + 2 */
    npy_int64 *heap_node;
    npy_int64 heap_cap;
    npy_int64 epoch;
} KernelState;

static void
kernel_state_free(PyObject *capsule)
{
    KernelState *st = (KernelState *)PyCapsule_GetPointer(capsule, "repro._kernel");
    if (st == NULL) {
        PyErr_Clear();
        return;
    }
    free(st->dist);
    free(st->seen);
    free(st->done);
    free(st->order);
    free(st->plateau);
    free(st->heap_key);
    free(st->heap_node);
    free(st);
}

/* ---------------------------------------------------------------- heap */

static inline void
heap_push(KernelState *st, npy_int64 *size, double key, npy_int64 node)
{
    if (*size >= st->heap_cap) {
        return; /* only reachable on corrupted data; verdicts discarded */
    }
    npy_int64 i = (*size)++;
    while (i > 0) {
        npy_int64 parent = (i - 1) / 2;
        double pk = st->heap_key[parent];
        npy_int64 pn = st->heap_node[parent];
        if (pk < key || (pk == key && pn <= node)) {
            break;
        }
        st->heap_key[i] = pk;
        st->heap_node[i] = pn;
        i = parent;
    }
    st->heap_key[i] = key;
    st->heap_node[i] = node;
}

static inline void
heap_pop(KernelState *st, npy_int64 *size, double *key, npy_int64 *node)
{
    *key = st->heap_key[0];
    *node = st->heap_node[0];
    npy_int64 last = --(*size);
    double lk = st->heap_key[last];
    npy_int64 ln = st->heap_node[last];
    npy_int64 i = 0;
    for (;;) {
        npy_int64 left = 2 * i + 1;
        if (left >= last) {
            break;
        }
        npy_int64 child = left;
        npy_int64 right = left + 1;
        if (right < last &&
            (st->heap_key[right] < st->heap_key[left] ||
             (st->heap_key[right] == st->heap_key[left] &&
              st->heap_node[right] < st->heap_node[left]))) {
            child = right;
        }
        if (lk < st->heap_key[child] ||
            (lk == st->heap_key[child] && ln <= st->heap_node[child])) {
            break;
        }
        st->heap_key[i] = st->heap_key[child];
        st->heap_node[i] = st->heap_node[child];
        i = child;
    }
    st->heap_key[i] = lk;
    st->heap_node[i] = ln;
}

/* ------------------------------------------------------------ helpers */

/* Ascending insertion sort; plateaus are tiny in practice (ties require
 * exactly equal float64 distances). */
static void
sort_int64(npy_int64 *arr, npy_int64 len)
{
    for (npy_int64 i = 1; i < len; i++) {
        npy_int64 key = arr[i];
        npy_int64 j = i - 1;
        while (j >= 0 && arr[j] > key) {
            arr[j + 1] = arr[j];
            j--;
        }
        arr[j + 1] = key;
    }
}

/* g(x): must replicate spreading_bound_array term by term — the per-level
 * expression is (2.0 * overshoot) * weights[i], accumulated in level
 * order (numpy's `result += np.where(overshoot > 0, ...)`; adding the
 * where's 0.0 branch is a bitwise no-op on a nonnegative accumulator). */
static inline double
g_eval(const KernelState *st, double x)
{
    double result = 0.0;
    for (npy_int64 i = 0; i < st->num_levels; i++) {
        double overshoot = x - st->caps[i];
        if (overshoot > 0.0) {
            result += (2.0 * overshoot) * st->weights[i];
        }
    }
    return result;
}

/* --------------------------------------------------------------- init */

static int
check_array(PyObject *obj, int typenum, npy_int64 expected_len, const char *name)
{
    if (!PyArray_Check(obj)) {
        PyErr_Format(PyExc_TypeError, "%s must be a numpy array", name);
        return 0;
    }
    PyArrayObject *arr = (PyArrayObject *)obj;
    if (PyArray_TYPE(arr) != typenum || !PyArray_IS_C_CONTIGUOUS(arr) ||
        PyArray_NDIM(arr) != 1) {
        PyErr_Format(PyExc_TypeError,
                     "%s must be a C-contiguous 1-D array of the expected dtype",
                     name);
        return 0;
    }
    if (expected_len >= 0 && PyArray_DIM(arr, 0) != expected_len) {
        PyErr_Format(PyExc_ValueError, "%s has wrong length", name);
        return 0;
    }
    return 1;
}

static PyObject *
kernel_init(PyObject *Py_UNUSED(self), PyObject *args)
{
    long long n_arg, num_levels_arg;
    PyObject *indptr, *indices, *entry_edge, *sizes, *unit_bounds;
    PyObject *caps, *weights;
    double limit, tol;

    if (!PyArg_ParseTuple(args, "LOOOOOOOLdd", &n_arg, &indptr, &indices,
                          &entry_edge, &sizes, &unit_bounds, &caps, &weights,
                          &num_levels_arg, &limit, &tol)) {
        return NULL;
    }
    npy_int64 n = (npy_int64)n_arg;
    npy_int64 num_levels = (npy_int64)num_levels_arg;
    if (n <= 0) {
        PyErr_SetString(PyExc_ValueError, "need at least one node");
        return NULL;
    }
    if (!check_array(indptr, NPY_INT64, n + 1, "indptr")) {
        return NULL;
    }
    npy_int64 nnz = ((npy_int64 *)PyArray_DATA((PyArrayObject *)indptr))[n];
    if (nnz < 0) {
        PyErr_SetString(PyExc_ValueError, "negative nnz");
        return NULL;
    }
    if (!check_array(indices, NPY_INT64, nnz, "indices") ||
        !check_array(entry_edge, NPY_INT64, nnz, "entry_edge") ||
        !check_array(caps, NPY_FLOAT64, num_levels + 1, "capacities") ||
        !check_array(weights, NPY_FLOAT64, num_levels, "weights")) {
        return NULL;
    }
    if (sizes != Py_None && !check_array(sizes, NPY_FLOAT64, n, "sizes")) {
        return NULL;
    }
    if (unit_bounds != Py_None &&
        !check_array(unit_bounds, NPY_FLOAT64, n, "unit_bounds")) {
        return NULL;
    }
    if ((sizes == Py_None) == (unit_bounds == Py_None)) {
        PyErr_SetString(PyExc_ValueError,
                        "exactly one of sizes / unit_bounds must be given");
        return NULL;
    }

    KernelState *st = (KernelState *)calloc(1, sizeof(KernelState));
    if (st == NULL) {
        return PyErr_NoMemory();
    }
    st->n = n;
    st->nnz = nnz;
    st->indptr = (const npy_int64 *)PyArray_DATA((PyArrayObject *)indptr);
    st->indices = (const npy_int64 *)PyArray_DATA((PyArrayObject *)indices);
    st->entry_edge = (const npy_int64 *)PyArray_DATA((PyArrayObject *)entry_edge);
    st->sizes = sizes == Py_None
                    ? NULL
                    : (const double *)PyArray_DATA((PyArrayObject *)sizes);
    st->unit_bounds = unit_bounds == Py_None
                          ? NULL
                          : (const double *)PyArray_DATA((PyArrayObject *)unit_bounds);
    st->caps = (const double *)PyArray_DATA((PyArrayObject *)caps);
    st->weights = (const double *)PyArray_DATA((PyArrayObject *)weights);
    st->num_levels = num_levels;
    st->leaf_capacity = st->caps[0];
    st->limit = limit;
    st->tol = tol;
    st->heap_cap = nnz + 2;
    st->dist = (double *)malloc(sizeof(double) * (size_t)n);
    st->seen = (npy_int64 *)calloc((size_t)n, sizeof(npy_int64));
    st->done = (npy_int64 *)calloc((size_t)n, sizeof(npy_int64));
    st->order = (npy_int64 *)malloc(sizeof(npy_int64) * (size_t)n);
    st->plateau = (npy_int64 *)malloc(sizeof(npy_int64) * (size_t)n);
    st->heap_key = (double *)malloc(sizeof(double) * (size_t)st->heap_cap);
    st->heap_node = (npy_int64 *)malloc(sizeof(npy_int64) * (size_t)st->heap_cap);
    st->epoch = 0;
    if (st->dist == NULL || st->seen == NULL || st->done == NULL ||
        st->order == NULL || st->plateau == NULL || st->heap_key == NULL ||
        st->heap_node == NULL) {
        PyObject *capsule_tmp = PyCapsule_New(st, "repro._kernel", kernel_state_free);
        if (capsule_tmp != NULL) {
            Py_DECREF(capsule_tmp);
        }
        return PyErr_NoMemory();
    }
    return PyCapsule_New(st, "repro._kernel", kernel_state_free);
}

/* -------------------------------------------------------------- check */

/* Flush one completed plateau through the violation scan.  Returns 1
 * when the first violation was found (outputs set), 0 otherwise. */
static inline int
scan_plateau(KernelState *st, npy_int64 plateau_len, npy_int64 *settled,
             double *cum_size, double *lhs, npy_int64 *viol_k,
             double *viol_lhs, double *viol_rhs)
{
    sort_int64(st->plateau, plateau_len);
    for (npy_int64 p = 0; p < plateau_len; p++) {
        npy_int64 w = st->plateau[p];
        st->order[(*settled)++] = w;
        double rhs;
        if (st->sizes == NULL) {
            *lhs += st->dist[w];
            rhs = st->unit_bounds[*settled - 1];
        } else {
            double size = st->sizes[w];
            *cum_size += size;
            *lhs += size * st->dist[w];
            if (*cum_size <= st->leaf_capacity) {
                continue; /* g = 0: trivially satisfied */
            }
            rhs = g_eval(st, *cum_size);
        }
        if (rhs - *lhs > st->tol) {
            *viol_k = *settled;
            *viol_lhs = *lhs;
            *viol_rhs = rhs;
            return 1;
        }
    }
    return 0;
}

static PyObject *
kernel_check(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *capsule, *data_obj, *row_obj;
    long long source_arg;
    if (!PyArg_ParseTuple(args, "OOLO", &capsule, &data_obj, &source_arg,
                          &row_obj)) {
        return NULL;
    }
    KernelState *st = (KernelState *)PyCapsule_GetPointer(capsule, "repro._kernel");
    if (st == NULL) {
        return NULL;
    }
    if (!check_array(data_obj, NPY_FLOAT64, st->nnz, "data")) {
        return NULL;
    }
    const double *data = (const double *)PyArray_DATA((PyArrayObject *)data_obj);
    double *row = NULL;
    if (row_obj != Py_None) {
        if (!check_array(row_obj, NPY_FLOAT64, st->n, "out_row")) {
            return NULL;
        }
        row = (double *)PyArray_DATA((PyArrayObject *)row_obj);
    }
    npy_int64 source = (npy_int64)source_arg;
    if (source < 0 || source >= st->n) {
        PyErr_SetString(PyExc_ValueError, "source out of range");
        return NULL;
    }

    st->epoch++;
    npy_int64 epoch = st->epoch;
    npy_int64 heap_size = 0;
    npy_int64 settled = 0;
    npy_int64 plateau_len = 0;
    double plateau_d = 0.0;
    double cum_size = 0.0;
    double lhs = 0.0;
    npy_int64 viol_k = -1;
    double viol_lhs = 0.0, viol_rhs = 0.0;

    st->dist[source] = 0.0;
    st->seen[source] = epoch;
    heap_push(st, &heap_size, 0.0, source);

    while (heap_size > 0) {
        double d;
        npy_int64 v;
        heap_pop(st, &heap_size, &d, &v);
        if (st->done[v] == epoch) {
            continue; /* lazy-deleted duplicate */
        }
        if (st->seen[v] != epoch || d != st->dist[v]) {
            continue; /* stale entry */
        }
        if (d > st->limit) {
            break; /* scipy's limit= keeps dist == limit, drops beyond */
        }
        if (plateau_len > 0 && d > plateau_d) {
            if (scan_plateau(st, plateau_len, &settled, &cum_size, &lhs,
                             &viol_k, &viol_lhs, &viol_rhs)) {
                break; /* first violation: stop searching immediately */
            }
            plateau_len = 0;
        }
        st->done[v] = epoch;
        st->plateau[plateau_len++] = v;
        plateau_d = d;
        npy_int64 hi = st->indptr[v + 1];
        for (npy_int64 pos = st->indptr[v]; pos < hi; pos++) {
            npy_int64 w = st->indices[pos];
            double nd = d + data[pos];
            if (!(nd <= st->limit)) {
                continue; /* beyond the radius; also rejects NaN */
            }
            if (st->seen[w] == epoch) {
                if (st->done[w] == epoch) {
                    continue;
                }
                if (nd < st->dist[w]) {
                    st->dist[w] = nd;
                    heap_push(st, &heap_size, nd, w);
                }
            } else {
                st->seen[w] = epoch;
                st->dist[w] = nd;
                heap_push(st, &heap_size, nd, w);
            }
        }
    }
    if (viol_k < 0 && plateau_len > 0) {
        scan_plateau(st, plateau_len, &settled, &cum_size, &lhs, &viol_k,
                     &viol_lhs, &viol_rhs);
    }

    if (row != NULL) {
        /* Settled prefix only; the caller prefills the row with +inf.
         * Note: plateau members past an early exit were popped but not
         * flushed into `order`; report settled (= flushed) nodes only,
         * which is exactly the prefix the exactness proof covers. */
        for (npy_int64 i = 0; i < settled; i++) {
            npy_int64 v = st->order[i];
            row[v] = st->dist[v];
        }
    }

    if (viol_k < 0) {
        return Py_BuildValue("LiOOdd", (long long)settled, 0, Py_None,
                             Py_None, 0.0, 0.0);
    }

    /* Canonical parents over the settled region (every candidate of a
     * prefix node is settled: positive floored lengths put parents on
     * strictly earlier plateaus, equal-dist parents — possible only via
     * float absorption — in the same, fully flushed, plateau). */
    npy_intp k = (npy_intp)viol_k;
    npy_intp dims_nodes[1] = {k};
    npy_intp dims_tree[1] = {k - 1};
    PyArrayObject *nodes_arr =
        (PyArrayObject *)PyArray_SimpleNew(1, dims_nodes, NPY_INT64);
    PyArrayObject *tree_arr =
        (PyArrayObject *)PyArray_SimpleNew(1, dims_tree, NPY_INT64);
    if (nodes_arr == NULL || tree_arr == NULL) {
        Py_XDECREF(nodes_arr);
        Py_XDECREF(tree_arr);
        return NULL;
    }
    npy_int64 *nodes_out = (npy_int64 *)PyArray_DATA(nodes_arr);
    npy_int64 *tree_out = (npy_int64 *)PyArray_DATA(tree_arr);
    memcpy(nodes_out, st->order, sizeof(npy_int64) * (size_t)k);
    for (npy_intp i = 1; i < k; i++) {
        npy_int64 w = st->order[i];
        double dw = st->dist[w];
        npy_int64 best_pos = -1;
        double best_dv = 0.0;
        npy_int64 best_v = -1;
        npy_int64 hi = st->indptr[w + 1];
        for (npy_int64 pos = st->indptr[w]; pos < hi; pos++) {
            npy_int64 v = st->indices[pos];
            if (st->done[v] != epoch) {
                continue;
            }
            double dv = st->dist[v];
            if (dv + data[pos] == dw) {
                if (best_pos < 0 || dv < best_dv ||
                    (dv == best_dv && v < best_v)) {
                    best_pos = pos;
                    best_dv = dv;
                    best_v = v;
                }
            }
        }
        if (best_pos < 0) {
            /* Inconsistent dist/data: shared state was scribbled mid-
             * flight (chaos corruption).  Emit a structurally valid
             * placeholder; the dispatch checksum discards it. */
            for (npy_int64 pos = st->indptr[w]; pos < hi; pos++) {
                npy_int64 v = st->indices[pos];
                double dv = st->done[v] == epoch ? st->dist[v] : HUGE_VAL;
                if (best_pos < 0 || dv < best_dv ||
                    (dv == best_dv && v < best_v)) {
                    best_pos = pos;
                    best_dv = dv;
                    best_v = v;
                }
            }
        }
        if (best_pos < 0) {
            Py_DECREF(nodes_arr);
            Py_DECREF(tree_arr);
            PyErr_Format(PyExc_RuntimeError,
                         "node %lld has no incident edges; cannot be in a "
                         "shortest-path tree",
                         (long long)w);
            return NULL;
        }
        tree_out[i - 1] = st->entry_edge[best_pos];
    }
    PyObject *result = Py_BuildValue(
        "LLNNdd", (long long)settled, (long long)viol_k, (PyObject *)nodes_arr,
        (PyObject *)tree_arr, viol_lhs, viol_rhs);
    return result;
}

/* ------------------------------------------------------------- module */

static PyMethodDef kernel_methods[] = {
    {"init", kernel_init, METH_VARARGS,
     "init(n, indptr, indices, entry_edge, sizes, unit_bounds, capacities, "
     "weights, num_levels, limit, tol) -> state capsule"},
    {"check", kernel_check, METH_VARARGS,
     "check(state, data, source, out_row) -> (settled, k, nodes, tree_edges, "
     "lhs, rhs); k == 0 means no violation"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernel_module = {
    PyModuleDef_HEAD_INIT,
    "_native",
    "Compiled distance-limited Dijkstra + first-violation kernel.",
    -1,
    kernel_methods,
    NULL,
    NULL,
    NULL,
    NULL,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    import_array();
    return PyModule_Create(&kernel_module);
}
