"""Optional compiled metric kernel: loading, gating, and the wrapper.

The C extension ``repro.core._kernel._native`` fuses the hot loop of
Algorithm 2 — the distance-limited Dijkstra plus the in-order
first-violation scan — into one early-exiting pass (see ``_native.c``
for the bit-identity contract).  The extension is strictly optional:
it is built opportunistically by ``setup.py`` and every consumer must
keep working when it is absent.  This module is the single gate:

``available()``
    True iff the compiled module imported successfully *and* the
    ``REPRO_DISABLE_NATIVE`` environment variable is not set.  The env
    var is re-read on every call so tests (and operators) can flip it
    without reloading modules.

``unavailable_reason()``
    A human-readable reason used in degradation records when a
    ``--engine native`` request has to fall back to scipy.

``NativeMetricKernel``
    The per-(graph, spec) wrapper: pins the CSR structure into
    kernel-private int64 arrays once, then answers per-source
    first-violation queries against the *live* shared CSR ``data``
    array, so in-place metric updates (``update_csr_weights``) are
    picked up with zero copying.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from repro.core.constraints import DEFAULT_TOL, Violation
from repro.core.gfunc import spreading_bound_array
from repro.htp.hierarchy import HierarchySpec
from repro.hypergraph.graph import Graph

DISABLE_ENV = "REPRO_DISABLE_NATIVE"

try:  # pragma: no cover - exercised only when the extension is absent
    from repro.core._kernel import _native
except ImportError as exc:  # pragma: no cover
    _native = None
    _IMPORT_ERROR = repr(exc)
else:
    _IMPORT_ERROR = None


def available() -> bool:
    """True when the compiled kernel can serve queries right now."""
    if os.environ.get(DISABLE_ENV, "").strip() not in ("", "0"):
        return False
    return _native is not None


def unavailable_reason() -> str:
    """Why :func:`available` is False (for degradation records)."""
    if os.environ.get(DISABLE_ENV, "").strip() not in ("", "0"):
        return f"disabled by {DISABLE_ENV}"
    if _native is None:
        return f"extension not built: {_IMPORT_ERROR}"
    return "available"


class NativeMetricKernel:
    """Per-source first-violation queries answered by the C kernel.

    Construction pins the CSR *structure* (indptr / indices / the data-
    position-to-edge-id map) into kernel-private int64 copies that no
    shared-memory writer can touch.  The CSR *weights* are re-fetched
    from ``graph.csr_structure()`` on every call, so the kernel always
    sees the coordinator's current metric — including in-place patches
    and pool repairs that replace the data array object.

    The kernel never prices lengths itself: ``np.expm1`` is not
    guaranteed bitwise-equal to libm's ``expm1``, so repricing stays in
    numpy and the kernel only ever *reads* the installed floored metric.
    """

    def __init__(
        self,
        graph: Graph,
        spec: HierarchySpec,
        tol: float = DEFAULT_TOL,
    ) -> None:
        if not available():  # pragma: no cover - guarded by callers
            raise RuntimeError(
                f"native kernel unavailable: {unavailable_reason()}"
            )
        self._graph = graph
        matrix, slots = graph.csr_structure()
        n = graph.num_nodes
        indptr = np.ascontiguousarray(matrix.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(matrix.indices, dtype=np.int64)
        entry_edge = np.empty(matrix.nnz, dtype=np.int64)
        edge_ids = np.arange(graph.num_edges, dtype=np.int64)
        entry_edge[slots[:, 0]] = edge_ids
        entry_edge[slots[:, 1]] = edge_ids
        sizes = np.ascontiguousarray(graph.node_sizes(), dtype=np.float64)
        unit = bool(np.all(sizes == 1.0))
        unit_bounds = (
            np.ascontiguousarray(
                spreading_bound_array(spec, np.arange(1.0, n + 1.0)),
                dtype=np.float64,
            )
            if unit
            else None
        )
        caps = np.ascontiguousarray(spec.capacities, dtype=np.float64)
        weights = np.ascontiguousarray(spec.weights, dtype=np.float64)
        limit = 2.0 * float(np.sum(weights))
        # Keep every array the C state points into alive for the
        # kernel's lifetime (the capsule stores raw pointers).
        self._refs = (indptr, indices, entry_edge, sizes, unit_bounds,
                      caps, weights)
        self._state = _native.init(
            n,
            indptr,
            indices,
            entry_edge,
            None if unit else sizes,
            unit_bounds,
            caps,
            weights,
            spec.num_levels,
            limit,
            float(tol),
        )

    def check(
        self,
        source: int,
        out_row: Optional[np.ndarray] = None,
    ) -> Tuple[int, Optional[Violation]]:
        """First violated prefix anchored at ``source``.

        Returns ``(settled, violation)`` where ``settled`` is how many
        nodes the early-exiting search actually settled and ``violation``
        matches the scipy engines bit for bit (or is None).  When
        ``out_row`` (a float64 vector prefilled with ``+inf``) is given,
        the settled distances are written into it — pool workers use
        this to ship partial distance rows for snapshot reuse.
        """
        matrix, _slots = self._graph.csr_structure()
        data = np.asarray(matrix.data)
        settled, k, nodes, tree_edges, lhs, rhs = _native.check(
            self._state, data, int(source), out_row
        )
        if k == 0:
            return settled, None
        violation = Violation(
            source=int(source),
            k=int(k),
            nodes=tuple(int(v) for v in nodes),
            tree_edges=tuple(int(e) for e in tree_edges),
            lhs=float(lhs),
            rhs=float(rhs),
        )
        return settled, violation
