"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError`, so a
caller can catch any library failure with a single ``except ReproError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class HypergraphError(ReproError):
    """Malformed hypergraph or graph input (bad node ids, empty nets, ...)."""


class HierarchyError(ReproError):
    """Inconsistent hierarchy specification (non-monotone bounds, ...)."""


class InfeasibleError(ReproError):
    """A partitioning request that cannot be satisfied.

    Raised when no partition can satisfy the size/branch constraints, e.g.
    when a single node is larger than the leaf capacity ``C_0``, or when
    ``ceil(s(V) / K_l) > C_{l-1}`` so a block cannot be split into at most
    ``K_l`` children within the child capacity.
    """


class PartitionError(ReproError):
    """An invalid partition was constructed or supplied."""


class ConvergenceError(ReproError):
    """An iterative solver exceeded its iteration budget without converging."""


class ServiceError(ReproError):
    """A partitioning-service failure (bad job spec, illegal state
    transition, malformed cache blob, protocol violation)."""


class CheckpointError(ReproError):
    """A checkpoint could not be written or a resume payload is unusable
    (wrong shape, wrong fingerprint for this run, malformed envelope)."""


class SolverAborted(ReproError):
    """A cooperative abort check stopped the solver at a round boundary.

    Raised by :func:`repro.core.flow_htp.flow_htp` (and the spreading
    metric loops underneath it) when the caller-supplied ``abort_check``
    fires — deadline exceeded, job cancelled, shutdown requested.  The
    solver exits *cleanly*: a final checkpoint has already been written
    when checkpointing is enabled, so a later run can resume instead of
    restarting.  ``reason`` carries the abort check's verdict.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(f"solver aborted: {reason}")
        self.reason = reason
