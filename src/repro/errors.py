"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError`, so a
caller can catch any library failure with a single ``except ReproError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class HypergraphError(ReproError):
    """Malformed hypergraph or graph input (bad node ids, empty nets, ...)."""


class HierarchyError(ReproError):
    """Inconsistent hierarchy specification (non-monotone bounds, ...)."""


class InfeasibleError(ReproError):
    """A partitioning request that cannot be satisfied.

    Raised when no partition can satisfy the size/branch constraints, e.g.
    when a single node is larger than the leaf capacity ``C_0``, or when
    ``ceil(s(V) / K_l) > C_{l-1}`` so a block cannot be split into at most
    ``K_l`` children within the child capacity.
    """


class PartitionError(ReproError):
    """An invalid partition was constructed or supplied."""


class ConvergenceError(ReproError):
    """An iterative solver exceeded its iteration budget without converging."""


class ServiceError(ReproError):
    """A partitioning-service failure (bad job spec, illegal state
    transition, malformed cache blob, protocol violation)."""
