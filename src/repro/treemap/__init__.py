"""Min-cost tree partitioning (Vijayan's generalisation, ref [16]).

The paper's introduction cites Vijayan's *min-cost tree partitioning*:
map a hypergraph onto the vertices of a tree ``T`` so that the cost of
globally routing the hyperedges over ``T``'s edges is minimised.  This
package implements that problem — and the bridge to HTP: a hierarchical
tree partition *is* a tree mapping onto the hierarchy tree, and
Equation (1)'s cost equals the routing cost when the edge between a
level-``l`` vertex and its parent carries weight ``w_l`` (a net uses that
edge exactly when it has pins both inside and outside the block, which
happens at ``span(e, l)`` blocks per level).  The equivalence is verified
in the test suite.
"""

from repro.treemap.routing import (
    RoutingTree,
    hierarchy_routing_tree,
    net_routing_cost,
    tree_routing_cost,
)
from repro.treemap.assign import (
    TreeAssignConfig,
    greedy_tree_assignment,
    tree_fm_improve,
)

__all__ = [
    "RoutingTree",
    "hierarchy_routing_tree",
    "net_routing_cost",
    "tree_routing_cost",
    "TreeAssignConfig",
    "greedy_tree_assignment",
    "tree_fm_improve",
]
