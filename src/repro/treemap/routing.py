"""Routing trees and the tree-routing cost of a netlist mapping.

A :class:`RoutingTree` is a rooted tree whose vertices can host netlist
nodes (up to a capacity) and whose edges carry weights.  Routing a net
means connecting all tree vertices that host one of its pins with the
minimal subtree of ``T`` — in a tree that subtree is unique: an edge
(child ``q`` -> parent) is used exactly when the net has pins both inside
and outside ``q``'s subtree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HierarchyError, PartitionError
from repro.htp.hierarchy import HierarchySpec
from repro.htp.partition import PartitionTree
from repro.hypergraph.hypergraph import Hypergraph


class RoutingTree:
    """A rooted tree with vertex capacities and edge weights.

    Vertices are ``0..num_vertices-1``; vertex 0 is the root.  The edge
    "above" vertex ``q`` (towards its parent) has weight
    ``edge_weight[q]`` (unused for the root).
    """

    def __init__(
        self,
        parents: Sequence[int],
        capacities: Sequence[float],
        edge_weights: Optional[Sequence[float]] = None,
    ) -> None:
        self._parents = [int(p) for p in parents]
        if not self._parents or self._parents[0] != -1:
            raise HierarchyError("vertex 0 must be the root (parent -1)")
        for q, parent in enumerate(self._parents[1:], start=1):
            if not 0 <= parent < q:
                raise HierarchyError(
                    f"vertex {q} must point at an earlier parent, got "
                    f"{parent}"
                )
        self._capacities = [float(c) for c in capacities]
        if len(self._capacities) != len(self._parents):
            raise HierarchyError("capacities length != vertex count")
        if edge_weights is None:
            self._edge_weights = [1.0] * len(self._parents)
        else:
            self._edge_weights = [float(w) for w in edge_weights]
            if len(self._edge_weights) != len(self._parents):
                raise HierarchyError("edge_weights length != vertex count")
        children: List[List[int]] = [[] for _ in self._parents]
        for q, parent in enumerate(self._parents):
            if parent >= 0:
                children[parent].append(q)
        self._children = [tuple(c) for c in children]
        # Depth-first order with children after parents (for subtree sums).
        order: List[int] = []
        stack = [0]
        while stack:
            q = stack.pop()
            order.append(q)
            stack.extend(self._children[q])
        self._topological = order

    @property
    def num_vertices(self) -> int:
        """Number of tree vertices."""
        return len(self._parents)

    def parent(self, q: int) -> int:
        """Parent of ``q`` (-1 for the root)."""
        return self._parents[q]

    def children(self, q: int) -> Tuple[int, ...]:
        """Children of ``q``."""
        return self._children[q]

    def capacity(self, q: int) -> float:
        """Hosting capacity of vertex ``q``."""
        return self._capacities[q]

    def edge_weight(self, q: int) -> float:
        """Weight of the edge from ``q`` up to its parent."""
        return self._edge_weights[q]

    def topological(self) -> List[int]:
        """Vertices in root-first order (do not mutate)."""
        return self._topological


def net_routing_cost(
    tree: RoutingTree,
    hypergraph: Hypergraph,
    assignment: Sequence[int],
    net_id: int,
) -> float:
    """Routing cost of one net under ``assignment`` (node -> tree vertex)."""
    pins = hypergraph.net(net_id)
    count_in_subtree: Dict[int, int] = {}
    for v in pins:
        q = assignment[v]
        while q != -1:
            count_in_subtree[q] = count_in_subtree.get(q, 0) + 1
            q = tree.parent(q)
    total_pins = len(pins)
    cost = 0.0
    for q, count in count_in_subtree.items():
        if q != 0 and 0 < count < total_pins:
            cost += tree.edge_weight(q)
    return cost * hypergraph.net_capacity(net_id)


def tree_routing_cost(
    tree: RoutingTree,
    hypergraph: Hypergraph,
    assignment: Sequence[int],
) -> float:
    """Total routing cost of a netlist mapping; validates the assignment."""
    if len(assignment) != hypergraph.num_nodes:
        raise PartitionError("assignment length != node count")
    load = [0.0] * tree.num_vertices
    for v, q in enumerate(assignment):
        if not 0 <= q < tree.num_vertices:
            raise PartitionError(f"node {v} assigned to bad vertex {q}")
        load[q] += hypergraph.node_size(v)
    for q in range(tree.num_vertices):
        if load[q] > tree.capacity(q) + 1e-9:
            raise PartitionError(
                f"tree vertex {q} overloaded: {load[q]:g} > "
                f"{tree.capacity(q):g}"
            )
    return sum(
        net_routing_cost(tree, hypergraph, assignment, net_id)
        for net_id in range(hypergraph.num_nets)
    )


def hierarchy_routing_tree(
    partition: PartitionTree, spec: HierarchySpec
) -> Tuple[RoutingTree, List[int], Dict[int, int]]:
    """The routing-tree instance equivalent to an HTP partition.

    Builds a :class:`RoutingTree` mirroring ``partition``'s shape where
    the edge above a level-``l`` vertex carries weight ``w_l``, internal
    vertices get zero hosting capacity (only leaves host nodes, as in
    HTP), and returns ``(tree, assignment, vertex_map)`` with
    ``vertex_map`` mapping partition-vertex ids to routing-tree ids.

    ``tree_routing_cost(tree, hypergraph, assignment)`` then equals
    ``total_cost(hypergraph, partition, spec)`` — Equation (1) seen as
    global routing on the hierarchy (the Vijayan [16] view).
    """
    order: List[int] = []
    stack = [partition.root]
    while stack:
        q = stack.pop()
        order.append(q)
        stack.extend(partition.children(q))
    vertex_map = {q: i for i, q in enumerate(order)}
    parents = [
        -1 if partition.parent(q) == -1 else vertex_map[partition.parent(q)]
        for q in order
    ]
    capacities = [
        spec.capacity(0) if partition.level(q) == 0 else 0.0 for q in order
    ]
    edge_weights = [
        spec.weight(partition.level(q))
        if partition.level(q) < spec.num_levels
        else 0.0
        for q in order
    ]
    tree = RoutingTree(parents, capacities, edge_weights)
    assignment = [
        vertex_map[partition.leaf_of(v)] for v in range(partition.num_nodes)
    ]
    return tree, assignment, vertex_map
