"""Constructive assignment and FM improvement for tree mappings.

The min-cost tree partitioning problem: place netlist nodes on a routing
tree's vertices (respecting capacities) minimising total routing cost.
``greedy_tree_assignment`` packs connected clusters onto host vertices;
``tree_fm_improve`` runs FM-style single-node moves with exact routing
gains and rollback-to-best-prefix passes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InfeasibleError
from repro.hypergraph.hypergraph import Hypergraph
from repro.treemap.routing import RoutingTree, net_routing_cost, tree_routing_cost


@dataclass
class TreeAssignConfig:
    """Knobs for the improvement passes."""

    max_passes: int = 6
    seed: int = 0


def host_vertices(tree: RoutingTree) -> List[int]:
    """Vertices with positive hosting capacity."""
    return [q for q in range(tree.num_vertices) if tree.capacity(q) > 0]


def greedy_tree_assignment(
    tree: RoutingTree,
    hypergraph: Hypergraph,
    rng: Optional[random.Random] = None,
) -> List[int]:
    """A feasible initial assignment by BFS-clustered first fit.

    Nodes are visited in a netlist-BFS order (keeping connected nodes
    together) and packed into host vertices in tree order; raises
    :class:`InfeasibleError` when the total capacity is insufficient.
    """
    rng = rng or random.Random(0)
    hosts = host_vertices(tree)
    if not hosts:
        raise InfeasibleError("routing tree has no hosting capacity")
    total_capacity = sum(tree.capacity(q) for q in hosts)
    if hypergraph.total_size() > total_capacity + 1e-9:
        raise InfeasibleError(
            f"netlist size {hypergraph.total_size():g} exceeds tree "
            f"capacity {total_capacity:g}"
        )
    # Netlist BFS order with random restarts.
    n = hypergraph.num_nodes
    seen = [False] * n
    order: List[int] = []
    starts = list(range(n))
    rng.shuffle(starts)
    for start in starts:
        if seen[start]:
            continue
        queue = [start]
        seen[start] = True
        while queue:
            v = queue.pop(0)
            order.append(v)
            for net_id in hypergraph.incident_nets(v):
                for u in hypergraph.net(net_id):
                    if not seen[u]:
                        seen[u] = True
                        queue.append(u)

    assignment = [-1] * n
    load = {q: 0.0 for q in hosts}
    host_iter = 0
    for v in order:
        size = hypergraph.node_size(v)
        placed = False
        for offset in range(len(hosts)):
            q = hosts[(host_iter + offset) % len(hosts)]
            if load[q] + size <= tree.capacity(q) + 1e-9:
                assignment[v] = q
                load[q] += size
                if load[q] >= tree.capacity(q) - 1e-9:
                    host_iter += offset + 1
                placed = True
                break
        if not placed:
            raise InfeasibleError(
                f"first-fit failed to place node {v} (size {size:g})"
            )
    return assignment


def tree_fm_improve(
    tree: RoutingTree,
    hypergraph: Hypergraph,
    assignment: Sequence[int],
    config: Optional[TreeAssignConfig] = None,
) -> Tuple[List[int], float]:
    """FM-style improvement of a tree mapping; returns (assignment, cost).

    Pass structure mirrors the HTP improvement: pick the best admissible
    single-node move by exact routing-cost gain, lock, roll back to the
    best prefix, repeat until no pass improves.
    """
    config = config or TreeAssignConfig()
    rng = random.Random(config.seed)
    assignment = list(assignment)
    hosts = host_vertices(tree)
    load = {q: 0.0 for q in hosts}
    for v, q in enumerate(assignment):
        load[q] = load.get(q, 0.0) + hypergraph.node_size(v)

    cost = tree_routing_cost(tree, hypergraph, assignment)
    for _pass in range(config.max_passes):
        gained = _one_pass(
            tree, hypergraph, assignment, load, hosts, rng
        )
        cost -= gained
        if gained <= 1e-9:
            break
    return assignment, cost


def _move_gain(
    tree: RoutingTree,
    hypergraph: Hypergraph,
    assignment: List[int],
    node: int,
    target: int,
) -> float:
    """Exact routing-cost decrease of moving ``node`` to ``target``."""
    before = sum(
        net_routing_cost(tree, hypergraph, assignment, net_id)
        for net_id in hypergraph.incident_nets(node)
    )
    original = assignment[node]
    assignment[node] = target
    after = sum(
        net_routing_cost(tree, hypergraph, assignment, net_id)
        for net_id in hypergraph.incident_nets(node)
    )
    assignment[node] = original
    return before - after


def _candidate_targets(
    tree: RoutingTree,
    hypergraph: Hypergraph,
    assignment: List[int],
    node: int,
) -> List[int]:
    """Host vertices holding a net neighbour of ``node`` (its own excluded)."""
    own = assignment[node]
    targets = set()
    for net_id in hypergraph.incident_nets(node):
        for u in hypergraph.net(net_id):
            if u != node:
                targets.add(assignment[u])
    targets.discard(own)
    return [q for q in sorted(targets) if tree.capacity(q) > 0]


def _one_pass(
    tree: RoutingTree,
    hypergraph: Hypergraph,
    assignment: List[int],
    load: Dict[int, float],
    hosts: List[int],
    rng: random.Random,
) -> float:
    n = hypergraph.num_nodes
    locked = [False] * n
    order = list(range(n))
    rng.shuffle(order)
    # Like classic FM, allow transient overflow of one maximum node size
    # so nodes can swap between full hosts; only prefixes at which every
    # host is back within capacity are eligible as the pass result.
    relax = max(hypergraph.node_size(v) for v in range(n))

    moves: List[Tuple[int, int]] = []
    cumulative = 0.0
    best_cumulative = 0.0
    best_prefix = 0

    def overfull() -> bool:
        return any(
            load.get(q, 0.0) > tree.capacity(q) + 1e-9 for q in hosts
        )

    def apply(node: int, target: int) -> None:
        size = hypergraph.node_size(node)
        load[assignment[node]] -= size
        load[target] = load.get(target, 0.0) + size
        assignment[node] = target

    improved = True
    stall = 0
    while improved and stall < 2 * n:
        improved = False
        best_move: Optional[Tuple[float, int, int, bool]] = None
        for node in order:
            if locked[node]:
                continue
            size = hypergraph.node_size(node)
            for target in _candidate_targets(tree, hypergraph, assignment, node):
                new_load = load.get(target, 0.0) + size
                if new_load > tree.capacity(target) + relax + 1e-9:
                    continue
                feasible = new_load <= tree.capacity(target) + 1e-9
                gain = _move_gain(tree, hypergraph, assignment, node, target)
                key = (feasible, gain)
                if best_move is None or key > (best_move[3], best_move[0]):
                    best_move = (gain, node, target, feasible)
        if best_move is None:
            break
        gain, node, target, _feasible = best_move
        previous = assignment[node]
        apply(node, target)
        locked[node] = True
        moves.append((node, previous))
        cumulative += gain
        improved = True
        if not overfull() and cumulative > best_cumulative + 1e-12:
            best_cumulative = cumulative
            best_prefix = len(moves)
            stall = 0
        else:
            stall += 1

    for node, previous in reversed(moves[best_prefix:]):
        apply(node, previous)
    return best_cumulative
