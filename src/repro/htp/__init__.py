"""The Hierarchical Tree Partitioning (HTP) problem domain.

Definitions follow Section 2.1 of the paper: a hierarchy specification
(per-level size bounds ``C_l``, branching bounds ``K_l`` and cost weights
``w_l``), partitions as rooted trees with all leaves at level 0, the
hierarchical interconnection cost of Equation (1), and validators.
"""

from repro.htp.hierarchy import HierarchySpec, binary_hierarchy
from repro.htp.partition import PartitionTree
from repro.htp.cost import (
    IncrementalCost,
    net_cost,
    net_span,
    total_cost,
)
from repro.htp.validate import check_partition, partition_violations
from repro.htp.flat import FlatMetrics, blocks_at_level, flat_metrics, level_profile
from repro.htp.hierarchy_search import (
    HierarchyCandidate,
    best_hierarchy,
    search_hierarchies,
)

__all__ = [
    "HierarchySpec",
    "binary_hierarchy",
    "PartitionTree",
    "IncrementalCost",
    "net_cost",
    "net_span",
    "total_cost",
    "check_partition",
    "partition_violations",
    "FlatMetrics",
    "blocks_at_level",
    "flat_metrics",
    "level_profile",
    "HierarchyCandidate",
    "best_hierarchy",
    "search_hierarchies",
]
