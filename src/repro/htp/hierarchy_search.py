"""Searching over hierarchies: the full HTP problem.

The paper frames HTP as finding *both* a hierarchy and a partition:
"Practically, there are many hierarchies into which we can partition a
circuit.  The problem is how to find a hierarchy and a partition so that
the interconnection cost is minimized."  This module enumerates a family
of candidate hierarchies (binary trees over a height range, with a slack
range) and partitions the netlist into each, returning the ranked
outcomes.

Candidate evaluation is embarrassingly parallel: each candidate is a
pure function of ``(spec, seed)``, so ``parallel=ParallelConfig(...)``
fans candidates across worker processes while preserving the exact
serial results (candidates merge in enumeration order).  For the FLOW
algorithm the net-model expansion is built **once** and shared across
every candidate — hierarchy specs change the size bounds, not the graph,
so rebuilding the graph (and its CSR cache) per candidate is pure waste.

Costs across different hierarchies are only comparable when the weights
express a consistent technology; by default each level's weight is 1, so
deeper hierarchies price more cut layers — callers modelling hardware
should pass ``weights_for(height)`` reflecting their actual I/O costs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.parallel import ParallelConfig, parallel_map
from repro.errors import HierarchyError
from repro.htp.cost import total_cost
from repro.htp.hierarchy import HierarchySpec, binary_hierarchy
from repro.htp.partition import PartitionTree
from repro.htp.validate import partition_violations
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioning.rfm import rfm_partition


@dataclass
class HierarchyCandidate:
    """One evaluated hierarchy: spec, partition, cost and runtime."""

    spec: HierarchySpec
    partition: PartitionTree
    cost: float
    height: int
    slack: float
    seconds: float
    valid: bool


def _evaluate_candidate(task) -> HierarchyCandidate:
    """Evaluate one candidate hierarchy as a pure, picklable task.

    ``task`` is ``(hypergraph, graph, spec, algorithm, config, seed,
    height, slack, in_worker)``.  Inside a fan-out worker the FLOW
    metric engine is demoted from ``'parallel'`` to the bit-identical
    ``'scipy'`` path so workers never spawn nested pools.
    """
    (
        hypergraph,
        graph,
        spec,
        algorithm,
        config,
        seed,
        height,
        slack,
        in_worker,
    ) = task
    start = time.perf_counter()
    if algorithm == "flow":
        if in_worker and config.metric.engine == "parallel":
            config = replace(
                config, metric=replace(config.metric, engine="scipy")
            )
        partition = flow_htp(hypergraph, spec, config, graph=graph).partition
    else:
        partition = rfm_partition(hypergraph, spec, rng=random.Random(seed))
    seconds = time.perf_counter() - start
    cost = total_cost(hypergraph, partition, spec)
    valid = not partition_violations(hypergraph, partition, spec)
    return HierarchyCandidate(
        spec=spec,
        partition=partition,
        cost=cost,
        height=height,
        slack=slack,
        seconds=seconds,
        valid=valid,
    )


def search_hierarchies(
    hypergraph: Hypergraph,
    heights: Sequence[int] = (2, 3, 4),
    slacks: Sequence[float] = (0.10,),
    algorithm: str = "rfm",
    weights_for: Optional[Callable[[int], Sequence[float]]] = None,
    flow_config: Optional[FlowHTPConfig] = None,
    seed: int = 0,
    parallel: Optional[ParallelConfig] = None,
) -> List[HierarchyCandidate]:
    """Partition into every candidate hierarchy; return results by cost.

    Parameters
    ----------
    hypergraph : Hypergraph
        The netlist to partition.
    heights, slacks : sequences
        The candidate grid: one binary hierarchy per (height, slack)
        pair.  Infeasible combinations (e.g. too few nodes for the leaf
        count) are skipped.
    algorithm : {'rfm', 'flow'}
        ``'rfm'`` (fast, default for sweeps) or ``'flow'``.
    weights_for : callable, optional
        ``weights_for(height)`` returning per-level weights.
    flow_config : FlowHTPConfig, optional
        FLOW configuration (``algorithm='flow'`` only).
    seed : int, optional
        Seed for RFM / the default FLOW configuration.
    parallel : ParallelConfig, optional
        When given, candidates are evaluated by worker processes via
        :func:`repro.core.parallel.parallel_map`.  Results are
        bit-identical to the serial sweep for any worker count.

    Returns
    -------
    list of HierarchyCandidate
        Sorted valid-first, then by cost.
    """
    if algorithm not in ("rfm", "flow"):
        raise ValueError(f"unknown algorithm {algorithm!r}")
    total = hypergraph.total_size()

    config: Optional[FlowHTPConfig] = None
    flow_graph = None
    if algorithm == "flow":
        config = flow_config or FlowHTPConfig(
            iterations=1, constructions_per_metric=4, seed=seed
        )
        # One expansion for the whole sweep: specs change the size
        # bounds, not the graph, so every candidate shares this graph
        # (and its CSR cache) instead of rebuilding it.  Seeded exactly
        # as flow_htp would internally, so results are unchanged.
        flow_graph = to_graph(
            hypergraph, model=config.net_model, rng=random.Random(config.seed)
        )

    fan_out = (
        parallel is not None and parallel.resolved_workers() > 1
    )
    tasks = []
    for height in heights:
        for slack in slacks:
            weights = weights_for(height) if weights_for else None
            try:
                spec = binary_hierarchy(
                    total, height=height, slack=slack, weights=weights
                )
            except HierarchyError:
                continue
            tasks.append(
                (
                    hypergraph,
                    flow_graph,
                    spec,
                    algorithm,
                    config,
                    seed,
                    height,
                    slack,
                    fan_out,
                )
            )

    if fan_out and len(tasks) > 1:
        candidates = list(
            parallel_map(_evaluate_candidate, tasks, parallel=parallel)
        )
    else:
        candidates = [_evaluate_candidate(task) for task in tasks]
    candidates.sort(key=lambda c: (not c.valid, c.cost))
    return candidates


def best_hierarchy(
    hypergraph: Hypergraph, **kwargs
) -> HierarchyCandidate:
    """The lowest-cost valid candidate of :func:`search_hierarchies`."""
    candidates = search_hierarchies(hypergraph, **kwargs)
    for candidate in candidates:
        if candidate.valid:
            return candidate
    raise HierarchyError("no candidate hierarchy produced a valid partition")
