"""Searching over hierarchies: the full HTP problem.

The paper frames HTP as finding *both* a hierarchy and a partition:
"Practically, there are many hierarchies into which we can partition a
circuit.  The problem is how to find a hierarchy and a partition so that
the interconnection cost is minimized."  This module enumerates a family
of candidate hierarchies (binary trees over a height range, with a slack
range) and partitions the netlist into each, returning the ranked
outcomes.

Costs across different hierarchies are only comparable when the weights
express a consistent technology; by default each level's weight is 1, so
deeper hierarchies price more cut layers — callers modelling hardware
should pass ``weights_for(height)`` reflecting their actual I/O costs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.errors import HierarchyError
from repro.htp.cost import total_cost
from repro.htp.hierarchy import HierarchySpec, binary_hierarchy
from repro.htp.partition import PartitionTree
from repro.htp.validate import partition_violations
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioning.rfm import rfm_partition


@dataclass
class HierarchyCandidate:
    """One evaluated hierarchy: spec, partition, cost and runtime."""

    spec: HierarchySpec
    partition: PartitionTree
    cost: float
    height: int
    slack: float
    seconds: float
    valid: bool


def search_hierarchies(
    hypergraph: Hypergraph,
    heights: Sequence[int] = (2, 3, 4),
    slacks: Sequence[float] = (0.10,),
    algorithm: str = "rfm",
    weights_for: Optional[Callable[[int], Sequence[float]]] = None,
    flow_config: Optional[FlowHTPConfig] = None,
    seed: int = 0,
) -> List[HierarchyCandidate]:
    """Partition into every candidate hierarchy; return results by cost.

    ``algorithm`` is ``'rfm'`` (fast, default for sweeps) or ``'flow'``.
    Hierarchies that are infeasible for the netlist (e.g. too few nodes
    for the leaf count) are skipped.
    """
    if algorithm not in ("rfm", "flow"):
        raise ValueError(f"unknown algorithm {algorithm!r}")
    total = hypergraph.total_size()
    candidates: List[HierarchyCandidate] = []
    for height in heights:
        for slack in slacks:
            weights = weights_for(height) if weights_for else None
            try:
                spec = binary_hierarchy(
                    total, height=height, slack=slack, weights=weights
                )
            except HierarchyError:
                continue
            start = time.perf_counter()
            if algorithm == "flow":
                config = flow_config or FlowHTPConfig(
                    iterations=1, constructions_per_metric=4, seed=seed
                )
                partition = flow_htp(hypergraph, spec, config).partition
            else:
                partition = rfm_partition(
                    hypergraph, spec, rng=random.Random(seed)
                )
            seconds = time.perf_counter() - start
            cost = total_cost(hypergraph, partition, spec)
            valid = not partition_violations(hypergraph, partition, spec)
            candidates.append(
                HierarchyCandidate(
                    spec=spec,
                    partition=partition,
                    cost=cost,
                    height=height,
                    slack=slack,
                    seconds=seconds,
                    valid=valid,
                )
            )
    candidates.sort(key=lambda c: (not c.valid, c.cost))
    return candidates


def best_hierarchy(
    hypergraph: Hypergraph, **kwargs
) -> HierarchyCandidate:
    """The lowest-cost valid candidate of :func:`search_hierarchies`."""
    candidates = search_hierarchies(hypergraph, **kwargs)
    for candidate in candidates:
        if candidate.valid:
            return candidate
    raise HierarchyError("no candidate hierarchy produced a valid partition")
