"""Hierarchy specifications: the (K_l, C_l, w_l) triples of the paper.

A :class:`HierarchySpec` describes a *family* of admissible tree
hierarchies: a vertex at level ``l`` may hold nodes of total size at most
``C_l`` and have at most ``K_l`` children; a net cut at level ``l``
contributes with weight ``w_l``.  Levels run from 0 (leaves) to
``num_levels`` (root).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import HierarchyError


@dataclass(frozen=True)
class HierarchySpec:
    """Per-level bounds and weights of an HTP instance.

    Attributes
    ----------
    capacities:
        ``(C_0, ..., C_L)`` — size upper bound of a block at each level.
        Must be strictly increasing; ``C_L`` must hold the whole netlist.
    branching:
        ``(K_1, ..., K_L)`` — maximum children of a vertex at levels
        1..L (leaves have no children).
    weights:
        ``(w_0, ..., w_{L-1})`` — cost weight of a cut at each level;
        Equation (1) sums over levels 0..L-1.
    """

    capacities: Tuple[float, ...]
    branching: Tuple[int, ...]
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        capacities = tuple(float(c) for c in self.capacities)
        branching = tuple(int(k) for k in self.branching)
        weights = tuple(float(w) for w in self.weights)
        object.__setattr__(self, "capacities", capacities)
        object.__setattr__(self, "branching", branching)
        object.__setattr__(self, "weights", weights)
        levels = len(capacities) - 1
        if levels < 1:
            raise HierarchyError("need at least two levels (leaf and root)")
        if len(branching) != levels:
            raise HierarchyError(
                f"branching must have {levels} entries (levels 1..{levels})"
            )
        if len(weights) != levels:
            raise HierarchyError(
                f"weights must have {levels} entries (levels 0..{levels - 1})"
            )
        if any(c <= 0 for c in capacities):
            raise HierarchyError("capacities must be positive")
        if any(
            capacities[i] >= capacities[i + 1] for i in range(levels)
        ):
            raise HierarchyError("capacities must be strictly increasing")
        if any(k < 2 for k in branching):
            raise HierarchyError("branching bounds must be at least 2")
        if any(w < 0 for w in weights):
            raise HierarchyError("weights must be nonnegative")

    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        """The root level ``L``; levels are ``0..L``."""
        return len(self.capacities) - 1

    def capacity(self, level: int) -> float:
        """Size bound ``C_level``."""
        return self.capacities[level]

    def branch_bound(self, level: int) -> int:
        """Branching bound ``K_level`` (levels 1..L)."""
        if level < 1 or level > self.num_levels:
            raise HierarchyError(
                f"K_l is defined for levels 1..{self.num_levels}, got {level}"
            )
        return self.branching[level - 1]

    def weight(self, level: int) -> float:
        """Cut weight ``w_level`` (levels 0..L-1)."""
        if level < 0 or level >= self.num_levels:
            raise HierarchyError(
                f"w_l is defined for levels 0..{self.num_levels - 1}, got {level}"
            )
        return self.weights[level]

    def level_of_size(self, size: float) -> int:
        """The level a block of total size ``size`` must live at.

        Step 2 of Algorithm 3: level 0 if ``size <= C_0``, otherwise the
        smallest ``l`` with ``C_{l-1} < size <= C_l``.
        """
        if size <= self.capacities[0]:
            return 0
        for level in range(1, self.num_levels + 1):
            if size <= self.capacities[level]:
                return level
        raise HierarchyError(
            f"size {size} exceeds the root capacity C_L = {self.capacities[-1]}"
        )

    def child_bounds(self, level: int, size: float) -> Tuple[float, float]:
        """``(LB, UB)`` for carving children of a level-``level`` block.

        ``LB = ceil(size / K_l)`` guarantees at most ``K_l`` children;
        ``UB = C_{l-1}``.  Raises when infeasible (LB > UB).
        """
        k = self.branch_bound(level)
        lower = math.ceil(size / k)
        upper = self.capacities[level - 1]
        if lower > upper:
            raise HierarchyError(
                f"block of size {size} at level {level} cannot be split into "
                f"at most K_{level}={k} children of size <= C_{level - 1}="
                f"{upper}"
            )
        return float(lower), float(upper)

    def describe(self) -> str:
        """Multi-line human-readable rendering (Figure 1 style)."""
        lines = []
        for level in range(self.num_levels, -1, -1):
            parts = [f"level {level}:", f"C={self.capacities[level]:g}"]
            if level >= 1:
                parts.append(f"K={self.branch_bound(level)}")
            if level < self.num_levels:
                parts.append(f"w={self.weight(level):g}")
            lines.append("  " + " ".join(parts))
        return "\n".join(lines)


def binary_hierarchy(
    total_size: float,
    height: int = 4,
    slack: float = 0.10,
    weights: Optional[Sequence[float]] = None,
) -> HierarchySpec:
    """A full-binary-tree hierarchy as used in the paper's experiments.

    ``K_l = 2`` at every level; ``C_l`` is the balanced share
    ``total_size / 2^(height - l)`` inflated by ``slack`` (the root gets
    exactly ``total_size``).  Equal unit weights by default.

    Parameters
    ----------
    total_size:
        Total node size of the netlist to be partitioned.
    height:
        Tree height ``L`` (the paper uses 4, i.e. 16 leaves).
    slack:
        Fractional allowance above the perfectly balanced share.
    weights:
        Optional per-level weights ``(w_0..w_{L-1})``; unit by default.
    """
    if height < 1:
        raise HierarchyError("height must be at least 1")
    if total_size < 2**height:
        raise HierarchyError(
            f"total size {total_size} too small for 2^{height} leaves"
        )
    capacities: List[float] = []
    for level in range(height):
        share = total_size / 2 ** (height - level)
        capacities.append(float(math.ceil(share * (1.0 + slack))))
    capacities.append(float(total_size))
    # Enforce strict monotonicity for tiny instances where rounding collides.
    for level in range(1, height + 1):
        if capacities[level] <= capacities[level - 1]:
            capacities[level] = capacities[level - 1] + 1
    capacities[height] = max(
        capacities[height], float(total_size), capacities[height - 1] + 1
    )
    level_weights = (
        tuple(float(w) for w in weights)
        if weights is not None
        else tuple(1.0 for _ in range(height))
    )
    return HierarchySpec(
        capacities=tuple(capacities),
        branching=tuple(2 for _ in range(height)),
        weights=level_weights,
    )


def figure2_hierarchy() -> HierarchySpec:
    """The hierarchy of the paper's Figure 2: C=(4, 8, 16), w=(1, 2)."""
    return HierarchySpec(
        capacities=(4.0, 8.0, 16.0), branching=(2, 2), weights=(1.0, 2.0)
    )
