"""Hierarchical interconnection cost (Equation 1 of the paper).

``span(e, l)`` is the number of level-``l`` blocks containing pins of net
``e`` — defined as 0 when the net is internal to one block.  The net cost
is ``cost(e) = sum_{l=0}^{L-1} w_l * span(e, l) * c(e)`` and the partition
cost is the sum over nets.

:class:`IncrementalCost` maintains per-net, per-level block pin counts so
that FM-style node moves can be gained and applied in
O(degree * L) instead of re-evaluating the whole netlist.
"""

from __future__ import annotations

from typing import Dict, List

from repro.htp.hierarchy import HierarchySpec
from repro.htp.partition import PartitionTree
from repro.hypergraph.hypergraph import Hypergraph


def net_span(
    hypergraph: Hypergraph,
    partition: PartitionTree,
    net_id: int,
    level: int,
) -> int:
    """``span(e, l)``: blocks at ``level`` touched by net ``net_id`` (0 if 1)."""
    blocks = {
        partition.block_at_level(v, level) for v in hypergraph.net(net_id)
    }
    return 0 if len(blocks) <= 1 else len(blocks)


def net_cost(
    hypergraph: Hypergraph,
    partition: PartitionTree,
    spec: HierarchySpec,
    net_id: int,
) -> float:
    """``cost(e)`` of Equation (1) for one net."""
    capacity = hypergraph.net_capacity(net_id)
    total = 0.0
    for level in range(spec.num_levels):
        total += spec.weight(level) * net_span(
            hypergraph, partition, net_id, level
        )
    return total * capacity


def total_cost(
    hypergraph: Hypergraph,
    partition: PartitionTree,
    spec: HierarchySpec,
) -> float:
    """Total interconnection cost ``sum_e cost(e)`` of a partition."""
    return sum(
        net_cost(hypergraph, partition, spec, net_id)
        for net_id in range(hypergraph.num_nets)
    )


def induced_metric(
    hypergraph: Hypergraph,
    partition: PartitionTree,
    spec: HierarchySpec,
) -> List[float]:
    """The spreading metric a partition induces: ``d(e) = cost(e) / c(e)``.

    This is the construction of Lemma 1; feasibility of the result in the
    linear program (P1) is what the lemma asserts.
    """
    return [
        net_cost(hypergraph, partition, spec, net_id)
        / hypergraph.net_capacity(net_id)
        for net_id in range(hypergraph.num_nets)
    ]


def _span_of_count(distinct_blocks: int) -> int:
    """Map a distinct-block count to the paper's span value."""
    return 0 if distinct_blocks <= 1 else distinct_blocks


class IncrementalCost:
    """Incrementally maintained hierarchical cost under node moves.

    Keeps, for every net and level ``0..L-1``, the pin count per block, and
    the current total cost.  ``gain(node, target_leaf)`` prices a move
    without applying it; ``apply(node, target_leaf)`` performs it and
    updates both this structure and the partition tree.
    """

    def __init__(
        self,
        hypergraph: Hypergraph,
        partition: PartitionTree,
        spec: HierarchySpec,
    ) -> None:
        self._hypergraph = hypergraph
        self._partition = partition
        self._spec = spec
        self._levels = spec.num_levels
        # _counts[net_id][level] : {block_id: pin_count}
        self._counts: List[List[Dict[int, int]]] = []
        self._cost = 0.0
        for net_id in range(hypergraph.num_nets):
            per_level: List[Dict[int, int]] = []
            capacity = hypergraph.net_capacity(net_id)
            for level in range(self._levels):
                counter: Dict[int, int] = {}
                for v in hypergraph.net(net_id):
                    block = partition.block_at_level(v, level)
                    counter[block] = counter.get(block, 0) + 1
                per_level.append(counter)
                self._cost += (
                    spec.weight(level) * _span_of_count(len(counter)) * capacity
                )
            self._counts.append(per_level)

    @property
    def cost(self) -> float:
        """Current total cost."""
        return self._cost

    @property
    def partition(self) -> PartitionTree:
        """The partition tree being tracked."""
        return self._partition

    def gain(self, node: int, target_leaf: int) -> float:
        """Cost *decrease* if ``node`` moved to ``target_leaf`` (may be < 0)."""
        return -self._move_delta(node, target_leaf, apply_move=False)

    def apply(self, node: int, target_leaf: int) -> float:
        """Move ``node``; returns the realised gain (cost decrease)."""
        delta = self._move_delta(node, target_leaf, apply_move=True)
        self._cost += delta
        self._partition.move(node, target_leaf)
        return -delta

    def recompute(self) -> float:
        """Full recomputation (validation aid); returns the exact cost."""
        return total_cost(self._hypergraph, self._partition, self._spec)

    # ------------------------------------------------------------------
    def _move_delta(
        self, node: int, target_leaf: int, apply_move: bool
    ) -> float:
        """Signed cost change of moving ``node`` to ``target_leaf``."""
        partition = self._partition
        spec = self._spec
        source_chain = partition.ancestor_chain(partition.leaf_of(node))
        target_chain = partition.ancestor_chain(target_leaf)
        delta = 0.0
        for net_id in self._hypergraph.incident_nets(node):
            capacity = self._hypergraph.net_capacity(net_id)
            per_level = self._counts[net_id]
            for level in range(self._levels):
                old_block = source_chain[level]
                new_block = target_chain[level]
                if old_block == new_block:
                    continue
                counter = per_level[level]
                old_span = _span_of_count(len(counter))
                old_count = counter[old_block]
                new_distinct = len(counter)
                if old_count == 1:
                    new_distinct -= 1
                if new_block not in counter:
                    new_distinct += 1
                new_span = _span_of_count(new_distinct)
                delta += spec.weight(level) * (new_span - old_span) * capacity
                if apply_move:
                    if old_count == 1:
                        del counter[old_block]
                    else:
                        counter[old_block] = old_count - 1
                    counter[new_block] = counter.get(new_block, 0) + 1
        return delta
