"""Flat views of hierarchical partitions and classic partition metrics.

Hierarchical tree partitions subsume ordinary K-way partitions: the
blocks at any level form a flat multiway partition.  This module extracts
those views and evaluates the classic quality metrics of the partitioning
literature (cut nets, sum of external degrees, the (K-1) metric) so the
HTP algorithms can be compared against flat-partitioning expectations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.htp.partition import PartitionTree
from repro.hypergraph.hypergraph import Hypergraph


@dataclass(frozen=True)
class FlatMetrics:
    """Classic multiway partition quality numbers at one level.

    ``cut_nets``: number of nets spanning >= 2 blocks.
    ``cut_capacity``: their total capacity.
    ``soed``: sum over cut nets of (blocks spanned) * capacity — the
    "sum of external degrees" metric.
    ``k_minus_1``: sum over cut nets of (blocks spanned - 1) * capacity —
    the hMETIS (K-1) objective.
    ``num_blocks``: number of non-empty blocks at the level.
    """

    cut_nets: int
    cut_capacity: float
    soed: float
    k_minus_1: float
    num_blocks: int


def blocks_at_level(
    partition: PartitionTree, level: int
) -> Dict[int, List[int]]:
    """Mapping level-``level`` vertex id -> sorted member node list."""
    blocks: Dict[int, List[int]] = {}
    for node in range(partition.num_nodes):
        vertex = partition.block_at_level(node, level)
        blocks.setdefault(vertex, []).append(node)
    return {vertex: sorted(nodes) for vertex, nodes in blocks.items()}


def flat_metrics(
    hypergraph: Hypergraph, partition: PartitionTree, level: int
) -> FlatMetrics:
    """Evaluate the classic flat-partition metrics at ``level``."""
    cut_nets = 0
    cut_capacity = 0.0
    soed = 0.0
    k_minus_1 = 0.0
    seen_blocks = set()
    for node in range(partition.num_nodes):
        seen_blocks.add(partition.block_at_level(node, level))
    for net_id, pins in enumerate(hypergraph.nets()):
        spanned = {partition.block_at_level(v, level) for v in pins}
        if len(spanned) <= 1:
            continue
        capacity = hypergraph.net_capacity(net_id)
        cut_nets += 1
        cut_capacity += capacity
        soed += len(spanned) * capacity
        k_minus_1 += (len(spanned) - 1) * capacity
    return FlatMetrics(
        cut_nets=cut_nets,
        cut_capacity=cut_capacity,
        soed=soed,
        k_minus_1=k_minus_1,
        num_blocks=len(seen_blocks),
    )


def level_profile(
    hypergraph: Hypergraph, partition: PartitionTree
) -> List[FlatMetrics]:
    """Flat metrics for every level 0..L-1 (root level omitted)."""
    return [
        flat_metrics(hypergraph, partition, level)
        for level in range(partition.num_levels)
    ]
