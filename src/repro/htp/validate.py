"""Validation of hierarchical tree partitions against a spec."""

from __future__ import annotations

from typing import List

from repro.errors import PartitionError
from repro.htp.hierarchy import HierarchySpec
from repro.htp.partition import PartitionTree
from repro.hypergraph.hypergraph import Hypergraph


def partition_violations(
    hypergraph: Hypergraph,
    partition: PartitionTree,
    spec: HierarchySpec,
) -> List[str]:
    """All constraint violations of a partition, as human-readable strings.

    Checks: node count, orphan (unassigned) nodes, level consistency,
    size bounds ``C_l`` and branching bounds ``K_l`` at every tree
    vertex.  Empty list = valid.
    """
    problems: List[str] = []
    if partition.num_nodes != hypergraph.num_nodes:
        problems.append(
            f"partition covers {partition.num_nodes} nodes, netlist has "
            f"{hypergraph.num_nodes}"
        )
        return problems
    orphans = []
    for v in range(partition.num_nodes):
        try:
            partition.leaf_of(v)
        except PartitionError:
            orphans.append(v)
    if orphans:
        # Size accounting below would be meaningless (and ancestor
        # chains undefined) with unassigned nodes; report and stop.
        problems.append(
            f"{len(orphans)} orphan nodes not assigned to any leaf "
            f"(first: {orphans[:5]})"
        )
        return problems
    if partition.num_levels != spec.num_levels:
        problems.append(
            f"partition has {partition.num_levels} levels, spec has "
            f"{spec.num_levels}"
        )

    sizes = partition.block_sizes(hypergraph.node_sizes())
    max_level = min(partition.num_levels, spec.num_levels)
    for level in range(0, max_level + 1):
        bound = spec.capacity(level) if level <= spec.num_levels else None
        for vertex in partition.vertices_at_level(level):
            if bound is not None and sizes[vertex] > bound + 1e-9:
                problems.append(
                    f"vertex {vertex} at level {level} has size "
                    f"{sizes[vertex]:g} > C_{level} = {bound:g}"
                )
            if level >= 1:
                children = partition.children(vertex)
                k_bound = spec.branch_bound(level)
                if len(children) > k_bound:
                    problems.append(
                        f"vertex {vertex} at level {level} has "
                        f"{len(children)} children > K_{level} = {k_bound}"
                    )
    return problems


def check_partition(
    hypergraph: Hypergraph,
    partition: PartitionTree,
    spec: HierarchySpec,
) -> None:
    """Raise :class:`PartitionError` when the partition violates the spec."""
    problems = partition_violations(hypergraph, partition, spec)
    if problems:
        raise PartitionError(
            "invalid partition:\n  " + "\n  ".join(problems)
        )
