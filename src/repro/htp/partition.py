"""Hierarchical tree partitions ``P = (T, {V_q})``.

A :class:`PartitionTree` is a rooted tree whose vertices are partition
blocks; all leaves sit at level 0 and every netlist node is assigned to
exactly one leaf (and implicitly to all of that leaf's ancestors).  The
class supports incremental construction (Algorithm 3 builds it top-down),
bottom-up construction from nested block lists (GFM), and node moves
between leaves (the FM improvement phase).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import PartitionError

Nested = Union[Sequence[int], Sequence["Nested"]]


@dataclass
class _Vertex:
    """One tree vertex (partition block)."""

    vertex_id: int
    level: int
    parent: int  # -1 for the root
    children: List[int] = field(default_factory=list)


class PartitionTree:
    """A rooted partition hierarchy over netlist nodes ``0..n-1``.

    Build with :meth:`add_vertex` / :meth:`assign`, or use
    :meth:`from_nested` / :meth:`from_leaf_blocks`.  Call :meth:`freeze`
    (idempotent) before cost evaluation so ancestor tables exist; node
    moves between leaves keep the tables valid.
    """

    def __init__(self, num_nodes: int, num_levels: int) -> None:
        if num_nodes <= 0:
            raise PartitionError("partition needs at least one netlist node")
        if num_levels < 1:
            raise PartitionError("partition needs at least two tree levels")
        self._num_nodes = num_nodes
        self._num_levels = num_levels
        self._vertices: List[_Vertex] = []
        self._root = self.add_vertex(level=num_levels, parent=-1)
        self._leaf_of: List[int] = [-1] * num_nodes
        # ancestor_at[leaf][level] for level in 0..num_levels
        self._ancestors: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, level: int, parent: int) -> int:
        """Create a tree vertex at ``level`` under ``parent``; returns its id."""
        if parent == -1:
            if self._vertices:
                raise PartitionError("the root already exists")
        else:
            parent_vertex = self._vertices[parent]
            if parent_vertex.level != level + 1:
                raise PartitionError(
                    f"vertex at level {level} must hang under a level "
                    f"{level + 1} parent (got level {parent_vertex.level})"
                )
        if not (0 <= level <= self._num_levels):
            raise PartitionError(f"level {level} outside 0..{self._num_levels}")
        vertex_id = len(self._vertices)
        self._vertices.append(_Vertex(vertex_id, level, parent))
        if parent != -1:
            self._vertices[parent].children.append(vertex_id)
        self._ancestors = {}
        return vertex_id

    def add_leaf_chain(self, parent: int) -> int:
        """Add a chain of single-child vertices from ``parent`` down to level 0.

        Used when a block is already small enough to be a leaf but its
        parent sits more than one level up; returns the level-0 leaf id.
        """
        current = parent
        level = self._vertices[parent].level - 1
        while level >= 0:
            current = self.add_vertex(level=level, parent=current)
            level -= 1
        return current

    def assign(self, node: int, leaf: int) -> None:
        """Assign netlist node ``node`` to leaf vertex ``leaf``."""
        if self._vertices[leaf].level != 0:
            raise PartitionError(
                f"nodes may only be assigned to level-0 leaves, vertex "
                f"{leaf} is at level {self._vertices[leaf].level}"
            )
        self._leaf_of[node] = leaf

    def freeze(self) -> "PartitionTree":
        """Validate shape, build ancestor tables; returns self."""
        unassigned = [v for v in range(self._num_nodes) if self._leaf_of[v] < 0]
        if unassigned:
            raise PartitionError(
                f"{len(unassigned)} nodes are unassigned (first: "
                f"{unassigned[:5]})"
            )
        self._build_ancestors()
        return self

    def _build_ancestors(self) -> None:
        self._ancestors = {}
        for vertex in self._vertices:
            if vertex.level == 0:
                chain = [0] * (self._num_levels + 1)
                current = vertex.vertex_id
                for level in range(0, self._num_levels + 1):
                    if current == -1:
                        raise PartitionError(
                            f"leaf {vertex.vertex_id} does not reach the root"
                        )
                    if self._vertices[current].level != level:
                        raise PartitionError(
                            f"ancestor chain of leaf {vertex.vertex_id} skips "
                            f"level {level}"
                        )
                    chain[level] = current
                    current = self._vertices[current].parent
                self._ancestors[vertex.vertex_id] = chain

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def from_nested(cls, nested: Nested, num_nodes: int) -> "PartitionTree":
        """Build from a nested list structure.

        A leaf block is a (possibly empty) list of ints; an internal block
        is a list of child structures.  All leaves must end up at the same
        depth, which becomes level 0.
        """
        depth = _uniform_depth(nested)
        tree = cls(num_nodes=num_nodes, num_levels=depth)

        def build(structure: Nested, parent: int, level: int) -> None:
            if level == 0:
                for node in structure:  # type: ignore[union-attr]
                    if not isinstance(node, int):
                        raise PartitionError(
                            "leaf blocks must contain node ids"
                        )
                    tree.assign(node, parent)
                return
            for child in structure:  # type: ignore[union-attr]
                child_id = tree.add_vertex(level=level - 1, parent=parent)
                build(child, child_id, level - 1)

        build(nested, tree.root, depth)
        return tree.freeze()

    @classmethod
    def from_leaf_blocks(
        cls,
        blocks: Sequence[Sequence[int]],
        num_nodes: int,
        grouping: Optional[Sequence[Sequence[int]]] = None,
        num_levels: Optional[int] = None,
    ) -> "PartitionTree":
        """Build a two-level (or deeper, via ``grouping``) partition.

        Without ``grouping``: all ``blocks`` hang directly under the root
        (``num_levels`` defaults to 1).  With ``grouping``: GFM's bottom-up
        construction — ``grouping[i]`` is a list of groups, one group per
        level-``i+1`` parent, each containing the indices of the level-``i``
        vertices placed under it.  Level-0 indices refer to positions in
        ``blocks``; higher-level indices refer to the group order of the
        previous entry.  ``grouping[-1]`` must be a single group (the root's
        children), so ``num_levels == len(grouping)``.
        """
        if grouping is None:
            levels = num_levels if num_levels is not None else 1
            tree = cls(num_nodes=num_nodes, num_levels=levels)
            for block in blocks:
                # Each block hangs under the root via a chain of
                # single-child vertices ending in a level-0 leaf.
                leaf = tree.add_leaf_chain(tree.root)
                for node in block:
                    tree.assign(node, leaf)
            return tree.freeze()
        num_levels_actual = len(grouping)
        if len(grouping[-1]) != 1:
            raise PartitionError(
                "grouping[-1] must be a single group (the root's children)"
            )
        tree = cls(num_nodes=num_nodes, num_levels=num_levels_actual)
        # Build top-down: at each level, create child vertices in index
        # order under their parents from the level above.
        parent_vertices: List[int] = [tree.root]
        for level in range(num_levels_actual - 1, -1, -1):
            level_grouping = grouping[level]
            if len(level_grouping) != len(parent_vertices):
                raise PartitionError(
                    f"grouping[{level}] has {len(level_grouping)} groups but "
                    f"level {level + 1} has {len(parent_vertices)} vertices"
                )
            flat: List[Tuple[int, int]] = []  # (child_index, parent_vertex)
            for parent_index, group in enumerate(level_grouping):
                for child_index in group:
                    flat.append((child_index, parent_vertices[parent_index]))
            flat.sort()
            if [c for c, _p in flat] != list(range(len(flat))):
                raise PartitionError(
                    f"grouping[{level}] must cover child indices "
                    f"0..{len(flat) - 1} exactly once"
                )
            parent_vertices = [
                tree.add_vertex(level=level, parent=parent_vertex)
                for _child_index, parent_vertex in flat
            ]
        if len(parent_vertices) != len(blocks):
            raise PartitionError(
                f"grouping yields {len(parent_vertices)} leaves but "
                f"{len(blocks)} blocks were given"
            )
        for block, leaf in zip(blocks, parent_vertices):
            for node in block:
                tree.assign(node, leaf)
        return tree.freeze()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready document; inverse of :meth:`from_dict`.

        Vertices are listed in id order as ``(level, parent)`` pairs (the
        root, id 0, carries parent -1); ``leaf_of`` maps each netlist
        node to its leaf vertex id.  The document fully determines the
        tree: :meth:`from_dict` rebuilds a structurally identical
        instance, so ``to_dict`` → JSON → ``from_dict`` → ``to_dict``
        is the identity.
        """
        return {
            "num_nodes": self._num_nodes,
            "num_levels": self._num_levels,
            "vertices": [[v.level, v.parent] for v in self._vertices],
            "leaf_of": list(self._leaf_of),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PartitionTree":
        """Rebuild (and freeze) a tree written by :meth:`to_dict`."""
        try:
            num_nodes = int(payload["num_nodes"])
            num_levels = int(payload["num_levels"])
            vertices = list(payload["vertices"])
            leaf_of = list(payload["leaf_of"])
        except (KeyError, TypeError) as exc:
            raise PartitionError(
                f"malformed partition payload: {exc!r}"
            ) from exc
        if not vertices:
            raise PartitionError("partition payload lists no vertices")
        root_level, root_parent = vertices[0]
        if int(root_parent) != -1 or int(root_level) != num_levels:
            raise PartitionError(
                "partition payload vertex 0 must be the root "
                f"(level {num_levels}, parent -1); got level {root_level}, "
                f"parent {root_parent}"
            )
        tree = cls(num_nodes=num_nodes, num_levels=num_levels)
        for level, parent in vertices[1:]:
            tree.add_vertex(level=int(level), parent=int(parent))
        if len(leaf_of) != num_nodes:
            raise PartitionError(
                f"partition payload assigns {len(leaf_of)} nodes, "
                f"expected {num_nodes}"
            )
        for node, leaf in enumerate(leaf_of):
            leaf = int(leaf)
            if not 0 <= leaf < len(tree._vertices):
                raise PartitionError(
                    f"partition payload assigns node {node} to unknown "
                    f"vertex {leaf}"
                )
            tree.assign(node, leaf)
        return tree.freeze()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of netlist nodes."""
        return self._num_nodes

    @property
    def num_levels(self) -> int:
        """Root level ``L``."""
        return self._num_levels

    @property
    def root(self) -> int:
        """Root vertex id."""
        return self._root

    @property
    def num_vertices(self) -> int:
        """Number of tree vertices."""
        return len(self._vertices)

    def level(self, vertex: int) -> int:
        """Level of tree vertex ``vertex``."""
        return self._vertices[vertex].level

    def parent(self, vertex: int) -> int:
        """Parent vertex id (-1 for the root)."""
        return self._vertices[vertex].parent

    def children(self, vertex: int) -> Tuple[int, ...]:
        """Child vertex ids."""
        return tuple(self._vertices[vertex].children)

    def leaves(self) -> List[int]:
        """All level-0 vertex ids, ascending."""
        return [v.vertex_id for v in self._vertices if v.level == 0]

    def vertices_at_level(self, level: int) -> List[int]:
        """All vertex ids at ``level``, ascending."""
        return [v.vertex_id for v in self._vertices if v.level == level]

    def leaf_of(self, node: int) -> int:
        """Leaf vertex holding netlist node ``node``."""
        leaf = self._leaf_of[node]
        if leaf < 0:
            raise PartitionError(f"node {node} is unassigned")
        return leaf

    def block_at_level(self, node: int, level: int) -> int:
        """The level-``level`` tree vertex containing netlist node ``node``."""
        if not self._ancestors:
            self._build_ancestors()
        return self._ancestors[self.leaf_of(node)][level]

    def ancestor_chain(self, leaf: int) -> List[int]:
        """Vertex ids from ``leaf`` (level 0) up to the root (do not mutate)."""
        if not self._ancestors:
            self._build_ancestors()
        return self._ancestors[leaf]

    def members(self, vertex: int) -> List[int]:
        """Netlist nodes assigned to ``vertex`` (directly or via descendants)."""
        if not self._ancestors:
            self._build_ancestors()
        level = self._vertices[vertex].level
        return sorted(
            node
            for node in range(self._num_nodes)
            if self._ancestors[self._leaf_of[node]][level] == vertex
        )

    def leaf_blocks(self) -> Dict[int, List[int]]:
        """Mapping leaf id -> sorted list of its nodes."""
        blocks: Dict[int, List[int]] = {leaf: [] for leaf in self.leaves()}
        for node in range(self._num_nodes):
            if self._leaf_of[node] >= 0:
                blocks[self._leaf_of[node]].append(node)
        return blocks

    def block_sizes(self, node_sizes: Sequence[float]) -> Dict[int, float]:
        """Mapping vertex id -> total node size under it."""
        if not self._ancestors:
            self._build_ancestors()
        sizes = {v.vertex_id: 0.0 for v in self._vertices}
        for node in range(self._num_nodes):
            chain = self._ancestors[self._leaf_of[node]]
            for vertex in chain:
                sizes[vertex] += node_sizes[node]
        return sizes

    # ------------------------------------------------------------------
    # Mutation (FM improvement)
    # ------------------------------------------------------------------
    def move(self, node: int, target_leaf: int) -> int:
        """Move ``node`` to ``target_leaf``; returns the previous leaf."""
        if self._vertices[target_leaf].level != 0:
            raise PartitionError(
                f"target vertex {target_leaf} is not a level-0 leaf"
            )
        previous = self.leaf_of(node)
        self._leaf_of[node] = target_leaf
        return previous

    def copy(self) -> "PartitionTree":
        """A deep copy (shared nothing)."""
        clone = PartitionTree.__new__(PartitionTree)
        clone._num_nodes = self._num_nodes
        clone._num_levels = self._num_levels
        clone._vertices = [
            _Vertex(v.vertex_id, v.level, v.parent, list(v.children))
            for v in self._vertices
        ]
        clone._root = self._root
        clone._leaf_of = list(self._leaf_of)
        clone._ancestors = {
            leaf: list(chain) for leaf, chain in self._ancestors.items()
        }
        return clone

    def render(self, node_sizes: Optional[Sequence[float]] = None) -> str:
        """ASCII rendering of the tree (Figure 1 style)."""
        sizes = (
            self.block_sizes(node_sizes) if node_sizes is not None else None
        )
        lines: List[str] = []

        def walk(vertex: int, indent: int) -> None:
            info = f"v{vertex} (level {self._vertices[vertex].level}"
            if sizes is not None:
                info += f", size {sizes[vertex]:g}"
            info += ")"
            lines.append("  " * indent + info)
            for child in self._vertices[vertex].children:
                walk(child, indent + 1)

        walk(self._root, 0)
        return "\n".join(lines)


def _uniform_depth(nested: Nested) -> int:
    """Depth of a nested structure, checking leaf-depth uniformity."""
    if all(isinstance(item, int) for item in nested):
        return 0
    if any(isinstance(item, int) for item in nested):
        raise PartitionError(
            "nested structure mixes node ids and sub-blocks at one level"
        )
    depths = {(_uniform_depth(child)) for child in nested}
    if len(depths) != 1:
        raise PartitionError(
            f"nested structure has leaves at different depths: {depths}"
        )
    return depths.pop() + 1
