"""Command-line interface: ``htp <command>``.

Commands
--------
``htp generate``   write a surrogate/synthetic netlist to an .hgr file
``htp partition``  partition a netlist (flow | gfm | rfm) and report cost
``htp exact``      solve a small instance to proven optimality
``htp lowerbound`` compute the LP lower bound of an instance
``htp table``      regenerate a paper table (1, 2 or 3)
``htp search``     sweep tree heights and report the best hierarchy
``htp separator``  compute a rho-separator of a netlist
``htp serve``      run the partitioning service (async job server + cache)
``htp route``      run the cluster router in front of N joined workers
``htp submit``     submit a netlist to a running service and await the result

Netlists are read from hMETIS ``.hgr`` files, or from ISCAS ``.bench``
files when the path ends in ``.bench``.  Unreadable or malformed input
files exit with code 2 and a one-line error.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.analysis.experiments import (
    ExperimentConfig,
    run_table1,
    run_table2,
    run_table3,
    table2_to_table,
    table3_to_table,
)
from repro.core.faults import FaultPlan, FaultPlanError
from repro.errors import ReproError
from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.parallel import ParallelConfig
from repro.core.lp import solve_spreading_lp
from repro.core.spreading_metric import SpreadingMetricConfig
from repro.htp.cost import total_cost
from repro.htp.hierarchy import binary_hierarchy
from repro.htp.validate import partition_violations
from repro.hypergraph import io as hio
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.generators import (
    ISCAS85_SIZES,
    iscas85_surrogate,
    planted_hierarchy_hypergraph,
    random_hypergraph,
    rent_hypergraph,
)
from repro.partitioning.gfm import gfm_partition
from repro.partitioning.htp_fm import htp_fm_improve
from repro.partitioning.rfm import rfm_partition


def _positive_int(value: str) -> int:
    """argparse type for strictly positive integer options."""
    try:
        parsed = int(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"{value!r} is not an integer"
        ) from exc
    if parsed < 1:
        raise argparse.ArgumentTypeError(
            f"{value!r} must be at least 1"
        )
    return parsed


def _fault_plan(value: str) -> FaultPlan:
    """argparse type for ``--fault-plan`` strings."""
    try:
        return FaultPlan.parse(value)
    except FaultPlanError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="htp",
        description=(
            "Hierarchical tree partitioning (Kuo & Cheng, DAC 1997 "
            "reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic netlist (.hgr)")
    gen.add_argument("output", help="output .hgr path")
    gen.add_argument(
        "--kind",
        choices=sorted(ISCAS85_SIZES) + ["planted", "random", "rent"],
        default="planted",
        help="'rent' builds a Rent-rule netlist of --nodes nodes — the "
        "large-instance generator behind the multilevel scaling bench",
    )
    gen.add_argument("--nodes", type=int, default=256)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument(
        "--leaf-size",
        type=int,
        default=None,
        help="rent only: nodes per bottom-level leaf region (default 32; "
        "must be at least 2)",
    )

    part = sub.add_parser("partition", help="partition a netlist")
    part.add_argument("input", help="input .hgr path")
    part.add_argument(
        "--algorithm", choices=["flow", "gfm", "rfm"], default="flow"
    )
    part.add_argument("--height", type=int, default=4)
    part.add_argument("--seed", type=int, default=0)
    part.add_argument("--iterations", type=int, default=2)
    part.add_argument(
        "--engine",
        choices=[
            "scipy",
            "scipy-serial",
            "python",
            "parallel",
            "native",
            "multilevel-flow",
        ],
        default="scipy",
        help="spreading-metric engine (flow algorithm only); all engines "
        "produce identical results for a fixed seed ('native' needs the "
        "compiled kernel and degrades to 'scipy' without it); "
        "'multilevel-flow' switches to the coarsen/solve/refine V-cycle "
        "for large netlists (see docs/multilevel.md)",
    )
    part.add_argument(
        "--coarsest-size",
        type=_positive_int,
        default=None,
        help="multilevel-flow: stop coarsening at this many nodes "
        "(default: derived from the hierarchy's leaf count)",
    )
    part.add_argument(
        "--cluster-fraction",
        type=float,
        default=0.05,
        help="multilevel-flow: cluster-size cap as a fraction of C_0 "
        "(default 0.05)",
    )
    part.add_argument(
        "--corridor-hops",
        type=_positive_int,
        default=2,
        help="multilevel-flow: BFS rings grown around each pair boundary "
        "during refinement (default 2)",
    )
    part.add_argument(
        "--refine-passes",
        type=_positive_int,
        default=3,
        help="multilevel-flow: refinement sweeps per uncoarsening level "
        "(default 3)",
    )
    part.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker processes for --engine parallel (default: cpu count)",
    )
    part.add_argument(
        "--fault-plan",
        type=_fault_plan,
        default=None,
        metavar="PLAN",
        help="deterministic fault injection for --engine parallel, e.g. "
        "'fail:task@dispatch=0;hang:task@dispatch=1,duration=2' — results "
        "are bit-identical to the fault-free run (chaos reproduction aid)",
    )
    part.add_argument(
        "--improve", action="store_true", help="run FM improvement afterwards"
    )
    part.add_argument(
        "--perf",
        action="store_true",
        help="print solver perf counters (flow algorithm only)",
    )
    part.add_argument(
        "--checkpoint-dir",
        default=None,
        help="write crash-safe round checkpoints here (flow algorithm "
        "only); a killed run restarted with --resume is bit-identical "
        "to an uninterrupted one",
    )
    part.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        default=1,
        help="checkpoint every N metric rounds (default 1)",
    )
    part.add_argument(
        "--resume",
        action="store_true",
        help="resume from the newest valid checkpoint in --checkpoint-dir",
    )
    part.add_argument(
        "--verify-optimal",
        action="store_true",
        help="after partitioning, solve the instance exactly (small "
        "instances only) and report the achieved optimality gap; "
        "prints SKIP when the instance is out of exact reach",
    )
    part.add_argument(
        "--exact-time-limit",
        type=float,
        default=30.0,
        help="time box for the --verify-optimal exact solve (default 30s)",
    )

    exact = sub.add_parser(
        "exact",
        help="solve a small instance to proven optimality (ground truth)",
    )
    exact.add_argument("input", help="input .hgr path")
    exact.add_argument("--height", type=int, default=2)
    exact.add_argument(
        "--method",
        choices=["auto", "dp", "ilp", "bnb"],
        default="auto",
        help="exact backend: tree-metric DP (tree instances), ILP (needs "
        "pulp), branch-and-bound (always available), or auto-pick",
    )
    exact.add_argument(
        "--time-limit",
        type=float,
        default=60.0,
        help="wall-clock box; expiry downgrades 'optimal' to 'feasible'",
    )

    lower = sub.add_parser("lowerbound", help="LP lower bound (small inputs)")
    lower.add_argument("input", help="input .hgr path")
    lower.add_argument("--height", type=int, default=4)
    lower.add_argument("--max-iterations", type=int, default=200)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int, choices=[1, 2, 3])
    table.add_argument("--scale", type=float, default=1.0)
    table.add_argument("--seed", type=int, default=0)

    search = sub.add_parser("search", help="sweep candidate hierarchies")
    search.add_argument("input", help="input netlist path")
    search.add_argument("--heights", type=int, nargs="+", default=[2, 3, 4])
    search.add_argument(
        "--algorithm", choices=["rfm", "flow"], default="rfm"
    )
    search.add_argument("--seed", type=int, default=0)
    search.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="evaluate candidate hierarchies in worker processes",
    )

    separator = sub.add_parser("separator", help="compute a rho-separator")
    separator.add_argument("input", help="input netlist path")
    separator.add_argument("--rho", type=float, default=0.25)
    separator.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", help="run the partitioning service (HTTP job server)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port (default 8947; 0 binds an ephemeral port, printed "
        "on startup)",
    )
    serve.add_argument(
        "--max-concurrency",
        type=_positive_int,
        default=2,
        help="jobs solved simultaneously",
    )
    serve.add_argument(
        "--cache-capacity",
        type=_positive_int,
        default=128,
        help="in-memory result-cache entries (LRU beyond this)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="directory for durable result blobs (default: memory only)",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="per-job wall-clock budget in seconds (default: the "
        "FaultTolerance task deadline, 120s)",
    )
    serve.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help="write-ahead job journal directory; a restarted server "
        "replays it (done jobs served from the cache, queued jobs "
        "requeued, running jobs resumed from their checkpoints)",
    )
    serve.add_argument(
        "--fsync",
        choices=["always", "batch", "never"],
        default="always",
        help="journal fsync policy (default always: every accepted job "
        "survives a crash)",
    )
    serve.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="solver checkpoint root; running jobs checkpoint under "
        "DIR/<spec_hash>/ and resume from there after a crash",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        default=1,
        help="solver checkpoint cadence in metric rounds (default 1)",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=_positive_int,
        default=None,
        help="admission control: reject submissions beyond this many "
        "queued jobs with HTTP 429 + Retry-After (default: unbounded)",
    )
    serve.add_argument(
        "--join",
        default=None,
        metavar="URL",
        help="register this worker with a cluster router (htp route) and "
        "heartbeat until shutdown; placement needs a shared "
        "--checkpoint-dir across workers for bit-identical failover",
    )
    serve.add_argument(
        "--worker-id",
        default=None,
        help="stable cluster identity (default: a fresh worker-<hex>); "
        "requires --join",
    )
    serve.add_argument(
        "--weight",
        type=float,
        default=1.0,
        help="declared capacity weight for cluster placement (default 1.0); "
        "requires --join",
    )
    serve.add_argument(
        "--advertise-url",
        default=None,
        metavar="URL",
        help="base URL the router should reach this worker at (default: "
        "the bound host:port); requires --join",
    )

    route_cmd = sub.add_parser(
        "route",
        help="run the cluster router (consistent-hash job placement over "
        "joined workers)",
    )
    route_cmd.add_argument("--host", default="127.0.0.1")
    route_cmd.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port (default 8948; 0 binds an ephemeral port, printed "
        "on startup)",
    )
    route_cmd.add_argument(
        "--policy",
        choices=["hash", "capacity"],
        default="hash",
        help="placement policy: 'hash' keeps a spec pinned to its "
        "consistent-hash owner (cache/checkpoint locality); 'capacity' "
        "greedily bin-packs by worker weight and live load",
    )
    route_cmd.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help="write-ahead placement journal; a restarted router replays "
        "it and re-places the dead run's in-flight jobs",
    )
    route_cmd.add_argument(
        "--cache-capacity",
        type=_positive_int,
        default=256,
        help="router-side in-memory result LRU entries (default 256)",
    )
    route_cmd.add_argument(
        "--heartbeat-interval",
        type=float,
        default=2.0,
        help="seconds between expected worker heartbeats (announced to "
        "joining workers; default 2.0)",
    )
    route_cmd.add_argument(
        "--max-missed",
        type=_positive_int,
        default=3,
        help="missed heartbeat periods before a worker is probed "
        "(default 3)",
    )
    route_cmd.add_argument(
        "--probe-retries",
        type=_positive_int,
        default=2,
        help="failed probes before a suspect worker is declared dead and "
        "its jobs reroute (default 2)",
    )
    route_cmd.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="result/checkpoint replica copies beyond the owning worker "
        "(0 disables replication; default 1)",
    )
    route_cmd.add_argument(
        "--standby",
        default=None,
        metavar="URL",
        help="run as a warm standby: tail URL's placement journal over "
        "/wal and take over (with a bumped fencing epoch) when the "
        "primary stops answering; requires --journal",
    )
    route_cmd.add_argument(
        "--epoch-timeout",
        type=float,
        default=None,
        help="seconds of failed /wal polls before a standby takes over "
        "(default heartbeat-interval * max-missed)",
    )

    submit = sub.add_parser(
        "submit", help="submit a netlist to a running service"
    )
    submit.add_argument("input", help="input netlist path")
    submit.add_argument(
        "--url",
        default=None,
        help="service base URL (default http://127.0.0.1:8947)",
    )
    submit.add_argument(
        "--router",
        default=None,
        metavar="URL",
        help="cluster router base URL (e.g. http://127.0.0.1:8948); the "
        "router speaks the same job dialect as a worker, so polling and "
        "results work unchanged; mutually exclusive with --url",
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="fail immediately on HTTP 429 instead of honouring the "
        "server's Retry-After estimate with a bounded retry loop",
    )
    submit.add_argument(
        "--max-retry-wait",
        type=float,
        default=None,
        metavar="SECONDS",
        help="total seconds the 429 retry loop may spend sleeping before "
        "giving up (default: unbounded within the attempt limit); the "
        "last sleep is clipped to the remaining budget",
    )
    submit.add_argument("--height", type=int, default=4)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--iterations", type=_positive_int, default=2)
    submit.add_argument(
        "--engine",
        choices=[
            "scipy",
            "scipy-serial",
            "python",
            "parallel",
            "native",
            "multilevel-flow",
        ],
        default="scipy",
    )
    submit.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker processes for --engine parallel",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="seconds to wait for the job before giving up",
    )
    submit.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="server-side deadline in seconds: the solver aborts cleanly "
        "(final checkpoint on disk) once it expires",
    )
    submit.add_argument(
        "--perf",
        action="store_true",
        help="print the service's merged perf counters after the result",
    )

    return parser


def _load_netlist(path: str):
    """Read a netlist by extension (.bench or hMETIS .hgr).

    Unreadable or malformed files raise OSError / :class:`ReproError`;
    commands go through :func:`_load_netlist_checked` so those surface
    as exit code 2 with a one-line error, not a traceback.
    """
    if str(path).endswith(".bench"):
        from repro.hypergraph.bench_format import read_bench

        return read_bench(path)
    return hio.read_hgr(path)


def _load_netlist_checked(path: str):
    """The netlist, or None after printing a one-line error to stderr."""
    try:
        return _load_netlist(path)
    except (OSError, ValueError, ReproError) as exc:
        print(f"error: cannot read netlist {path!r}: {exc}", file=sys.stderr)
        return None


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "partition":
        return _cmd_partition(args)
    if args.command == "exact":
        return _cmd_exact(args)
    if args.command == "lowerbound":
        return _cmd_lowerbound(args)
    if args.command == "table":
        return _cmd_table(args)
    if args.command == "search":
        return _cmd_search(args)
    if args.command == "separator":
        return _cmd_separator(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "route":
        return _cmd_route(args)
    if args.command == "submit":
        return _cmd_submit(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.leaf_size is not None and args.kind != "rent":
        print(
            "error: --leaf-size only applies to --kind rent",
            file=sys.stderr,
        )
        return 2
    try:
        if args.kind in ISCAS85_SIZES:
            netlist = iscas85_surrogate(
                args.kind, seed=args.seed, scale=args.scale
            )
        elif args.kind == "planted":
            netlist = planted_hierarchy_hypergraph(args.nodes, seed=args.seed)
        elif args.kind == "rent":
            rent_kwargs = {}
            if args.leaf_size is not None:
                rent_kwargs["leaf_size"] = args.leaf_size
            netlist = rent_hypergraph(
                args.nodes, seed=args.seed, **rent_kwargs
            )
        else:
            netlist = random_hypergraph(
                args.nodes, round(args.nodes * 1.2), seed=args.seed
            )
    except ReproError as exc:
        print(f"error: cannot generate netlist: {exc}", file=sys.stderr)
        return 2
    hio.write_hgr(netlist, args.output)
    print(
        f"wrote {netlist.num_nodes} nodes / {netlist.num_nets} nets / "
        f"{netlist.num_pins} pins to {args.output}"
    )
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    if args.fault_plan is not None and args.engine != "parallel":
        print(
            "error: --fault-plan requires --engine parallel",
            file=sys.stderr,
        )
        return 2
    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.checkpoint_dir is not None and args.algorithm != "flow":
        print(
            "error: --checkpoint-dir requires --algorithm flow",
            file=sys.stderr,
        )
        return 2
    netlist = _load_netlist_checked(args.input)
    if netlist is None:
        return 2
    spec = binary_hierarchy(netlist.total_size(), height=args.height)
    if args.algorithm == "flow" and args.engine == "multilevel-flow":
        if args.checkpoint_dir is not None:
            print(
                "error: --checkpoint-dir is not supported with "
                "--engine multilevel-flow",
                file=sys.stderr,
            )
            return 2
        from repro.partitioning.multilevel_flow import (
            MultilevelFlowConfig,
            multilevel_flow_htp,
        )

        config = MultilevelFlowConfig(
            coarsest_size=args.coarsest_size,
            cluster_fraction=args.cluster_fraction,
            corridor_hops=args.corridor_hops,
            refine_passes=args.refine_passes,
            engine="parallel" if args.workers else "scipy",
            workers=args.workers,
            seed=args.seed,
        )
        result = multilevel_flow_htp(netlist, spec, config)
        tree, cost = result.partition, result.cost
        print(
            f"multilevel-FLOW cost: {cost:g}  "
            f"({result.runtime_seconds:.1f}s)"
        )
        if args.perf and result.perf is not None:
            print(f"perf: {result.perf.summary()}")
    elif args.algorithm == "flow":
        parallel = None
        if args.engine == "parallel":
            parallel = ParallelConfig(
                workers=args.workers, fault_plan=args.fault_plan
            )
        config = FlowHTPConfig(
            iterations=args.iterations,
            seed=args.seed,
            metric=SpreadingMetricConfig(
                delta=0.05, max_rounds=200, engine=args.engine
            ),
            parallel=parallel,
        )
        result = flow_htp(
            netlist,
            spec,
            config,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            resume_from=(args.checkpoint_dir if args.resume else None),
        )
        tree, cost = result.partition, result.cost
        print(f"FLOW cost: {cost:g}  ({result.runtime_seconds:.1f}s)")
        if args.fault_plan is not None:
            print(f"fault plan: {args.fault_plan.describe()}")
        if args.perf and result.perf is not None:
            print(f"perf: {result.perf.summary()}")
    elif args.algorithm == "gfm":
        tree = gfm_partition(netlist, spec, rng=random.Random(args.seed))
        cost = total_cost(netlist, tree, spec)
        print(f"GFM cost: {cost:g}")
    else:
        tree = rfm_partition(netlist, spec, rng=random.Random(args.seed))
        cost = total_cost(netlist, tree, spec)
        print(f"RFM cost: {cost:g}")
    problems = partition_violations(netlist, tree, spec)
    if problems:
        print("WARNING: constraint violations:")
        for problem in problems:
            print(" ", problem)
    if args.improve:
        improved = htp_fm_improve(netlist, tree, spec)
        print(
            f"after FM improvement: {improved.final_cost:g} "
            f"({improved.improvement:.1%} better)"
        )
        tree, cost = improved.partition, improved.final_cost
    if args.verify_optimal:
        _verify_optimal(netlist, tree, cost, spec, args.exact_time_limit)
    return 0


def _verify_optimal(netlist, tree, cost, spec, time_limit: float) -> None:
    """Report the achieved optimality gap against an exact solve.

    Informational: prints the gap, an inconclusive note (time box hit)
    or a SKIP (instance out of exact reach) — never changes the exit
    code, since the partition itself was already produced.
    """
    from repro.analysis.exact import (
        ExactBackendUnavailable,
        ExactIntractable,
        solve_exact,
    )

    try:
        exact = solve_exact(
            netlist, spec, method="auto", time_limit=time_limit, incumbent=tree
        )
    except (ExactIntractable, ExactBackendUnavailable) as exc:
        print(f"verify-optimal: SKIP ({exc})")
        return
    if exact.is_optimal:
        gap = exact.gap(cost)
        print(
            f"verify-optimal: optimum {exact.cost:g} via {exact.solver}, "
            f"achieved {cost:g} (gap {gap:.3f}x)"
        )
    else:
        print(
            f"verify-optimal: inconclusive ({exact.solver} status "
            f"{exact.status} after {exact.runtime_seconds:.1f}s)"
        )


def _cmd_exact(args: argparse.Namespace) -> int:
    from repro.analysis.exact import (
        ExactBackendUnavailable,
        ExactIntractable,
        NotTreeStructured,
        solve_exact,
    )

    netlist = _load_netlist_checked(args.input)
    if netlist is None:
        return 2
    try:
        spec = binary_hierarchy(netlist.total_size(), height=args.height)
        result = solve_exact(
            netlist, spec, method=args.method, time_limit=args.time_limit
        )
    except (
        ExactIntractable,
        ExactBackendUnavailable,
        NotTreeStructured,
        ReproError,
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if result.cost is None:
        print(f"exact: {result.status} via {result.solver} "
              f"({result.runtime_seconds:.1f}s)")
        return 1
    label = "optimal cost" if result.is_optimal else "best feasible cost"
    print(
        f"exact: {label} {result.cost:g} via {result.solver} "
        f"({result.runtime_seconds:.1f}s)"
    )
    return 0


def _cmd_lowerbound(args: argparse.Namespace) -> int:
    netlist = _load_netlist_checked(args.input)
    if netlist is None:
        return 2
    spec = binary_hierarchy(netlist.total_size(), height=args.height)
    graph = to_graph(netlist)
    result = solve_spreading_lp(
        graph, spec, max_iterations=args.max_iterations
    )
    print(
        f"LP lower bound: {result.lower_bound:.3f} "
        f"(iterations={result.iterations}, "
        f"constraints={result.num_constraints}, "
        f"converged={result.converged})"
    )
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.htp.hierarchy_search import search_hierarchies

    netlist = _load_netlist_checked(args.input)
    if netlist is None:
        return 2
    parallel = (
        ParallelConfig(workers=args.workers)
        if args.workers is not None
        else None
    )
    candidates = search_hierarchies(
        netlist,
        heights=tuple(args.heights),
        algorithm=args.algorithm,
        seed=args.seed,
        parallel=parallel,
    )
    for candidate in candidates:
        flag = "" if candidate.valid else "  (INVALID)"
        print(
            f"height {candidate.height}: cost {candidate.cost:g} "
            f"({candidate.seconds:.2f}s){flag}"
        )
    if candidates:
        best = min(
            (c for c in candidates if c.valid),
            key=lambda c: c.cost,
            default=None,
        )
        if best is not None:
            print(f"best: height {best.height} with cost {best.cost:g}")
    return 0


def _cmd_separator(args: argparse.Namespace) -> int:
    from repro.core.separator import rho_separator

    netlist = _load_netlist_checked(args.input)
    if netlist is None:
        return 2
    result = rho_separator(
        netlist, rho=args.rho, rng=random.Random(args.seed)
    )
    sizes = sorted(
        (round(netlist.total_size(piece), 3) for piece in result.pieces),
        reverse=True,
    )
    print(
        f"rho = {args.rho}: {len(result.pieces)} pieces, cut capacity "
        f"{result.cut_capacity:g}"
    )
    print(f"piece sizes: {sizes}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.cache import ResultCache
    from repro.service.journal import Journal
    from repro.service.server import DEFAULT_PORT, serve

    port = args.port if args.port is not None else DEFAULT_PORT
    manager_kwargs = {
        "max_concurrency": args.max_concurrency,
        "cache": ResultCache(
            capacity=args.cache_capacity, cache_dir=args.cache_dir
        ),
        "job_timeout": args.job_timeout,
        "checkpoint_root": args.checkpoint_dir,
        "checkpoint_every": args.checkpoint_every,
        "max_queue_depth": args.max_queue_depth,
    }
    if args.journal is not None:
        manager_kwargs["journal"] = Journal(args.journal, fsync=args.fsync)
    join_kwargs = None
    if args.join is not None:
        join_kwargs = {"router_url": args.join, "weight": args.weight}
        if args.worker_id is not None:
            join_kwargs["worker_id"] = args.worker_id
        if args.advertise_url is not None:
            join_kwargs["advertise_url"] = args.advertise_url
    elif args.worker_id is not None or args.advertise_url is not None:
        print(
            "error: --worker-id/--advertise-url require --join",
            file=sys.stderr,
        )
        return 2
    return serve(
        host=args.host,
        port=port,
        manager_kwargs=manager_kwargs,
        join_kwargs=join_kwargs,
    )


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.service.cluster.router import DEFAULT_ROUTER_PORT, route

    port = args.port if args.port is not None else DEFAULT_ROUTER_PORT
    if args.standby is not None and args.journal is None:
        print(
            "error: --standby needs --journal (the tailed WAL must land "
            "somewhere durable)",
            file=sys.stderr,
        )
        return 2
    router_kwargs = {
        "policy": args.policy,
        "journal_dir": args.journal,
        "cache_capacity": args.cache_capacity,
        "heartbeat_interval": args.heartbeat_interval,
        "max_missed": args.max_missed,
        "probe_retries": args.probe_retries,
        "replicas": args.replicas,
    }
    return route(
        host=args.host,
        port=port,
        router_kwargs=router_kwargs,
        standby_of=args.standby,
        epoch_timeout=args.epoch_timeout,
    )


#: Bounded 429 retry budget of ``htp submit`` (without ``--no-wait``).
SUBMIT_RETRY_LIMIT = 5


def _submit_with_retry(
    client,
    spec,
    deadline: Optional[float],
    wait: bool = True,
    limit: int = SUBMIT_RETRY_LIMIT,
    max_wait: Optional[float] = None,
    announce=print,
    sleep=None,
):
    """Submit, honouring 429 Retry-After with a bounded retry loop.

    A loaded service (or a router whose chosen worker is saturated)
    answers 429 with its backlog-derived ``Retry-After`` estimate — a
    float, so sub-second hints are honoured as-is, not rounded.  The
    client sleeps that long and resubmits, at most ``limit`` times and
    (with ``max_wait``) at most that many *total* seconds asleep; a
    hint that overshoots the remaining budget is clipped to it, and a
    429 arriving with the budget exhausted re-raises.  ``wait=False``
    (``htp submit --no-wait``) re-raises immediately.  Any non-429
    failure re-raises untouched.
    """
    import time as _time

    from repro.service.client import ServiceClientError

    sleep = sleep if sleep is not None else _time.sleep
    attempt = 0
    slept = 0.0
    while True:
        try:
            return client.submit_spec(spec, deadline=deadline)
        except ServiceClientError as exc:
            if exc.status != 429 or not wait:
                raise
            attempt += 1
            if attempt > limit:
                raise
            hint = exc.retry_after if exc.retry_after is not None else 1.0
            if max_wait is not None:
                remaining = max_wait - slept
                if remaining <= 0:
                    raise
                hint = min(hint, remaining)
            announce(
                f"service busy: retrying in {hint:g}s "
                f"(attempt {attempt}/{limit}, server estimate)"
            )
            sleep(hint)
            slept += hint


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceClientError
    from repro.service.jobs import JobSpec, JobState
    from repro.service.server import DEFAULT_PORT

    if args.url is not None and args.router is not None:
        print("error: pass --url or --router, not both", file=sys.stderr)
        return 2
    netlist = _load_netlist_checked(args.input)
    if netlist is None:
        return 2
    url = args.router or args.url or f"http://127.0.0.1:{DEFAULT_PORT}"
    spec = JobSpec.from_parts(
        netlist,
        binary_hierarchy(netlist.total_size(), height=args.height),
        {
            "iterations": args.iterations,
            "seed": args.seed,
            "engine": args.engine,
            "workers": args.workers,
        },
    )
    client = ServiceClient(url)
    try:
        submitted = _submit_with_retry(
            client,
            spec,
            args.deadline,
            wait=not args.no_wait,
            max_wait=args.max_retry_wait,
        )
        status = client.wait(str(submitted["job_id"]), timeout=args.timeout)
        if status["state"] != JobState.DONE.value:
            print(
                f"error: job {status['job_id']} ended {status['state']}: "
                f"{status.get('error', 'no detail')}",
                file=sys.stderr,
            )
            return 1
        payload = client.result(str(status["job_id"]))
    except ServiceClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2 if exc.status == 0 else 1
    result = payload["result"]
    warmth = "warm (cache hit)" if status.get("cached") else "cold"
    placed = (
        f", worker {status['worker']}" if status.get("worker") else ""
    )
    print(
        f"FLOW cost: {result['cost']:g}  "
        f"({result['runtime_seconds']:.1f}s solver, {warmth}, "
        f"job {status['job_id']}{placed})"
    )
    if args.perf:
        from repro.core.perf import PerfCounters

        counters = client.metricsz()["perf"]
        print(f"perf: {PerfCounters.from_dict(counters).summary()}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    config = ExperimentConfig(scale=args.scale, seed=args.seed)
    if args.number == 1:
        print(run_table1(config).render())
    elif args.number == 2:
        print(table2_to_table(run_table2(config)).render())
    else:
        print(table3_to_table(run_table3(config)).render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
