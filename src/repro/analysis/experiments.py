"""Drivers that regenerate the paper's experiments (Tables 1-3).

Every experiment uses the same setup as the paper: full binary tree of
height 4 (``K_l = 2``, five levels), per-circuit capacities derived from
the circuit size, unit weights, on the five ISCAS85 surrogate circuits.
``scale`` shrinks the instances proportionally for smoke runs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import Table
from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.spreading_metric import SpreadingMetricConfig
from repro.htp.cost import total_cost
from repro.htp.hierarchy import HierarchySpec, binary_hierarchy
from repro.htp.validate import check_partition
from repro.hypergraph.generators import ISCAS85_SIZES, iscas85_surrogate
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.metrics import netlist_stats
from repro.partitioning.fm import FMConfig
from repro.partitioning.gfm import gfm_partition
from repro.partitioning.htp_fm import HTPFMConfig, htp_fm_improve
from repro.partitioning.rfm import rfm_partition

#: The circuits of Table 1, in paper order.
CIRCUITS = ("c1355", "c2670", "c3540", "c6288", "c7552")


@dataclass
class ExperimentConfig:
    """Shared experiment parameters.

    ``scale`` < 1 shrinks the surrogate circuits; ``height`` is the tree
    height (the paper uses 4); ``seed`` drives all randomness.
    """

    scale: float = 1.0
    height: int = 4
    slack: float = 0.10
    seed: int = 0
    circuits: Sequence[str] = CIRCUITS
    flow: Optional[FlowHTPConfig] = None
    fm: Optional[FMConfig] = None
    improve: Optional[HTPFMConfig] = None

    def flow_config(self) -> FlowHTPConfig:
        """The FLOW configuration (default tuned for the surrogates)."""
        if self.flow is not None:
            return self.flow
        return FlowHTPConfig(
            iterations=3,
            constructions_per_metric=8,
            find_cut_restarts=3,
            metric=SpreadingMetricConfig(
                alpha=0.3, delta=0.03, epsilon=0.1, max_rounds=1000
            ),
            seed=self.seed,
        )

    def load(self, circuit: str) -> Hypergraph:
        """The surrogate netlist for ``circuit``."""
        return iscas85_surrogate(circuit, seed=self.seed, scale=self.scale)

    def spec_for(self, hypergraph: Hypergraph) -> HierarchySpec:
        """The binary hierarchy spec for a netlist."""
        return binary_hierarchy(
            hypergraph.total_size(), height=self.height, slack=self.slack
        )


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def run_table1(config: Optional[ExperimentConfig] = None) -> Table:
    """Table 1: sizes of the (surrogate) ISCAS85 test cases."""
    config = config or ExperimentConfig()
    table = Table(
        title="TABLE 1 - THE SIZES OF THE ISCAS85 TEST CASES (surrogates)",
        headers=[
            "circuit",
            "#nodes",
            "#nets",
            "#pins",
            "paper #nodes",
            "paper #nets",
            "paper #pins",
        ],
    )
    for circuit in config.circuits:
        stats = netlist_stats(config.load(circuit))
        paper_nodes, paper_nets, paper_pins = ISCAS85_SIZES[circuit]
        table.add_row(
            circuit,
            stats.num_nodes,
            stats.num_nets,
            stats.num_pins,
            paper_nodes,
            paper_nets,
            paper_pins,
        )
    return table


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------
@dataclass
class Table2Row:
    """One circuit's constructive results (costs + FLOW CPU seconds)."""

    circuit: str
    gfm_cost: float
    rfm_cost: float
    flow_cost: float
    gfm_seconds: float
    rfm_seconds: float
    flow_seconds: float


def run_table2(
    config: Optional[ExperimentConfig] = None,
    collect_partitions: Optional[Dict] = None,
) -> List[Table2Row]:
    """Table 2: GFM vs RFM vs FLOW constructive costs.

    ``collect_partitions``, when given a dict, receives
    ``(circuit, algorithm) -> (hypergraph, spec, partition)`` so Table 3
    can improve the same partitions.
    """
    config = config or ExperimentConfig()
    rows: List[Table2Row] = []
    for circuit in config.circuits:
        hypergraph = config.load(circuit)
        spec = config.spec_for(hypergraph)

        start = time.perf_counter()
        gfm_tree = gfm_partition(
            hypergraph, spec, rng=random.Random(config.seed), fm_config=config.fm
        )
        gfm_seconds = time.perf_counter() - start
        check_partition(hypergraph, gfm_tree, spec)

        start = time.perf_counter()
        rfm_tree = rfm_partition(
            hypergraph, spec, rng=random.Random(config.seed), fm_config=config.fm
        )
        rfm_seconds = time.perf_counter() - start
        check_partition(hypergraph, rfm_tree, spec)

        flow_result = flow_htp(hypergraph, spec, config.flow_config())
        check_partition(hypergraph, flow_result.partition, spec)

        rows.append(
            Table2Row(
                circuit=circuit,
                gfm_cost=total_cost(hypergraph, gfm_tree, spec),
                rfm_cost=total_cost(hypergraph, rfm_tree, spec),
                flow_cost=flow_result.cost,
                gfm_seconds=gfm_seconds,
                rfm_seconds=rfm_seconds,
                flow_seconds=flow_result.runtime_seconds,
            )
        )
        if collect_partitions is not None:
            collect_partitions[(circuit, "GFM")] = (hypergraph, spec, gfm_tree)
            collect_partitions[(circuit, "RFM")] = (hypergraph, spec, rfm_tree)
            collect_partitions[(circuit, "FLOW")] = (
                hypergraph,
                spec,
                flow_result.partition,
            )
    return rows


def table2_to_table(rows: Sequence[Table2Row]) -> Table:
    """Render Table 2 rows in the paper's layout."""
    table = Table(
        title="TABLE 2 - PARTITIONING RESULTS OF THREE ALGORITHMS",
        headers=[
            "circuit",
            "GFM cost",
            "RFM cost",
            "FLOW cost",
            "FLOW CPU (s)",
        ],
    )
    for row in rows:
        table.add_row(
            row.circuit,
            row.gfm_cost,
            row.rfm_cost,
            row.flow_cost,
            round(row.flow_seconds, 1),
        )
    return table


# ----------------------------------------------------------------------
# Table 3
# ----------------------------------------------------------------------
@dataclass
class Table3Row:
    """One circuit's FM-improved results (the '+' algorithms)."""

    circuit: str
    gfm_plus_cost: float
    gfm_improvement: float
    rfm_plus_cost: float
    rfm_improvement: float
    flow_plus_cost: float
    flow_improvement: float


def run_table3(
    config: Optional[ExperimentConfig] = None,
    partitions: Optional[Dict] = None,
) -> List[Table3Row]:
    """Table 3: GFM+/RFM+/FLOW+ — FM improvement on Table 2's partitions.

    ``partitions`` may carry the dict filled by :func:`run_table2`; when
    absent, Table 2 is re-run internally.
    """
    config = config or ExperimentConfig()
    if partitions is None:
        partitions = {}
        run_table2(config, collect_partitions=partitions)
    improve_config = config.improve or HTPFMConfig(seed=config.seed)

    rows: List[Table3Row] = []
    for circuit in config.circuits:
        improved = {}
        for algorithm in ("GFM", "RFM", "FLOW"):
            hypergraph, spec, tree = partitions[(circuit, algorithm)]
            result = htp_fm_improve(hypergraph, tree, spec, improve_config)
            check_partition(hypergraph, result.partition, spec)
            improved[algorithm] = result
        rows.append(
            Table3Row(
                circuit=circuit,
                gfm_plus_cost=improved["GFM"].final_cost,
                gfm_improvement=improved["GFM"].improvement,
                rfm_plus_cost=improved["RFM"].final_cost,
                rfm_improvement=improved["RFM"].improvement,
                flow_plus_cost=improved["FLOW"].final_cost,
                flow_improvement=improved["FLOW"].improvement,
            )
        )
    return rows


def table3_to_table(rows: Sequence[Table3Row]) -> Table:
    """Render Table 3 rows in the paper's layout."""
    table = Table(
        title=(
            "TABLE 3 - PARTITIONING RESULTS OF THREE ALGORITHMS COMBINED "
            "WITH ITERATIVE IMPROVEMENT"
        ),
        headers=[
            "circuit",
            "GFM+ cost",
            "GFM+ improv.",
            "RFM+ cost",
            "RFM+ improv.",
            "FLOW+ cost",
            "FLOW+ improv.",
        ],
    )
    for row in rows:
        table.add_row(
            row.circuit,
            row.gfm_plus_cost,
            f"{row.gfm_improvement:.1%}",
            row.rfm_plus_cost,
            f"{row.rfm_improvement:.1%}",
            row.flow_plus_cost,
            f"{row.flow_improvement:.1%}",
        )
    return table
