"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

Cell = Union[str, int, float]


@dataclass
class Table:
    """A simple column-aligned table with a title."""

    title: str
    headers: List[str]
    rows: List[List[Cell]] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        """Append a row (must match the header count)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        """The table as aligned plain text."""
        return format_table(self.title, self.headers, self.rows)


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell - round(cell)) < 1e-9 and abs(cell) < 1e15:
            return str(int(round(cell)))
        return f"{cell:.2f}"
    return str(cell)


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[Cell]]
) -> str:
    """Render a title, header row, separator, and aligned data rows."""
    text_rows = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

    parts = [title, line(list(headers)), line(["-" * w for w in widths])]
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)
