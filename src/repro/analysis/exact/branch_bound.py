"""Exact branch-and-bound over template-leaf assignments.

The always-available general-purpose reference oracle: unlike the ILP
it needs no external solver, unlike the tree DP it accepts any
hypergraph.  It enumerates node-to-leaf assignments of the complete
template hierarchy (see :mod:`repro.analysis.exact.oracle`) with three
exact prunings:

* **capacity** — a node only enters a leaf slot if every block on the
  slot's ancestor chain stays within its level capacity;
* **bound** — the Equation-(1) cost of a partial assignment is a valid
  lower bound on any completion (a net's level spans only grow as pins
  are assigned), so branches at or above the incumbent are cut;
* **symmetry** — sibling subtrees of the template are interchangeable
  (same shape, same capacities), so a node may open an empty block only
  if it is the *first* empty child of its parent.  This canonical form
  keeps exactly one representative per orbit of the template's
  automorphism group, which divides the search space by
  ``prod K_l!``-ish factors without losing any distinct partition.

Children are explored cheapest-delta-first so good incumbents arrive
early; an optional warm-start partition seeds the incumbent bound.  The
search is time-boxed and anytime: on expiry it reports the incumbent as
``feasible`` instead of ``optimal``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.analysis.exact.oracle import (
    STATUS_FEASIBLE,
    STATUS_INFEASIBLE,
    STATUS_OPTIMAL,
    STATUS_TIMEOUT,
    DEFAULT_MAX_LEAVES,
    ExactOracle,
    ExactResult,
    assignment_to_partition,
    build_template,
)
from repro.htp.cost import total_cost
from repro.htp.hierarchy import HierarchySpec
from repro.htp.validate import partition_violations
from repro.hypergraph.hypergraph import Hypergraph

#: How often (in node expansions) the deadline is polled.
_TIME_CHECK_MASK = 0xFF


def _branch_order(hypergraph: Hypergraph) -> List[int]:
    """Netlist nodes in a connectivity-aware DFS order.

    Starting from the heaviest/highest-degree node and walking the net
    structure keeps each net's pins close together in the branching
    sequence, so partial costs (the pruning bound) tighten as early as
    possible.  Disconnected components are appended by the same key.
    """
    degree = [len(hypergraph.incident_nets(v)) for v in hypergraph.nodes()]

    def key(v: int) -> Tuple[float, int, int]:
        return (-hypergraph.node_size(v), -degree[v], v)

    order: List[int] = []
    seen = [False] * hypergraph.num_nodes
    for start in sorted(hypergraph.nodes(), key=key):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        while stack:
            v = stack.pop()
            order.append(v)
            neighbors: set = set()
            for net_id in hypergraph.incident_nets(v):
                neighbors.update(hypergraph.nets()[net_id])
            for u in sorted(neighbors, key=key, reverse=True):
                if not seen[u]:
                    seen[u] = True
                    stack.append(u)
    return order


class BranchBoundOracle(ExactOracle):
    """Time-boxed exact DFS over canonical template assignments."""

    name = "branch-bound"

    def __init__(
        self,
        max_leaves: int = DEFAULT_MAX_LEAVES,
        incumbent=None,
    ) -> None:
        self.max_leaves = max_leaves
        self.incumbent = incumbent

    def solve(
        self,
        hypergraph: Hypergraph,
        spec: HierarchySpec,
        time_limit: float = 60.0,
    ) -> ExactResult:
        start = time.perf_counter()
        deadline = start + time_limit
        reason = self.trivially_infeasible(hypergraph, spec)
        if reason is not None:
            return ExactResult(
                status=STATUS_INFEASIBLE,
                cost=None,
                partition=None,
                solver=self.name,
                runtime_seconds=time.perf_counter() - start,
                stats={"infeasible_reason": reason},
            )
        template = build_template(spec, self.max_leaves)
        num_levels = spec.num_levels
        weights = [spec.weight(level) for level in range(num_levels)]
        nets = hypergraph.nets()
        net_caps = [hypergraph.net_capacity(e) for e in range(len(nets))]
        order = _branch_order(hypergraph)
        num_slots = template.num_leaves
        chains = template.chains
        parents = template.parents
        children = template.children
        capacities = template.capacities

        # Mutable search state ------------------------------------------------
        # blocks[e][l]: template vertex -> pin count among assigned pins.
        blocks: List[List[Dict[int, int]]] = [
            [dict() for _ in range(num_levels)] for _ in nets
        ]
        load = [0.0] * template.num_vertices  # size assigned under vertex
        occupied = [0] * template.num_vertices  # node count under vertex
        assignment = [-1] * hypergraph.num_nodes
        incident = [
            tuple(hypergraph.incident_nets(v)) for v in hypergraph.nodes()
        ]

        best_cost = float("inf")
        best_assignment: Optional[List[int]] = None
        best_partition = None
        if self.incumbent is not None and not partition_violations(
            hypergraph, self.incumbent, spec
        ):
            best_partition = self.incumbent
            best_cost = total_cost(hypergraph, self.incumbent, spec)

        stats = {
            "expansions": 0,
            "pruned_bound": 0,
            "pruned_capacity": 0,
            "pruned_symmetry": 0,
        }
        timed_out = False

        def slot_delta(v: int, slot: int) -> float:
            delta = 0.0
            chain = chains[slot]
            for net_id in incident[v]:
                cap = net_caps[net_id]
                per_level = blocks[net_id]
                for level in range(num_levels):
                    counts = per_level[level]
                    if chain[level] not in counts:
                        distinct = len(counts)
                        if distinct == 1:
                            delta += 2.0 * weights[level] * cap
                        elif distinct >= 2:
                            delta += weights[level] * cap
            return delta

        def apply(v: int, slot: int) -> None:
            size = hypergraph.node_size(v)
            chain = chains[slot]
            for vertex in chain:
                load[vertex] += size
                occupied[vertex] += 1
            for net_id in incident[v]:
                per_level = blocks[net_id]
                for level in range(num_levels):
                    counts = per_level[level]
                    counts[chain[level]] = counts.get(chain[level], 0) + 1
            assignment[v] = slot

        def unapply(v: int, slot: int) -> None:
            size = hypergraph.node_size(v)
            chain = chains[slot]
            for vertex in chain:
                load[vertex] -= size
                occupied[vertex] -= 1
            for net_id in incident[v]:
                per_level = blocks[net_id]
                for level in range(num_levels):
                    counts = per_level[level]
                    counts[chain[level]] -= 1
                    if counts[chain[level]] == 0:
                        del counts[chain[level]]
            assignment[v] = -1

        def slot_feasible(v: int, slot: int) -> bool:
            size = hypergraph.node_size(v)
            chain = chains[slot]
            for vertex in chain:
                if load[vertex] + size > capacities[vertex] + 1e-9:
                    stats["pruned_capacity"] += 1
                    return False
            # Canonical form: walk the chain top-down (root excluded);
            # an empty block may only be entered when it is the first
            # empty child of its parent.
            for vertex in chain[-2::-1]:
                if occupied[vertex] == 0:
                    for sibling in children[parents[vertex]]:
                        if occupied[sibling] == 0:
                            if sibling != vertex:
                                stats["pruned_symmetry"] += 1
                                return False
                            break
            return True

        def search(depth: int, partial: float) -> None:
            nonlocal best_cost, best_assignment, best_partition, timed_out
            if timed_out:
                return
            stats["expansions"] += 1
            if (stats["expansions"] & _TIME_CHECK_MASK) == 0:
                if time.perf_counter() > deadline:
                    timed_out = True
                    return
            if depth == len(order):
                if partial < best_cost:
                    best_cost = partial
                    best_assignment = list(assignment)
                    best_partition = None
                return
            v = order[depth]
            candidates: List[Tuple[float, int]] = []
            for slot in range(num_slots):
                if not slot_feasible(v, slot):
                    continue
                delta = slot_delta(v, slot)
                if partial + delta >= best_cost:
                    stats["pruned_bound"] += 1
                    continue
                candidates.append((delta, slot))
            candidates.sort()
            for delta, slot in candidates:
                if timed_out:
                    return
                if partial + delta >= best_cost:
                    stats["pruned_bound"] += 1
                    continue
                apply(v, slot)
                search(depth + 1, partial + delta)
                unapply(v, slot)

        search(0, 0.0)
        runtime = time.perf_counter() - start

        if best_assignment is not None:
            best_partition = assignment_to_partition(
                best_assignment, template, spec
            )
            best_cost = total_cost(hypergraph, best_partition, spec)
        if best_partition is None:
            status = STATUS_TIMEOUT if timed_out else STATUS_INFEASIBLE
            return ExactResult(
                status=status,
                cost=None,
                partition=None,
                solver=self.name,
                runtime_seconds=runtime,
                stats=dict(stats),
            )
        status = STATUS_FEASIBLE if timed_out else STATUS_OPTIMAL
        return ExactResult(
            status=status,
            cost=best_cost,
            partition=best_partition,
            solver=self.name,
            runtime_seconds=runtime,
            bound=best_cost if status == STATUS_OPTIMAL else None,
            stats=dict(stats),
        )
