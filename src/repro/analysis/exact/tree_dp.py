"""Exact tree-metric DP for tree-structured HTP instances.

Karpinski, Lingas and Sledneu show that optimal cuts and partitions
are polynomial-time solvable in tree metrics (PAPERS.md); this module
instantiates that result for HTP.  An instance qualifies when every net
has exactly two pins and the merged simple graph (parallel nets summed)
is a forest.  Then a net's Equation-(1) cost depends only on where the
template chains of its two endpoints diverge — separation is nested
down the hierarchy, so ``cost(e) = c(e) * 2 * sum_l w_l *
[chain_u[l] != chain_v[l]]`` — and a leaf-slot pair cost matrix turns
the objective into a sum of independent tree-edge terms.

The DP runs post-order over each forest component.  The state at node
``v`` is ``(slot of v, per-leaf-slot load vector)`` mapping to the
cheapest cost (plus the realising assignment) of the subtree below
``v``; child states merge by adding the connecting edge's pair cost and
elementwise load vectors, pruning any vector that violates a template
capacity (loads only grow, so pruning early is safe).  Components are
convolved the same way, and the final minimum is the proven optimum.

Polynomial for a fixed hierarchy — the load vectors live in a product
of per-slot capacity ranges whose dimension is the (constant) template
leaf count, matching the paper's ``n^O(k)`` shape.  A state budget
guards the constant: blowing past it raises
:class:`~repro.analysis.exact.oracle.ExactIntractable` rather than
hanging.

:func:`tree_dp_refine` is the bridge back into Algorithm 3: it runs
the DP on the instance itself when tree-structured, or on a maximum
spanning forest of the clique expansion otherwise, and returns the
lifted assignment only when it is feasible *and* cheaper under the
true Equation-(1) cost.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.analysis.exact.oracle import (
    STATUS_INFEASIBLE,
    STATUS_OPTIMAL,
    STATUS_TIMEOUT,
    DEFAULT_MAX_LEAVES,
    ExactIntractable,
    ExactOracle,
    ExactResult,
    TemplateTree,
    assignment_to_partition,
    build_template,
)
from repro.errors import ReproError
from repro.htp.cost import total_cost
from repro.htp.hierarchy import HierarchySpec
from repro.htp.partition import PartitionTree
from repro.htp.validate import partition_violations
from repro.hypergraph.hypergraph import Hypergraph

#: Abort the DP when any state table exceeds this many entries.
DEFAULT_STATE_BUDGET = 200_000


class NotTreeStructured(ReproError):
    """The instance is not 2-pin + acyclic, so the tree DP does not apply."""


def merged_tree_edges(
    hypergraph: Hypergraph,
) -> Optional[Dict[Tuple[int, int], float]]:
    """Parallel-merged 2-pin edges when the instance is a forest, else None.

    Returns ``{(u, v): summed capacity}`` with ``u < v``.  ``None`` means
    some net has more than two pins or the merged graph has a cycle.
    """
    merged: Dict[Tuple[int, int], float] = {}
    for net_id, pins in enumerate(hypergraph.nets()):
        if len(pins) != 2:
            return None
        u, v = sorted(pins)
        merged[(u, v)] = merged.get((u, v), 0.0) + hypergraph.net_capacity(
            net_id
        )
    parent = list(range(hypergraph.num_nodes))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in merged:
        ru, rv = find(u), find(v)
        if ru == rv:
            return None
        parent[ru] = rv
    return merged


def is_tree_instance(hypergraph: Hypergraph) -> bool:
    """True when every net is 2-pin and the merged graph is a forest."""
    return merged_tree_edges(hypergraph) is not None


def _pair_costs(
    template: TemplateTree, spec: HierarchySpec
) -> List[List[float]]:
    """``pair[i][j]``: Equation-(1) cost per unit capacity of a 2-pin net
    whose endpoints sit in leaf slots ``i`` and ``j``."""
    weights = [spec.weight(level) for level in range(spec.num_levels)]
    slots = template.num_leaves
    pair = [[0.0] * slots for _ in range(slots)]
    for i in range(slots):
        for j in range(i + 1, slots):
            cost = 0.0
            for level in range(spec.num_levels):
                if template.chains[i][level] != template.chains[j][level]:
                    cost += 2.0 * weights[level]
            pair[i][j] = pair[j][i] = cost
    return pair


class TreeMetricDPOracle(ExactOracle):
    """Polynomial exact oracle on tree-structured instances."""

    name = "tree-dp"

    def __init__(
        self,
        max_leaves: int = DEFAULT_MAX_LEAVES,
        state_budget: int = DEFAULT_STATE_BUDGET,
    ) -> None:
        self.max_leaves = max_leaves
        self.state_budget = state_budget

    def solve(
        self,
        hypergraph: Hypergraph,
        spec: HierarchySpec,
        time_limit: float = 60.0,
    ) -> ExactResult:
        start = time.perf_counter()
        deadline = start + time_limit
        merged = merged_tree_edges(hypergraph)
        if merged is None:
            raise NotTreeStructured(
                "tree-metric DP needs 2-pin nets forming a forest; "
                "use method='bnb' or 'ilp' for general instances"
            )
        reason = self.trivially_infeasible(hypergraph, spec)
        if reason is not None:
            return ExactResult(
                status=STATUS_INFEASIBLE,
                cost=None,
                partition=None,
                solver=self.name,
                runtime_seconds=time.perf_counter() - start,
                stats={"infeasible_reason": reason},
            )
        template = build_template(spec, self.max_leaves)
        pair = _pair_costs(template, spec)
        slots = template.num_leaves
        # Leaf-slot indices under each template vertex, for capacity checks
        # directly on leaf-load vectors.
        under: List[Tuple[int, ...]] = []
        for vertex in range(template.num_vertices):
            under.append(
                tuple(
                    i
                    for i, chain in enumerate(template.chains)
                    if vertex in chain
                )
            )
        caps = template.capacities

        def load_ok(loads: Tuple[float, ...]) -> bool:
            for vertex in range(template.num_vertices):
                if sum(loads[i] for i in under[vertex]) > caps[vertex] + 1e-9:
                    return False
            return True

        adjacency: Dict[int, List[Tuple[int, float]]] = {
            v: [] for v in hypergraph.nodes()
        }
        for (u, v), cap in merged.items():
            adjacency[u].append((v, cap))
            adjacency[v].append((u, cap))

        max_states = 0

        def check_budget(size: int) -> None:
            nonlocal max_states
            max_states = max(max_states, size)
            if size > self.state_budget:
                raise ExactIntractable(
                    f"tree DP state table reached {size} entries "
                    f"(budget {self.state_budget}); instance too wide "
                    f"for this hierarchy"
                )

        # State: Dict[(slot, loads)] -> (cost, {node: slot}) for the
        # processed subtree/forest prefix, where ``slot`` anchors the
        # current subtree root (slot -1 after a component is closed).
        State = Dict[Tuple[int, Tuple[float, ...]], Tuple[float, Dict[int, int]]]

        def solve_component(root: int) -> Dict[Tuple[float, ...], Tuple[float, Dict[int, int]]]:
            # Iterative post-order to keep recursion depth bounded.
            post: List[Tuple[int, int]] = []  # (node, parent)
            stack = [(root, -1)]
            while stack:
                node, par = stack.pop()
                post.append((node, par))
                for child, _cap in adjacency[node]:
                    if child != par:
                        stack.append((child, node))
            tables: Dict[int, State] = {}
            for node, par in reversed(post):
                size = hypergraph.node_size(node)
                table: State = {}
                for slot in range(slots):
                    loads = [0.0] * slots
                    loads[slot] = size
                    key = (slot, tuple(loads))
                    if load_ok(key[1]):
                        table[key] = (0.0, {node: slot})
                for child, cap in adjacency[node]:
                    if child == par:
                        continue
                    if time.perf_counter() > deadline:
                        raise _DeadlineHit()
                    child_table = tables.pop(child)
                    combined: State = {}
                    for (slot, loads), (cost, asg) in table.items():
                        for (cslot, closes), (ccost, casg) in child_table.items():
                            new_cost = cost + ccost + cap * pair[slot][cslot]
                            new_loads = tuple(
                                a + b for a, b in zip(loads, closes)
                            )
                            if not load_ok(new_loads):
                                continue
                            key = (slot, new_loads)
                            prev = combined.get(key)
                            if prev is None or new_cost < prev[0]:
                                merged_asg = dict(asg)
                                merged_asg.update(casg)
                                combined[key] = (new_cost, merged_asg)
                    table = combined
                    check_budget(len(table))
                tables[node] = table
            result: Dict[Tuple[float, ...], Tuple[float, Dict[int, int]]] = {}
            for (_slot, loads), (cost, asg) in tables[root].items():
                prev = result.get(loads)
                if prev is None or cost < prev[0]:
                    result[loads] = (cost, asg)
            return result

        class _DeadlineHit(Exception):
            pass

        # Components in node-id order of their smallest member.
        seen = [False] * hypergraph.num_nodes
        components: List[int] = []
        for v in hypergraph.nodes():
            if seen[v]:
                continue
            components.append(v)
            stack = [v]
            seen[v] = True
            while stack:
                node = stack.pop()
                for u, _cap in adjacency[node]:
                    if not seen[u]:
                        seen[u] = True
                        stack.append(u)

        try:
            running: Dict[
                Tuple[float, ...], Tuple[float, Dict[int, int]]
            ] = {tuple([0.0] * slots): (0.0, {})}
            for root in components:
                component = solve_component(root)
                convolved: Dict[
                    Tuple[float, ...], Tuple[float, Dict[int, int]]
                ] = {}
                for loads, (cost, asg) in running.items():
                    for closes, (ccost, casg) in component.items():
                        new_loads = tuple(
                            a + b for a, b in zip(loads, closes)
                        )
                        if not load_ok(new_loads):
                            continue
                        new_cost = cost + ccost
                        prev = convolved.get(new_loads)
                        if prev is None or new_cost < prev[0]:
                            merged_asg = dict(asg)
                            merged_asg.update(casg)
                            convolved[new_loads] = (new_cost, merged_asg)
                running = convolved
                check_budget(len(running))
                if not running:
                    break
        except _DeadlineHit:
            return ExactResult(
                status=STATUS_TIMEOUT,
                cost=None,
                partition=None,
                solver=self.name,
                runtime_seconds=time.perf_counter() - start,
                stats={"max_states": float(max_states)},
            )

        if not running:
            return ExactResult(
                status=STATUS_INFEASIBLE,
                cost=None,
                partition=None,
                solver=self.name,
                runtime_seconds=time.perf_counter() - start,
                stats={"max_states": float(max_states)},
            )
        best_cost, best_asg = min(running.values(), key=lambda item: item[0])
        assignment = [best_asg[v] for v in hypergraph.nodes()]
        partition = assignment_to_partition(assignment, template, spec)
        return ExactResult(
            status=STATUS_OPTIMAL,
            cost=total_cost(hypergraph, partition, spec),
            partition=partition,
            solver=self.name,
            runtime_seconds=time.perf_counter() - start,
            bound=best_cost,
            stats={"max_states": float(max_states)},
        )


def tree_dp_refine(
    hypergraph: Hypergraph,
    spec: HierarchySpec,
    partition: PartitionTree,
    graph=None,
    max_nodes: int = 32,
    max_leaves: int = DEFAULT_MAX_LEAVES,
    time_limit: float = 5.0,
) -> Optional[Tuple[PartitionTree, float]]:
    """Try to improve ``partition`` with the tree DP; None when it cannot.

    On tree-structured instances the DP is exact, so the result (if
    cheaper) is the true optimum.  Otherwise the DP runs on a maximum
    spanning forest of the clique expansion — the heaviest tree
    approximation of the netlist — and the lifted assignment is
    evaluated under the *true* Equation-(1) cost; it is returned only
    when feasible and strictly cheaper than ``partition``.

    Returns ``(better_partition, its_cost)`` or ``None``.  Deliberately
    cheap to call from Algorithm 3: every give-up path (too many nodes,
    wide hierarchy, DP state blowup, timeout) returns ``None``.
    """
    if hypergraph.num_nodes > max_nodes or hypergraph.num_nets == 0:
        return None
    current_cost = total_cost(hypergraph, partition, spec)
    oracle = TreeMetricDPOracle(max_leaves=max_leaves)
    if is_tree_instance(hypergraph):
        try:
            result = oracle.solve(hypergraph, spec, time_limit=time_limit)
        except (ExactIntractable, ReproError):
            return None
        if result.status == STATUS_OPTIMAL and result.cost < current_cost:
            return result.partition, result.cost
        return None
    # Non-tree instance: DP on the heaviest spanning forest surrogate.
    from repro.algorithms.prim import prim_mst
    from repro.hypergraph.expansion import clique_expansion

    if graph is None:
        graph = clique_expansion(hypergraph)
    lengths = [-capacity for capacity in graph.capacities()]
    forest = prim_mst(graph, lengths)
    if not forest:
        return None
    surrogate = Hypergraph(
        num_nodes=hypergraph.num_nodes,
        nets=[graph.edge(edge_id) for edge_id in forest],
        node_sizes=list(hypergraph.node_sizes()),
        net_capacities=[graph.capacity(edge_id) for edge_id in forest],
        name=(hypergraph.name + "#mst") if hypergraph.name else "",
    )
    try:
        result = oracle.solve(surrogate, spec, time_limit=time_limit)
    except (ExactIntractable, ReproError):
        return None
    if result.status != STATUS_OPTIMAL or result.partition is None:
        return None
    # Lift: same node set, so the surrogate partition applies verbatim;
    # re-evaluate under the true hypergraph cost and constraints.
    lifted = result.partition
    if partition_violations(hypergraph, lifted, spec):
        return None
    lifted_cost = total_cost(hypergraph, lifted, spec)
    if lifted_cost < current_cost:
        return lifted, lifted_cost
    return None
