"""Exact HTP oracles: ground truth for the heuristic engines.

Three backends behind one :class:`ExactOracle` interface — the pulp
ILP (general instances, needs pulp), the branch-and-bound reference
(general instances, no dependencies) and the tree-metric DP
(polynomial, tree-structured instances only) — plus the golden-corpus
loader and the :func:`tree_dp_refine` bridge into Algorithm 3.  Entry
point: :func:`solve_exact`.
"""

from repro.analysis.exact.branch_bound import BranchBoundOracle
from repro.analysis.exact.corpus import (
    DEFAULT_CORPUS_DIR,
    GoldenInstance,
    iter_corpus,
    load_instance,
)
from repro.analysis.exact.ilp import HAS_PULP, ILPOracle
from repro.analysis.exact.oracle import (
    DEFAULT_MAX_LEAVES,
    DEFAULT_MAX_NODES,
    ExactBackendUnavailable,
    ExactIntractable,
    ExactOracle,
    ExactResult,
    TemplateTree,
    assignment_to_partition,
    build_template,
    solve_exact,
)
from repro.analysis.exact.tree_dp import (
    NotTreeStructured,
    TreeMetricDPOracle,
    is_tree_instance,
    tree_dp_refine,
)

__all__ = [
    "BranchBoundOracle",
    "DEFAULT_CORPUS_DIR",
    "DEFAULT_MAX_LEAVES",
    "DEFAULT_MAX_NODES",
    "ExactBackendUnavailable",
    "ExactIntractable",
    "ExactOracle",
    "ExactResult",
    "GoldenInstance",
    "HAS_PULP",
    "ILPOracle",
    "NotTreeStructured",
    "TemplateTree",
    "TreeMetricDPOracle",
    "assignment_to_partition",
    "build_template",
    "is_tree_instance",
    "iter_corpus",
    "load_instance",
    "solve_exact",
    "tree_dp_refine",
]
