"""The shared substrate of the exact HTP oracles (ROADMAP item 5).

Every exact backend — the pulp ILP (:mod:`repro.analysis.exact.ilp`),
the branch-and-bound reference (:mod:`repro.analysis.exact.branch_bound`)
and the tree-metric DP (:mod:`repro.analysis.exact.tree_dp`) — optimises
over the same finite search space: node-to-leaf assignments of the
**complete template hierarchy**, the tree in which every level-``l``
vertex carries exactly ``K_l`` children.  The two directions of the
reduction make this exact:

* any feasible :class:`~repro.htp.partition.PartitionTree` embeds into
  the template (each vertex has *at most* ``K_l`` children, the template
  offers exactly ``K_l`` slots), and
* any capacity-feasible template assignment induces a feasible
  partition tree after dropping empty blocks (child counts can only
  shrink), with identical Equation-(1) cost (empty blocks hold no pins,
  so they never contribute to any ``span``).

So the minimum over template assignments *is* the HTP optimum, and all
three backends provably search the same space — which is what lets the
test tier assert bit-equal agreement between them.

Costs reported by every backend are recomputed canonically through
:func:`repro.htp.cost.total_cost` on the reconstructed partition, so
float summation order cannot make two oracles disagree on the same
solution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.htp.hierarchy import HierarchySpec
from repro.htp.partition import PartitionTree
from repro.hypergraph.hypergraph import Hypergraph

#: Status values every :class:`ExactResult` carries.
STATUS_OPTIMAL = "optimal"
STATUS_FEASIBLE = "feasible"
STATUS_TIMEOUT = "timeout"
STATUS_INFEASIBLE = "infeasible"

#: Refuse templates beyond this many leaf slots — the exact search
#: space is ``leaves ** nodes``; past this the oracles cannot finish.
DEFAULT_MAX_LEAVES = 64

#: Refuse instances beyond this many netlist nodes (same rationale).
DEFAULT_MAX_NODES = 64


class ExactIntractable(ReproError):
    """The instance or hierarchy is too large for the exact oracles."""


class ExactBackendUnavailable(ReproError):
    """The requested exact backend cannot run in this environment
    (e.g. the ILP backend without ``pulp`` installed)."""


@dataclass(frozen=True)
class TemplateTree:
    """The complete admissible hierarchy of a :class:`HierarchySpec`.

    Vertices are numbered in BFS order from the root (id 0), so every
    parent id is smaller than its children's.  ``chains[i][l]`` is the
    level-``l`` ancestor of leaf slot ``i`` (``chains[i][0]`` is the
    leaf itself, ``chains[i][L]`` the root).
    """

    levels: Tuple[int, ...]
    parents: Tuple[int, ...]
    children: Tuple[Tuple[int, ...], ...]
    leaves: Tuple[int, ...]
    chains: Tuple[Tuple[int, ...], ...]
    capacities: Tuple[float, ...]

    @property
    def num_vertices(self) -> int:
        """Number of template vertices."""
        return len(self.levels)

    @property
    def num_leaves(self) -> int:
        """Number of leaf slots."""
        return len(self.leaves)


def build_template(
    spec: HierarchySpec, max_leaves: int = DEFAULT_MAX_LEAVES
) -> TemplateTree:
    """The complete template hierarchy of ``spec``.

    Raises :class:`ExactIntractable` when the template would exceed
    ``max_leaves`` leaf slots (``prod K_l`` grows multiplicatively with
    the tree height).
    """
    num_leaves = 1
    for level in range(1, spec.num_levels + 1):
        num_leaves *= spec.branch_bound(level)
    if num_leaves > max_leaves:
        raise ExactIntractable(
            f"template hierarchy has {num_leaves} leaf slots "
            f"(more than the exact-search limit {max_leaves}); "
            f"use a shallower hierarchy or a heuristic solver"
        )
    levels: List[int] = [spec.num_levels]
    parents: List[int] = [-1]
    frontier = [0]
    for level in range(spec.num_levels - 1, -1, -1):
        next_frontier: List[int] = []
        k = spec.branch_bound(level + 1)
        for parent in frontier:
            for _slot in range(k):
                vertex_id = len(levels)
                levels.append(level)
                parents.append(parent)
                next_frontier.append(vertex_id)
        frontier = next_frontier
    children: List[List[int]] = [[] for _ in levels]
    for vertex, parent in enumerate(parents):
        if parent >= 0:
            children[parent].append(vertex)
    chains: List[Tuple[int, ...]] = []
    for leaf in frontier:
        chain: List[int] = []
        vertex = leaf
        while vertex != -1:
            chain.append(vertex)
            vertex = parents[vertex]
        chains.append(tuple(chain))
    return TemplateTree(
        levels=tuple(levels),
        parents=tuple(parents),
        children=tuple(tuple(c) for c in children),
        leaves=tuple(frontier),
        chains=tuple(chains),
        capacities=tuple(spec.capacity(level) for level in levels),
    )


def assignment_to_partition(
    assignment: Sequence[int],
    template: TemplateTree,
    spec: HierarchySpec,
) -> PartitionTree:
    """Build (and freeze) the partition a template assignment induces.

    ``assignment[node]`` is the template *leaf-slot index* (an index
    into ``template.leaves``, not a vertex id).  Empty template blocks
    are dropped; the result satisfies every ``K_l`` by construction.
    """
    used: set = set()
    for slot in set(assignment):
        used.update(template.chains[slot])
    tree = PartitionTree(
        num_nodes=len(assignment), num_levels=spec.num_levels
    )
    mapping: Dict[int, int] = {0: tree.root}
    # BFS vertex order guarantees parents map before children.
    for vertex in range(1, template.num_vertices):
        if vertex in used:
            mapping[vertex] = tree.add_vertex(
                level=template.levels[vertex],
                parent=mapping[template.parents[vertex]],
            )
    for node, slot in enumerate(assignment):
        tree.assign(node, mapping[template.leaves[slot]])
    return tree.freeze()


@dataclass
class ExactResult:
    """Outcome of an exact solve.

    ``status`` is one of ``optimal`` (cost/partition are the proven
    Equation-(1) minimum), ``feasible`` (a valid partition was found but
    optimality was not proven inside the time box), ``timeout`` (the
    box expired with nothing usable) or ``infeasible`` (no partition
    satisfies the hierarchy).  ``cost`` is always recomputed through
    :func:`repro.htp.cost.total_cost` so backends cannot disagree by
    float summation order.  ``bound`` is the best proven lower bound
    (equal to ``cost`` when optimal).
    """

    status: str
    cost: Optional[float]
    partition: Optional[PartitionTree]
    solver: str
    runtime_seconds: float
    bound: Optional[float] = None
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def is_optimal(self) -> bool:
        """True when the cost is the proven optimum."""
        return self.status == STATUS_OPTIMAL

    def gap(self, achieved_cost: float) -> Optional[float]:
        """``achieved / optimal`` ratio, or None when not optimal.

        A zero-cost optimum maps to 1.0 when the achieved cost is also
        (numerically) zero, and ``inf`` otherwise.
        """
        if not self.is_optimal or self.cost is None:
            return None
        if self.cost <= 1e-12:
            return 1.0 if achieved_cost <= 1e-9 else float("inf")
        return achieved_cost / self.cost


class ExactOracle:
    """Interface of an exact solver backend.

    Subclasses set :attr:`name` and implement :meth:`solve`; they must
    return canonical costs (see :class:`ExactResult`) and honour
    ``time_limit`` cooperatively.
    """

    name = "abstract"

    def solve(
        self,
        hypergraph: Hypergraph,
        spec: HierarchySpec,
        time_limit: float = 60.0,
    ) -> ExactResult:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def trivially_infeasible(
        hypergraph: Hypergraph, spec: HierarchySpec
    ) -> Optional[str]:
        """A cheap certificate of infeasibility, or None."""
        c0 = spec.capacity(0)
        for v in hypergraph.nodes():
            if hypergraph.node_size(v) > c0 + 1e-9:
                return (
                    f"node {v} has size {hypergraph.node_size(v):g} > "
                    f"C_0 = {c0:g}"
                )
        total = hypergraph.total_size()
        if total > spec.capacity(spec.num_levels) + 1e-9:
            return (
                f"total size {total:g} exceeds the root capacity "
                f"C_L = {spec.capacity(spec.num_levels):g}"
            )
        return None


def solve_exact(
    hypergraph: Hypergraph,
    spec: HierarchySpec,
    method: str = "auto",
    time_limit: float = 60.0,
    max_leaves: int = DEFAULT_MAX_LEAVES,
    max_nodes: int = DEFAULT_MAX_NODES,
    incumbent: Optional[PartitionTree] = None,
) -> ExactResult:
    """Solve an HTP instance exactly; the front door of the subsystem.

    ``method`` picks the backend: ``'dp'`` (tree-metric DP, raises
    :class:`~repro.analysis.exact.tree_dp.NotTreeStructured` on
    non-tree instances), ``'ilp'`` (pulp, raises
    :class:`ExactBackendUnavailable` without an installed solver),
    ``'bnb'`` (the built-in exact branch-and-bound) or ``'auto'`` —
    the DP on tree-structured instances, otherwise the ILP when pulp
    is available and the branch-and-bound when it is not.

    ``incumbent`` optionally warm-starts the branch-and-bound with a
    known feasible partition (e.g. a FLOW result), which tightens its
    pruning bound from the first expansion.

    Raises :class:`ExactIntractable` when the instance exceeds
    ``max_nodes`` or the template exceeds ``max_leaves`` — exact search
    on anything larger would only ever time out.
    """
    if hypergraph.num_nodes > max_nodes:
        raise ExactIntractable(
            f"instance has {hypergraph.num_nodes} nodes (more than the "
            f"exact-search limit {max_nodes})"
        )
    from repro.analysis.exact.branch_bound import BranchBoundOracle
    from repro.analysis.exact.ilp import HAS_PULP, ILPOracle
    from repro.analysis.exact.tree_dp import (
        TreeMetricDPOracle,
        is_tree_instance,
    )

    if method == "auto":
        if is_tree_instance(hypergraph):
            method = "dp"
        elif HAS_PULP:
            method = "ilp"
        else:
            method = "bnb"
    if method == "dp":
        oracle: ExactOracle = TreeMetricDPOracle(max_leaves=max_leaves)
    elif method == "ilp":
        oracle = ILPOracle(max_leaves=max_leaves)
    elif method == "bnb":
        oracle = BranchBoundOracle(max_leaves=max_leaves, incumbent=incumbent)
    else:
        raise ReproError(
            f"unknown exact method {method!r} (want auto|dp|ilp|bnb)"
        )
    start = time.perf_counter()
    result = oracle.solve(hypergraph, spec, time_limit=time_limit)
    # Normalise the runtime to the dispatch boundary so callers can
    # budget against it regardless of backend bookkeeping.
    result.runtime_seconds = time.perf_counter() - start
    return result
