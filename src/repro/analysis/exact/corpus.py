"""Loader for the golden optimality corpus.

``tests/regressions/optimal/`` holds small HTP instances whose optimal
Equation-(1) cost is known and committed.  Each ``*.json`` file is one
instance:

.. code-block:: json

    {
      "name": "path8",
      "description": "why this instance is in the corpus",
      "hypergraph": {"num_nodes": 8, "nets": [[0, 1]],
                     "node_sizes": [1.0], "net_capacities": [1.0]},
      "spec": {"capacities": [2, 4, 8], "branching": [2, 2],
               "weights": [1, 2]},
      "optimal_cost": 12.0,
      "tree_structured": true,
      "flow": {"seed": 0, "iterations": 2, "gap_bound": 1.25}
    }

``tree_structured`` declares whether the tree-metric DP applies (the
loader re-derives and cross-checks it); ``flow.gap_bound`` is the
committed ceiling on FLOW's achieved/optimal ratio under the committed
deterministic FLOW configuration.  The corpus test tier asserts all
three every run: DP (where applicable) and the branch-and-bound/ILP
reproduce ``optimal_cost`` bit-equally, and FLOW stays within
``gap_bound``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List

from repro.errors import ReproError
from repro.htp.hierarchy import HierarchySpec
from repro.hypergraph.hypergraph import Hypergraph

#: Where the committed corpus lives, relative to the repo root.
DEFAULT_CORPUS_DIR = (
    Path(__file__).resolve().parents[4] / "tests" / "regressions" / "optimal"
)


@dataclass(frozen=True)
class GoldenInstance:
    """One committed instance with its proven optimal cost."""

    name: str
    description: str
    hypergraph: Hypergraph
    spec: HierarchySpec
    optimal_cost: float
    tree_structured: bool
    flow: Dict[str, float]
    path: Path


def load_instance(path: Path) -> GoldenInstance:
    """Parse one corpus file; raises :class:`ReproError` on bad shape."""
    payload = json.loads(Path(path).read_text())
    try:
        hg = payload["hypergraph"]
        hypergraph = Hypergraph(
            num_nodes=hg["num_nodes"],
            nets=hg["nets"],
            node_sizes=hg.get("node_sizes"),
            net_capacities=hg.get("net_capacities"),
            name=payload["name"],
        )
        sp = payload["spec"]
        spec = HierarchySpec(
            capacities=tuple(sp["capacities"]),
            branching=tuple(sp["branching"]),
            weights=tuple(sp["weights"]),
        )
        instance = GoldenInstance(
            name=payload["name"],
            description=payload.get("description", ""),
            hypergraph=hypergraph,
            spec=spec,
            optimal_cost=float(payload["optimal_cost"]),
            tree_structured=bool(payload["tree_structured"]),
            flow=dict(payload.get("flow", {})),
            path=Path(path),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed corpus file {path}: {exc}") from exc
    from repro.analysis.exact.tree_dp import is_tree_instance

    derived = is_tree_instance(hypergraph)
    if derived != instance.tree_structured:
        raise ReproError(
            f"corpus file {path}: tree_structured={instance.tree_structured} "
            f"but the instance {'is' if derived else 'is not'} a tree"
        )
    return instance


def iter_corpus(directory: Path = DEFAULT_CORPUS_DIR) -> List[GoldenInstance]:
    """All corpus instances in name order; empty when the dir is absent."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        load_instance(path) for path in sorted(directory.glob("*.json"))
    ]
