"""ILP formulation of HTP (pulp backend, solver-pluggable).

Decision variables over the complete template hierarchy (see
:mod:`repro.analysis.exact.oracle`):

* ``x[v, i]`` — binary, node ``v`` sits in template leaf slot ``i``
  (exactly one per node);
* ``y[e, t]`` — binary, net ``e`` touches template vertex ``t``
  (forced up by ``y[e, t] >= x[v, i]`` for every pin ``v`` and slot
  ``i`` under ``t``, and pressed down by minimisation);
* ``cut[e, l]`` — binary, net ``e`` spans more than one level-``l``
  block (``s_el - 1 <= (B_l - 1) * cut[e, l]`` with ``s_el`` the sum
  of level-``l`` touch variables and ``B_l`` the block count).

Capacity is linear: for every template vertex ``t``, ``sum_v s(v) *
sum_{i under t} x[v, i] <= C_level(t)``.  The Equation-(1) objective is
``sum_e c(e) * sum_l w_l * (s_el - 1 + cut[e, l])`` — the span
``s_el`` counts when the net is cut (``s - 1 + 1 = s``) and contributes
zero when whole (``1 - 1 + 0``), exactly the paper's "span 1 counts as
0" convention.  One symmetry-break pins node 0 to leaf slot 0, valid
because the uniform template is leaf-transitive.

The module imports cleanly without pulp; :data:`HAS_PULP` gates the
backend and :class:`ILPOracle.solve` raises
:class:`~repro.analysis.exact.oracle.ExactBackendUnavailable` when the
toolchain is missing, so callers (CLI, tests, verify.sh) can SKIP
rather than fail.
"""

from __future__ import annotations

import time
from typing import List

from repro.analysis.exact.oracle import (
    STATUS_FEASIBLE,
    STATUS_INFEASIBLE,
    STATUS_OPTIMAL,
    STATUS_TIMEOUT,
    DEFAULT_MAX_LEAVES,
    ExactBackendUnavailable,
    ExactOracle,
    ExactResult,
    assignment_to_partition,
    build_template,
)
from repro.htp.cost import total_cost
from repro.htp.hierarchy import HierarchySpec
from repro.hypergraph.hypergraph import Hypergraph

try:  # pragma: no cover - exercised only where pulp is installed
    import pulp  # type: ignore

    HAS_PULP = True
except ImportError:  # pragma: no cover - the no-pulp container path
    pulp = None
    HAS_PULP = False


class ILPOracle(ExactOracle):
    """Time-boxed exact ILP solve through pulp's pluggable solvers."""

    name = "ilp"

    def __init__(
        self,
        max_leaves: int = DEFAULT_MAX_LEAVES,
        solver=None,
    ) -> None:
        self.max_leaves = max_leaves
        self.solver = solver

    def solve(
        self,
        hypergraph: Hypergraph,
        spec: HierarchySpec,
        time_limit: float = 60.0,
    ) -> ExactResult:
        if not HAS_PULP:
            raise ExactBackendUnavailable(
                "the ILP oracle needs pulp (not installed); "
                "use method='bnb' or 'dp' instead"
            )
        start = time.perf_counter()
        reason = self.trivially_infeasible(hypergraph, spec)
        if reason is not None:
            return ExactResult(
                status=STATUS_INFEASIBLE,
                cost=None,
                partition=None,
                solver=self.name,
                runtime_seconds=time.perf_counter() - start,
                stats={"infeasible_reason": reason},
            )
        template = build_template(spec, self.max_leaves)
        num_levels = spec.num_levels
        slots = template.num_leaves
        nets = hypergraph.nets()

        problem = pulp.LpProblem("htp", pulp.LpMinimize)
        x = {
            (v, i): pulp.LpVariable(f"x_{v}_{i}", cat="Binary")
            for v in hypergraph.nodes()
            for i in range(slots)
        }
        for v in hypergraph.nodes():
            problem += (
                pulp.lpSum(x[v, i] for i in range(slots)) == 1,
                f"assign_{v}",
            )
        # Symmetry break: the template is leaf-transitive, so node 0 may
        # be pinned to slot 0 without excluding any distinct partition.
        problem += x[0, 0] == 1, "symmetry_break"

        slots_under = {
            t: [
                i
                for i, chain in enumerate(template.chains)
                if t in chain
            ]
            for t in range(template.num_vertices)
        }
        for t in range(template.num_vertices):
            problem += (
                pulp.lpSum(
                    hypergraph.node_size(v) * x[v, i]
                    for v in hypergraph.nodes()
                    for i in slots_under[t]
                )
                <= template.capacities[t],
                f"capacity_{t}",
            )

        vertices_at = {
            level: [
                t
                for t in range(template.num_vertices)
                if template.levels[t] == level
            ]
            for level in range(num_levels)
        }
        objective = []
        for e, pins in enumerate(nets):
            cap = hypergraph.net_capacity(e)
            for level in range(num_levels):
                weight = spec.weight(level)
                level_vertices = vertices_at[level]
                touch = []
                for t in level_vertices:
                    y = pulp.LpVariable(f"y_{e}_{t}", cat="Binary")
                    for v in pins:
                        for i in slots_under[t]:
                            problem += y >= x[v, i], f"touch_{e}_{t}_{v}_{i}"
                    touch.append(y)
                span = pulp.lpSum(touch)
                cut = pulp.LpVariable(f"cut_{e}_{level}", cat="Binary")
                problem += (
                    span - 1 <= (len(level_vertices) - 1) * cut,
                    f"cut_link_{e}_{level}",
                )
                if weight > 0:
                    objective.append(cap * weight * (span - 1 + cut))
        problem += pulp.lpSum(objective)

        solver = self.solver or pulp.PULP_CBC_CMD(
            msg=False, timeLimit=time_limit
        )
        problem.solve(solver)
        runtime = time.perf_counter() - start
        lp_status = pulp.LpStatus[problem.status]
        if lp_status == "Infeasible":
            return ExactResult(
                status=STATUS_INFEASIBLE,
                cost=None,
                partition=None,
                solver=self.name,
                runtime_seconds=runtime,
                stats={"lp_status": lp_status},
            )
        assignment: List[int] = []
        for v in hypergraph.nodes():
            slot = next(
                (
                    i
                    for i in range(slots)
                    if pulp.value(x[v, i]) is not None
                    and pulp.value(x[v, i]) > 0.5
                ),
                None,
            )
            if slot is None:
                return ExactResult(
                    status=STATUS_TIMEOUT,
                    cost=None,
                    partition=None,
                    solver=self.name,
                    runtime_seconds=runtime,
                    stats={"lp_status": lp_status},
                )
            assignment.append(slot)
        partition = assignment_to_partition(assignment, template, spec)
        status = STATUS_OPTIMAL if lp_status == "Optimal" else STATUS_FEASIBLE
        cost = total_cost(hypergraph, partition, spec)
        return ExactResult(
            status=status,
            cost=cost,
            partition=partition,
            solver=self.name,
            runtime_seconds=runtime,
            bound=cost if status == STATUS_OPTIMAL else None,
            stats={"lp_status": lp_status},
        )
