"""Phase-level profiling of the FLOW algorithm.

Section 3.3 of the paper argues the spreading-metric computation
(Algorithm 2) dominates the construction (Algorithm 3):
``O((b_c log b_d) m (n+p) log n)`` vs ``O((n+p) log^2 n)``.  This module
measures the actual wall-clock split so EXPERIMENTS.md can check the
claim empirically.

:class:`PerfCounters` (re-exported here from :mod:`repro.core.perf`) is
the finer-grained companion: operation counts (Dijkstra calls, settled
nodes, repriced edges, cut evaluations) rather than wall time, threaded
through the solver hot paths and surfaced on :class:`FlowProfile` and
``FlowHTPResult.perf``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.core.construct import construct_partition
from repro.core.flow_htp import FlowHTPConfig
from repro.core.perf import PerfCounters
from repro.core.spreading_metric import compute_spreading_metric
from repro.htp.cost import total_cost
from repro.htp.hierarchy import HierarchySpec
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.hypergraph import Hypergraph


@dataclass
class FlowProfile:
    """Wall-clock split of one FLOW run.

    ``counters`` carries the operation-level instrumentation gathered
    during the run (see :class:`PerfCounters`).
    """

    metric_seconds: float
    construct_seconds: float
    evaluate_seconds: float
    total_seconds: float
    best_cost: float
    counters: Optional[PerfCounters] = None

    @property
    def metric_fraction(self) -> float:
        """Share of the runtime spent in Algorithm 2."""
        if self.total_seconds == 0:
            return 0.0
        return self.metric_seconds / self.total_seconds


def profile_flow(
    hypergraph: Hypergraph,
    spec: HierarchySpec,
    config: Optional[FlowHTPConfig] = None,
) -> FlowProfile:
    """Run FLOW with per-phase timing (same semantics as flow_htp)."""
    config = config or FlowHTPConfig()
    rng = random.Random(config.seed)
    counters = PerfCounters()
    start_total = time.perf_counter()
    graph = to_graph(
        hypergraph, model=config.net_model, rng=random.Random(config.seed)
    )

    metric_seconds = 0.0
    construct_seconds = 0.0
    evaluate_seconds = 0.0
    best_cost = float("inf")

    for _iteration in range(config.iterations):
        metric_config = config.metric
        metric_seed = rng.randrange(2**31)
        construction_seeds = [
            rng.randrange(2**31)
            for _ in range(config.constructions_per_metric)
        ]
        start = time.perf_counter()
        metric = compute_spreading_metric(
            graph,
            spec,
            metric_config,
            rng=random.Random(metric_seed),
            counters=counters,
        )
        metric_seconds += time.perf_counter() - start
        for construct_seed in construction_seeds:
            start = time.perf_counter()
            partition = construct_partition(
                hypergraph,
                graph,
                spec,
                metric.lengths,
                rng=random.Random(construct_seed),
                find_cut_restarts=config.find_cut_restarts,
                strategy=config.find_cut_strategy,
                counters=counters,
            )
            construct_seconds += time.perf_counter() - start
            start = time.perf_counter()
            cost = total_cost(hypergraph, partition, spec)
            evaluate_seconds += time.perf_counter() - start
            best_cost = min(best_cost, cost)

    counters.add_phase("metric", metric_seconds)
    counters.add_phase("construct", construct_seconds)
    counters.add_phase("evaluate", evaluate_seconds)
    return FlowProfile(
        metric_seconds=metric_seconds,
        construct_seconds=construct_seconds,
        evaluate_seconds=evaluate_seconds,
        total_seconds=time.perf_counter() - start_total,
        best_cost=best_cost,
        counters=counters,
    )


def scaling_profile(
    circuits: List[Hypergraph],
    spec_for,
    config: Optional[FlowHTPConfig] = None,
) -> List[FlowProfile]:
    """Profiles across instances (the runtime-scaling experiment)."""
    return [
        profile_flow(hypergraph, spec_for(hypergraph), config)
        for hypergraph in circuits
    ]
