"""Small statistics helpers for experiment reporting."""

from __future__ import annotations

import math
from typing import Dict, Sequence


def summary(values: Sequence[float]) -> Dict[str, float]:
    """min / max / mean / stdev of a non-empty sample."""
    if not values:
        raise ValueError("summary of an empty sample")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return {
        "n": float(n),
        "min": min(values),
        "max": max(values),
        "mean": mean,
        "stdev": math.sqrt(variance),
    }


def improvement(before: float, after: float) -> float:
    """Fractional improvement from ``before`` to ``after`` (0 when before=0)."""
    if before == 0:
        return 0.0
    return (before - after) / before


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("geometric mean of an empty sample")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
