"""One-shot experiment report: everything the paper measures, as markdown.

``generate_report`` runs Tables 1-3 (at a configurable scale) plus the
Figure 2 checks and renders a self-contained markdown document — the
programmatic counterpart of EXPERIMENTS.md, usable for regression
tracking across machines::

    from repro.analysis.report import generate_report
    print(generate_report(scale=0.25))
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.analysis.experiments import (
    ExperimentConfig,
    run_table1,
    run_table2,
    run_table3,
    table2_to_table,
    table3_to_table,
)
from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.lp import solve_spreading_lp
from repro.htp.cost import induced_metric, total_cost
from repro.htp.hierarchy import figure2_hierarchy
from repro.htp.partition import PartitionTree
from repro.hypergraph.generators import (
    figure2_graph,
    figure2_hypergraph,
    figure2_optimal_blocks,
)


def _figure2_section() -> List[str]:
    graph = figure2_graph()
    netlist = figure2_hypergraph()
    spec = figure2_hierarchy()
    blocks = figure2_optimal_blocks()
    optimal = PartitionTree.from_nested(
        [[blocks[0], blocks[1]], [blocks[2], blocks[3]]], 16
    )
    cost = total_cost(netlist, optimal, spec)
    metric_values = sorted(set(induced_metric(netlist, optimal, spec)))
    lp = solve_spreading_lp(graph, spec)
    flow = flow_htp(
        netlist,
        spec,
        FlowHTPConfig(iterations=2, constructions_per_metric=4, seed=1),
        graph=graph,
    )
    lines = ["## Figure 2 (worked example)", ""]
    lines.append(f"* optimal cost: **{cost:g}** (paper: 20)")
    lines.append(
        f"* induced metric values: **{metric_values}** (paper: 0, 2, 6)"
    )
    lines.append(
        f"* LP (P1) optimum: **{lp.lower_bound:.3f}** "
        f"(converged: {lp.converged})"
    )
    lines.append(f"* FLOW recovered cost: **{flow.cost:g}**")
    lines.append("")
    return lines


def generate_report(
    scale: float = 1.0,
    seed: int = 0,
    config: Optional[ExperimentConfig] = None,
    include_figure2: bool = True,
) -> str:
    """Run the full experiment battery and return a markdown report."""
    config = config or ExperimentConfig(scale=scale, seed=seed)
    started = time.perf_counter()
    lines: List[str] = [
        "# HTP reproduction report",
        "",
        f"scale = {config.scale}, seed = {config.seed}, "
        f"circuits = {', '.join(config.circuits)}",
        "",
    ]

    lines += ["## Table 1", "", "```", run_table1(config).render(), "```", ""]

    store: dict = {}
    rows2 = run_table2(config, collect_partitions=store)
    lines += [
        "## Table 2",
        "",
        "```",
        table2_to_table(rows2).render(),
        "```",
        "",
    ]
    flow_wins = [
        row.circuit
        for row in rows2
        if row.flow_cost < min(row.gfm_cost, row.rfm_cost)
    ]
    lines.append(f"FLOW wins on: {', '.join(flow_wins) or 'none'}")
    lines.append("")

    rows3 = run_table3(config, partitions=store)
    lines += [
        "## Table 3",
        "",
        "```",
        table3_to_table(rows3).render(),
        "```",
        "",
    ]

    if include_figure2:
        lines += _figure2_section()

    lines.append(
        f"_generated in {time.perf_counter() - started:.1f}s_"
    )
    return "\n".join(lines)
