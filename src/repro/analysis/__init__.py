"""Experiment drivers and reporting (Tables 1-3, ablations)."""

from repro.analysis.tables import Table, format_table
from repro.analysis.experiments import (
    ExperimentConfig,
    Table2Row,
    Table3Row,
    run_table1,
    run_table2,
    run_table3,
)

__all__ = [
    "Table",
    "format_table",
    "ExperimentConfig",
    "Table2Row",
    "Table3Row",
    "run_table1",
    "run_table2",
    "run_table3",
]
