"""Content-addressed result cache: in-memory LRU over on-disk JSON blobs.

Keys are :meth:`JobSpec.canonical_hash` digests, values are the JSON
result payloads the job core produces (``{"spec_hash": ..., "result":
FlowHTPResult.to_dict()}`` — including the solved spreading metric, so a
warm request skips Algorithm 2 entirely).  The memory tier is a bounded
LRU; the optional disk tier writes one ``<hash>.json`` blob per entry
under ``cache_dir`` and survives restarts.  A disk read re-populates the
memory tier (read-through), and a memory eviction never deletes the
blob — disk is the durable tier, memory the hot set.

Blobs are written atomically (tmp + rename) inside a CRC-32 envelope
``{"crc32": ..., "payload": ...}``; a read that finds a truncated,
unparseable, CRC-failing or wrong-hash blob **quarantines** it (renames
to ``*.corrupt``) and reports a miss — corruption costs a re-solve,
never an exception.  Envelope-less blobs from older writers still load.

Traffic lands on a shared :class:`~repro.core.perf.PerfCounters`
(``cache_hits`` / ``cache_misses`` / ``cache_evictions`` /
``cache_corrupt``) so the service and the solver report through one
instrument.
"""

from __future__ import annotations

import binascii
import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.perf import PerfCounters
from repro.errors import ServiceError

#: Hex digits of a SHA-256 digest — the only accepted key shape (keys
#: become file names, so this also forbids path traversal).
_KEY_LENGTH = 64


def _check_key(key: str) -> str:
    if (
        not isinstance(key, str)
        or len(key) != _KEY_LENGTH
        or any(c not in "0123456789abcdef" for c in key)
    ):
        raise ServiceError(
            f"cache keys must be {_KEY_LENGTH}-char lowercase hex digests, "
            f"got {key!r}"
        )
    return key


def _payload_crc(payload: Dict[str, object]) -> str:
    """CRC-32 (hex) over the canonical JSON form of ``payload``."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return format(binascii.crc32(blob.encode("utf-8")) & 0xFFFFFFFF, "08x")


class ResultCache:
    """Bounded LRU of result payloads, optionally backed by a directory.

    Parameters
    ----------
    capacity:
        Maximum entries held in memory; the least-recently-used entry is
        evicted on overflow (``cache_evictions`` counts them).
    cache_dir:
        Optional directory for the durable tier; created on first write.
        ``None`` keeps the cache purely in-memory.
    counters:
        Shared perf struct; defaults to a private one (exposed as
        ``.counters`` either way).
    """

    def __init__(
        self,
        capacity: int = 128,
        cache_dir: Optional[Union[str, Path]] = None,
        counters: Optional[PerfCounters] = None,
    ) -> None:
        if capacity < 1:
            raise ServiceError("cache capacity must be at least 1")
        self.capacity = capacity
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.counters = counters if counters is not None else PerfCounters()
        self._memory: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._disk_hits = 0
        self._memory_hits = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        key = _check_key(key)
        return key in self._memory or self._blob_path(key) is not None

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The payload stored under ``key``, or None (counted miss)."""
        key = _check_key(key)
        if key in self._memory:
            self._memory.move_to_end(key)
            self.counters.cache_hits += 1
            self._memory_hits += 1
            return self._memory[key]
        payload = self._read_blob(key)
        if payload is not None:
            self._install(key, payload)
            self.counters.cache_hits += 1
            self._disk_hits += 1
            return payload
        self.counters.cache_misses += 1
        return None

    def put(self, key: str, payload: Dict[str, object]) -> None:
        """Store ``payload`` under ``key`` in both tiers."""
        key = _check_key(key)
        stored_hash = payload.get("spec_hash")
        if stored_hash is not None and stored_hash != key:
            raise ServiceError(
                f"payload says spec_hash {stored_hash!r} but is being "
                f"stored under {key!r} — content addressing violated"
            )
        self._install(key, payload)
        self._write_blob(key, payload)

    def keys(self) -> "set[str]":
        """Every content address this cache can currently answer.

        The union of the memory tier and the durable tier's blob names —
        what a cluster worker reports to the router's cache index on
        join/heartbeat.  Disk is listed, not read: a blob that later
        turns out corrupt is quarantined at ``get`` time and the stale
        index entry costs the router one failed read-through, never a
        wrong answer.
        """
        keys = set(self._memory)
        if self.cache_dir is not None and self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*.json"):
                stem = path.stem
                if len(stem) == _KEY_LENGTH and not stem.endswith(".tmp"):
                    keys.add(stem)
        return keys

    def stats(self) -> Dict[str, object]:
        """The ``metricsz`` view of the cache."""
        return {
            "entries": len(self._memory),
            "capacity": self.capacity,
            "hits": self.counters.cache_hits,
            "memory_hits": self._memory_hits,
            "disk_hits": self._disk_hits,
            "misses": self.counters.cache_misses,
            "evictions": self.counters.cache_evictions,
            "corrupt": self.counters.cache_corrupt,
            "disk": str(self.cache_dir) if self.cache_dir else None,
        }

    # ------------------------------------------------------------------
    def _install(self, key: str, payload: Dict[str, object]) -> None:
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.counters.cache_evictions += 1

    def _blob_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{key}.json"
        return path if path.is_file() else None

    def _read_blob(self, key: str) -> Optional[Dict[str, object]]:
        path = self._blob_path(key)
        if path is None:
            return None
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            return self._quarantine(path, f"unreadable blob: {exc}")
        if isinstance(doc, dict) and "crc32" in doc and "payload" in doc:
            payload = doc["payload"]
            if not isinstance(payload, dict) or doc["crc32"] != _payload_crc(
                payload
            ):
                return self._quarantine(path, "CRC mismatch")
        elif isinstance(doc, dict):
            # Envelope-less blob from an older writer: accept as-is.
            payload = doc
        else:
            return self._quarantine(path, "blob is not a JSON object")
        stored_hash = payload.get("spec_hash")
        if stored_hash is not None and stored_hash != key:
            return self._quarantine(
                path, f"claims spec_hash {stored_hash!r} under key {key!r}"
            )
        return payload

    def _quarantine(self, path: Path, reason: str) -> None:
        """Sideline a bad blob (``*.corrupt``) and report a miss.

        A corrupt entry must cost a re-solve, not an exception — and the
        rename keeps the evidence while guaranteeing the next read of
        this key goes straight to a clean miss.
        """
        self.counters.cache_corrupt += 1
        self.counters.record_degradation(
            "cache-quarantine", f"{path}: {reason}", site="cache"
        )
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            # The rename is best-effort; a miss is returned regardless.
            pass
        return None

    def _write_blob(self, key: str, payload: Dict[str, object]) -> None:
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.cache_dir / f"{key}.json"
        # Write-then-rename so a crashed writer never leaves a torn blob
        # under the live name; the CRC envelope catches everything else
        # (bit rot, hand edits, short copies).
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps({"crc32": _payload_crc(payload), "payload": payload})
        )
        os.replace(tmp, path)
