"""Thin blocking client for the partitioning service.

Wraps ``http.client`` (stdlib) around the server's JSON endpoints: one
connection per call, conventional status codes mapped to
:class:`ServiceClientError`.  :meth:`ServiceClient.partition` is the
high-level helper behind ``htp submit`` — build a spec, submit, poll
until terminal, return the deserialized :class:`FlowHTPResult`.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Dict, Optional

from repro.core.flow_htp import FlowHTPResult
from repro.errors import ServiceError
from repro.htp.hierarchy import HierarchySpec
from repro.hypergraph.hypergraph import Hypergraph
from repro.service.jobs import JobSpec, JobState, TERMINAL_STATES


class ServiceClientError(ServiceError):
    """An HTTP-level failure talking to the service.

    ``status`` holds the HTTP status code (0 for connection failures).
    """

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """A handle on one server, e.g. ``ServiceClient("http://127.0.0.1:8947")``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        parsed = urllib.parse.urlparse(base_url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ServiceClientError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Raw endpoint wrappers
    # ------------------------------------------------------------------
    def submit(self, spec_payload: Dict[str, object]) -> Dict[str, object]:
        """POST /jobs — returns the job status document."""
        return self._request("POST", "/jobs", body=spec_payload)

    def submit_spec(self, spec: JobSpec) -> Dict[str, object]:
        """Submit a library-level :class:`JobSpec`."""
        return self.submit(spec.to_payload())

    def status(self, job_id: str) -> Dict[str, object]:
        """GET /jobs/<id>."""
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, object]:
        """GET /jobs/<id>/result (raises 409 ServiceClientError until done)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, object]:
        """POST /jobs/<id>/cancel."""
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def jobs(self) -> Dict[str, object]:
        """GET /jobs."""
        return self._request("GET", "/jobs")

    def healthz(self) -> Dict[str, object]:
        """GET /healthz."""
        return self._request("GET", "/healthz")

    def metricsz(self) -> Dict[str, object]:
        """GET /metricsz."""
        return self._request("GET", "/metricsz")

    # ------------------------------------------------------------------
    # High-level flow
    # ------------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = 300.0,
        poll_interval: float = 0.05,
    ) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; returns its status."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if JobState(status["state"]) in TERMINAL_STATES:
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceClientError(
                    f"job {job_id} still {status['state']} after {timeout:g}s"
                )
            time.sleep(poll_interval)

    def partition(
        self,
        netlist: Hypergraph,
        hierarchy: HierarchySpec,
        config: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = 300.0,
        poll_interval: float = 0.05,
    ) -> FlowHTPResult:
        """Submit, poll, deserialize — the one-call client experience.

        Raises :class:`ServiceClientError` when the job fails or is
        cancelled (the job's error message is included).
        """
        spec = JobSpec.from_parts(netlist, hierarchy, config)
        submitted = self.submit_spec(spec)
        status = self.wait(
            str(submitted["job_id"]),
            timeout=timeout,
            poll_interval=poll_interval,
        )
        if status["state"] != JobState.DONE.value:
            raise ServiceClientError(
                f"job {status['job_id']} ended {status['state']}: "
                f"{status.get('error', 'no detail')}"
            )
        payload = self.result(str(status["job_id"]))
        return FlowHTPResult.from_dict(payload["result"])

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            try:
                connection.request(method, path, body=data, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceClientError(
                    f"cannot reach service at {self.host}:{self.port}: {exc}"
                ) from exc
        finally:
            connection.close()
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceClientError(
                f"{method} {path}: non-JSON response "
                f"(status {response.status})",
                status=response.status,
            ) from exc
        if response.status != 200:
            detail = payload.get("error", repr(raw[:200]))
            raise ServiceClientError(
                f"{method} {path}: {detail}", status=response.status
            )
        return payload
