"""Thin blocking client for the partitioning service.

Wraps ``http.client`` (stdlib) around the server's JSON endpoints: one
connection per call, conventional status codes mapped to
:class:`ServiceClientError`.  :meth:`ServiceClient.partition` is the
high-level helper behind ``htp submit`` — build a spec, submit, poll
until terminal, return the deserialized :class:`FlowHTPResult`.

Idempotent reads (status, result, listings, health and metrics probes)
transparently retry on a reset or half-closed connection — the normal
weather around a server restart — with the bounded exponential backoff
of a :class:`~repro.core.faults.FaultTolerance`.  Submissions and
cancels never retry: POSTs are not idempotent and a duplicate is worse
than an error.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Dict, Optional

from repro.core.faults import FaultTolerance
from repro.core.flow_htp import FlowHTPResult
from repro.errors import ServiceError
from repro.htp.hierarchy import HierarchySpec
from repro.hypergraph.hypergraph import Hypergraph
from repro.service.jobs import JobSpec, JobState, TERMINAL_STATES

#: Transport failures worth retrying on an idempotent request: the
#: server died mid-response or the listener bounced.  Refusals
#: (``ConnectionRefusedError``) are *not* here — a down server fails
#: fast rather than burning the backoff budget.
_RETRYABLE = (ConnectionResetError, http.client.RemoteDisconnected)


class ServiceClientError(ServiceError):
    """An HTTP-level failure talking to the service.

    ``status`` holds the HTTP status code (0 for connection failures);
    ``retry_after`` carries the server's ``Retry-After`` hint (seconds)
    on 429 responses, None otherwise.
    """

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after: Optional[float] = None


class ServiceClient:
    """A handle on one server, e.g. ``ServiceClient("http://127.0.0.1:8947")``."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        tolerance: Optional[FaultTolerance] = None,
    ) -> None:
        parsed = urllib.parse.urlparse(base_url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ServiceClientError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self.tolerance = tolerance or FaultTolerance()

    # ------------------------------------------------------------------
    # Raw endpoint wrappers
    # ------------------------------------------------------------------
    def submit(
        self,
        spec_payload: Dict[str, object],
        deadline: Optional[float] = None,
    ) -> Dict[str, object]:
        """POST /jobs — returns the job status document.

        ``deadline`` (seconds) rides beside the spec as the top-level
        payload key the server turns into a job deadline; it never
        touches the spec's content address.
        """
        if deadline is not None:
            spec_payload = dict(spec_payload)
            spec_payload["deadline"] = float(deadline)
        return self._request("POST", "/jobs", body=spec_payload)

    def submit_spec(
        self, spec: JobSpec, deadline: Optional[float] = None
    ) -> Dict[str, object]:
        """Submit a library-level :class:`JobSpec`."""
        return self.submit(spec.to_payload(), deadline=deadline)

    def status(self, job_id: str) -> Dict[str, object]:
        """GET /jobs/<id>."""
        return self._request("GET", f"/jobs/{job_id}", idempotent=True)

    def result(self, job_id: str) -> Dict[str, object]:
        """GET /jobs/<id>/result (raises 409 ServiceClientError until done)."""
        return self._request(
            "GET", f"/jobs/{job_id}/result", idempotent=True
        )

    def cancel(self, job_id: str) -> Dict[str, object]:
        """POST /jobs/<id>/cancel."""
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def jobs(self) -> Dict[str, object]:
        """GET /jobs."""
        return self._request("GET", "/jobs", idempotent=True)

    def healthz(self) -> Dict[str, object]:
        """GET /healthz."""
        return self._request("GET", "/healthz", idempotent=True)

    def metricsz(self) -> Dict[str, object]:
        """GET /metricsz."""
        return self._request("GET", "/metricsz", idempotent=True)

    def cache_lookup(self, spec_hash: str) -> Dict[str, object]:
        """GET /cache/<hash> — a worker's durable-cache read-through.

        Used by the cluster router to answer a submission from *any*
        worker's disk cache; 404 (raised as :class:`ServiceClientError`)
        means the worker no longer holds that content address.
        """
        return self._request(
            "GET", f"/cache/{spec_hash}", idempotent=True
        )

    # ------------------------------------------------------------------
    # Cluster replication + failover endpoints
    # ------------------------------------------------------------------
    def cache_push(
        self, spec_hash: str, payload: Dict[str, object]
    ) -> Dict[str, object]:
        """PUT /cache/<hash> — the router's write-through replication.

        Idempotent by content address (the worker validates the payload
        hashes to ``spec_hash`` before storing), so retries are safe.
        """
        return self._request(
            "PUT", f"/cache/{spec_hash}", body=payload, idempotent=True
        )

    def ckpt_frames(self, spec_hash: str) -> Dict[str, object]:
        """GET /ckpt/<hash> — the frame sequence numbers a peer holds."""
        return self._request("GET", f"/ckpt/{spec_hash}", idempotent=True)

    def ckpt_frame(self, spec_hash: str, seq: int) -> Dict[str, object]:
        """GET /ckpt/<hash>/<seq> — one CRC-stamped checkpoint envelope."""
        return self._request(
            "GET", f"/ckpt/{spec_hash}/{int(seq)}", idempotent=True
        )

    def ckpt_push(
        self, spec_hash: str, seq: int, envelope: Dict[str, object]
    ) -> Dict[str, object]:
        """PUT /ckpt/<hash>/<seq> — replicate one checkpoint frame.

        Idempotent: frame content is fixed by (hash, seq), so replaying
        a push atomically rewrites identical bytes.
        """
        return self._request(
            "PUT",
            f"/ckpt/{spec_hash}/{int(seq)}",
            body=envelope,
            idempotent=True,
        )

    def wal_since(self, since: int) -> Dict[str, object]:
        """GET /wal?since=<n> — the router journal tail a standby polls."""
        return self._request(
            "GET", f"/wal?since={int(since)}", idempotent=True
        )

    def register_standby(self, url: str) -> Dict[str, object]:
        """POST /standby — announce a warm standby's URL to the primary."""
        return self._request("POST", "/standby", body={"url": url})

    # ------------------------------------------------------------------
    # High-level flow
    # ------------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = 300.0,
        poll_interval: float = 0.05,
    ) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; returns its status."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if JobState(status["state"]) in TERMINAL_STATES:
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceClientError(
                    f"job {job_id} still {status['state']} after {timeout:g}s"
                )
            time.sleep(poll_interval)

    def partition(
        self,
        netlist: Hypergraph,
        hierarchy: HierarchySpec,
        config: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = 300.0,
        poll_interval: float = 0.05,
        deadline: Optional[float] = None,
    ) -> FlowHTPResult:
        """Submit, poll, deserialize — the one-call client experience.

        Raises :class:`ServiceClientError` when the job fails or is
        cancelled (the job's error message is included).
        """
        spec = JobSpec.from_parts(netlist, hierarchy, config)
        submitted = self.submit_spec(spec, deadline=deadline)
        status = self.wait(
            str(submitted["job_id"]),
            timeout=timeout,
            poll_interval=poll_interval,
        )
        if status["state"] != JobState.DONE.value:
            raise ServiceClientError(
                f"job {status['job_id']} ended {status['state']}: "
                f"{status.get('error', 'no detail')}"
            )
        payload = self.result(str(status["job_id"]))
        return FlowHTPResult.from_dict(payload["result"])

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
        idempotent: bool = False,
    ) -> Dict[str, object]:
        """One HTTP exchange; idempotent requests retry reset connections.

        The retry budget and backoff curve come from ``self.tolerance``
        (``task_retries`` waves of ``backoff(wave)`` sleep), the same
        budgets every other recovery ladder in the repo uses.
        """
        retries = self.tolerance.task_retries if idempotent else 0
        wave = 0
        while True:
            try:
                return self._request_once(method, path, body)
            except _RETRYABLE as exc:
                if wave >= retries:
                    raise ServiceClientError(
                        f"cannot reach service at {self.host}:{self.port}"
                        f" after {wave + 1} attempts: {exc}"
                    ) from exc
                wave += 1
                time.sleep(self.tolerance.backoff(wave))

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            try:
                connection.request(method, path, body=data, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except _RETRYABLE:
                raise  # _request decides whether another attempt is owed
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceClientError(
                    f"cannot reach service at {self.host}:{self.port}: {exc}"
                ) from exc
        finally:
            connection.close()
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceClientError(
                f"{method} {path}: non-JSON response "
                f"(status {response.status})",
                status=response.status,
            ) from exc
        if response.status != 200:
            detail = payload.get("error", repr(raw[:200]))
            error = ServiceClientError(
                f"{method} {path}: {detail}", status=response.status
            )
            retry_after = response.getheader("Retry-After")
            if retry_after is not None:
                try:
                    error.retry_after = float(retry_after)
                except ValueError:
                    pass
            raise error
        return payload
