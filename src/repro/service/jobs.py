"""Job core of the partitioning service: specs, states, and the queue.

A :class:`JobSpec` is the unit of work the service accepts — a netlist,
a hierarchy and a solver configuration, all expressed as plain JSON
scalars so the spec has a *canonical hash*: two submissions that mean
the same partitioning problem (whatever their JSON key order or pin
order inside nets) hash identically, while any change to a solver knob
(seed, engine, delta, ...) changes the hash.  That hash is the service's
content address — the cache key, the dedup key, and the first half of
every job id.

:class:`JobManager` is the asyncio execution core behind the HTTP
server: a bounded-concurrency queue of :class:`Job` records, each
walking the state machine

    queued -> running -> done | failed
    queued | running -> cancelled

with per-job timeouts, cooperative cancellation, retry budgets borrowed
from :class:`repro.core.faults.FaultTolerance`, and a graceful shutdown
that drains in-flight jobs.  Failures are *not* a parallel error path:
every timeout, retry and failure lands on the manager's
:class:`~repro.core.perf.PerfCounters` via ``record_degradation`` —
the same machinery the worker-pool ladder uses.
"""

from __future__ import annotations

import asyncio
import hashlib
import inspect
import itertools
import json
import math
import shutil
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Union

from repro.core.faults import FaultTolerance
from repro.core.flow_htp import FlowHTPConfig, FlowHTPResult, flow_htp
from repro.core.parallel import ParallelConfig
from repro.core.perf import PerfCounters
from repro.core.spreading_metric import ENGINES, SpreadingMetricConfig
from repro.errors import ServiceError, SolverAborted
from repro.service.journal import Journal
from repro.htp.hierarchy import HierarchySpec
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioning.multilevel_flow import (
    MultilevelFlowConfig,
    multilevel_flow_htp,
)

#: Solver knobs a JobSpec config may carry, with the defaults that are
#: baked into the canonical form.  Explicit defaults make hashing
#: total: omitting a key and stating its default are the same spec.
CONFIG_DEFAULTS: Dict[str, object] = {
    "iterations": 2,
    "constructions_per_metric": 4,
    "find_cut_restarts": 2,
    "find_cut_strategy": "both",
    "net_model": "clique",
    "seed": 0,
    "engine": "scipy",
    "alpha": 1.0,
    "delta": 1.0,
    "epsilon": 1e-3,
    "max_rounds": 64,
    "node_sample": 1.0,
    "workers": None,
    "coarsest_size": None,
    "corridor_hops": 2,
    "refine_passes": 3,
}


@dataclass(frozen=True)
class JobSpec:
    """A fully-described partitioning request (netlist + hierarchy + config).

    Build with :meth:`from_parts` (library objects) or
    :meth:`from_payload` (the JSON wire form); either way the stored
    fields are canonical JSON scalars, so :meth:`canonical_hash` is
    stable across processes, submission order and key order.
    """

    netlist: Dict[str, object]
    hierarchy: Dict[str, object]
    config: Dict[str, object]

    # ------------------------------------------------------------------
    @classmethod
    def from_parts(
        cls,
        netlist: Hypergraph,
        hierarchy: HierarchySpec,
        config: Optional[Dict[str, object]] = None,
    ) -> "JobSpec":
        """Build a spec from library objects plus config overrides."""
        doc = {
            "name": netlist.name,
            "num_nodes": netlist.num_nodes,
            "node_sizes": [float(s) for s in netlist.node_sizes()],
            "nets": [list(pins) for pins in netlist.nets()],
            "net_capacities": [float(c) for c in netlist.net_capacities()],
        }
        spec_doc = {
            "capacities": [float(c) for c in hierarchy.capacities],
            "branching": [int(k) for k in hierarchy.branching],
            "weights": [float(w) for w in hierarchy.weights],
        }
        return cls.from_payload(
            {"netlist": doc, "hierarchy": spec_doc, "config": config or {}}
        )

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "JobSpec":
        """Validate and canonicalize the JSON wire form of a spec."""
        if not isinstance(payload, dict):
            raise ServiceError("job spec payload must be a JSON object")
        for section in ("netlist", "hierarchy"):
            if not isinstance(payload.get(section), dict):
                raise ServiceError(f"job spec needs a {section!r} object")
        raw_config = payload.get("config", {})
        if not isinstance(raw_config, dict):
            raise ServiceError("job spec 'config' must be a JSON object")
        unknown = sorted(set(raw_config) - set(CONFIG_DEFAULTS))
        if unknown:
            raise ServiceError(
                f"unknown config keys {unknown}; allowed: "
                f"{sorted(CONFIG_DEFAULTS)}"
            )
        config = dict(CONFIG_DEFAULTS)
        config.update(raw_config)
        allowed_engines = ENGINES + ("multilevel-flow",)
        if config["engine"] not in allowed_engines:
            raise ServiceError(
                f"unknown engine {config['engine']!r} "
                f"(choose from {allowed_engines})"
            )

        raw_netlist = payload["netlist"]
        try:
            netlist = Hypergraph(
                num_nodes=raw_netlist["num_nodes"],
                nets=raw_netlist["nets"],
                node_sizes=raw_netlist.get("node_sizes"),
                net_capacities=raw_netlist.get("net_capacities"),
                name=str(raw_netlist.get("name", "")),
            )
        except KeyError as exc:
            raise ServiceError(f"netlist payload missing field {exc}") from exc
        except Exception as exc:
            raise ServiceError(f"bad netlist payload: {exc}") from exc
        raw_hierarchy = payload["hierarchy"]
        try:
            hierarchy = HierarchySpec(
                capacities=tuple(raw_hierarchy["capacities"]),
                branching=tuple(raw_hierarchy["branching"]),
                weights=tuple(raw_hierarchy["weights"]),
            )
        except KeyError as exc:
            raise ServiceError(
                f"hierarchy payload missing field {exc}"
            ) from exc
        except Exception as exc:
            raise ServiceError(f"bad hierarchy payload: {exc}") from exc

        # Canonical form: the *normalized* netlist (pins sorted and
        # deduplicated by the Hypergraph constructor), explicit sizes
        # and capacities, and a fully-defaulted config.
        canonical_netlist = {
            "name": netlist.name,
            "num_nodes": netlist.num_nodes,
            "node_sizes": [float(s) for s in netlist.node_sizes()],
            "nets": [list(pins) for pins in netlist.nets()],
            "net_capacities": [float(c) for c in netlist.net_capacities()],
        }
        canonical_hierarchy = {
            "capacities": list(hierarchy.capacities),
            "branching": list(hierarchy.branching),
            "weights": list(hierarchy.weights),
        }
        return cls(
            netlist=canonical_netlist,
            hierarchy=canonical_hierarchy,
            config=config,
        )

    # ------------------------------------------------------------------
    def canonical_hash(self) -> str:
        """SHA-256 over the canonical JSON form — the content address.

        The instance name is excluded: a spec is *what* to solve, and
        renaming the netlist does not change the problem.
        """
        doc = {
            "netlist": {
                k: v for k, v in self.netlist.items() if k != "name"
            },
            "hierarchy": self.hierarchy,
            "config": self.config,
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def to_payload(self) -> Dict[str, object]:
        """The JSON wire form (already canonical)."""
        return {
            "netlist": dict(self.netlist),
            "hierarchy": dict(self.hierarchy),
            "config": dict(self.config),
        }

    # ------------------------------------------------------------------
    def build_netlist(self) -> Hypergraph:
        """The spec's netlist as a library object."""
        return Hypergraph(
            num_nodes=self.netlist["num_nodes"],
            nets=self.netlist["nets"],
            node_sizes=self.netlist["node_sizes"],
            net_capacities=self.netlist["net_capacities"],
            name=str(self.netlist.get("name", "")),
        )

    def build_hierarchy(self) -> HierarchySpec:
        """The spec's hierarchy as a library object."""
        return HierarchySpec(
            capacities=tuple(self.hierarchy["capacities"]),
            branching=tuple(self.hierarchy["branching"]),
            weights=tuple(self.hierarchy["weights"]),
        )

    def build_multilevel_config(self) -> MultilevelFlowConfig:
        """The spec's V-cycle configuration (``engine: multilevel-flow``)."""
        config = self.config
        workers = config["workers"]
        return MultilevelFlowConfig(
            coarsest_size=(
                None
                if config["coarsest_size"] is None
                else int(config["coarsest_size"])
            ),
            corridor_hops=int(config["corridor_hops"]),
            refine_passes=int(config["refine_passes"]),
            engine="parallel" if workers else "scipy",
            workers=None if workers is None else int(workers),
            seed=int(config["seed"]),
        )

    def build_config(self) -> FlowHTPConfig:
        """The spec's solver configuration as a library object."""
        config = self.config
        parallel = None
        if config["engine"] == "parallel":
            parallel = ParallelConfig(workers=config["workers"])
        return FlowHTPConfig(
            iterations=int(config["iterations"]),
            constructions_per_metric=int(config["constructions_per_metric"]),
            find_cut_restarts=int(config["find_cut_restarts"]),
            find_cut_strategy=str(config["find_cut_strategy"]),
            net_model=str(config["net_model"]),
            seed=int(config["seed"]),
            metric=SpreadingMetricConfig(
                alpha=float(config["alpha"]),
                delta=float(config["delta"]),
                epsilon=float(config["epsilon"]),
                max_rounds=int(config["max_rounds"]),
                engine=str(config["engine"]),
                seed=int(config["seed"]),
                node_sample=float(config["node_sample"]),
            ),
            parallel=parallel,
        )


@dataclass
class JobContext:
    """Durability hooks the manager threads into the solver runner.

    ``checkpoint_dir`` doubles as the resume source: the runner always
    tries to restore from it, so a job requeued after a crash picks up
    the dead process's newest valid checkpoint automatically.
    ``abort_check`` is the cooperative cancel/deadline poll the solver
    calls at every round boundary.
    """

    checkpoint_dir: Optional[Path] = None
    checkpoint_every: int = 1
    abort_check: Optional[Callable[[], object]] = None


class AdmissionError(ServiceError):
    """A submission refused by admission control (bounded queue depth).

    Carries the ``retry_after`` hint (seconds) the HTTP layer turns into
    a 429 response with a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


def run_spec(
    spec: JobSpec, context: Optional[JobContext] = None
) -> FlowHTPResult:
    """Solve a spec synchronously (the default job runner).

    With a :class:`JobContext` the solve is durable: round checkpoints
    land in ``context.checkpoint_dir`` (which is also consulted for a
    resume first) and ``context.abort_check`` is polled every round.

    ``engine: multilevel-flow`` dispatches to the V-cycle
    (:func:`repro.partitioning.multilevel_flow.multilevel_flow_htp`);
    it honours ``abort_check`` but not round checkpoints — a cancelled
    V-cycle job restarts from scratch (the coarse instance is small, so
    there is little to checkpoint).
    """
    if spec.config["engine"] == "multilevel-flow":
        return multilevel_flow_htp(
            spec.build_netlist(),
            spec.build_hierarchy(),
            spec.build_multilevel_config(),
            abort_check=context.abort_check if context else None,
        )
    if context is None:
        return flow_htp(
            spec.build_netlist(), spec.build_hierarchy(), spec.build_config()
        )
    return flow_htp(
        spec.build_netlist(),
        spec.build_hierarchy(),
        spec.build_config(),
        checkpoint_dir=context.checkpoint_dir,
        checkpoint_every=context.checkpoint_every,
        resume_from=context.checkpoint_dir,
        abort_check=context.abort_check,
    )


class JobState(str, Enum):
    """Lifecycle states of a job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: Legal state-machine moves; anything else raises :class:`ServiceError`.
_TRANSITIONS = {
    JobState.QUEUED: {JobState.RUNNING, JobState.CANCELLED},
    JobState.RUNNING: {JobState.DONE, JobState.FAILED, JobState.CANCELLED},
    JobState.DONE: set(),
    JobState.FAILED: set(),
    JobState.CANCELLED: set(),
}

#: States a job can never leave.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)

#: Queue sentinel telling a worker task to exit its loop at shutdown.
_STOP = object()


@dataclass
class Job:
    """One submission walking the job state machine."""

    job_id: str
    spec_hash: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    cached: bool = False
    error: Optional[str] = None
    result_payload: Optional[Dict[str, object]] = None
    submitted_at: float = field(default_factory=time.time)
    finished_at: Optional[float] = None
    cancel_requested: bool = False
    deadline_epoch: Optional[float] = None
    recovered: bool = False

    def transition(self, new_state: JobState) -> None:
        """Move to ``new_state``, enforcing the legal transitions."""
        if new_state not in _TRANSITIONS[self.state]:
            raise ServiceError(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state
        if new_state in TERMINAL_STATES:
            self.finished_at = time.time()

    def status(self) -> Dict[str, object]:
        """The JSON status document served by ``GET /jobs/<id>``."""
        doc: Dict[str, object] = {
            "job_id": self.job_id,
            "spec_hash": self.spec_hash,
            "state": self.state.value,
            "cached": self.cached,
            "submitted_at": self.submitted_at,
        }
        if self.finished_at is not None:
            doc["finished_at"] = self.finished_at
        if self.deadline_epoch is not None:
            doc["deadline_epoch"] = self.deadline_epoch
        if self.recovered:
            doc["recovered"] = True
        if self.error is not None:
            doc["error"] = self.error
        if self.state == JobState.DONE and self.result_payload is not None:
            doc["cost"] = self.result_payload["result"]["cost"]
        return doc


class JobManager:
    """Asyncio job queue with bounded concurrency and graceful shutdown.

    Parameters
    ----------
    max_concurrency:
        Jobs solved simultaneously (each on its own executor thread).
    cache:
        Optional :class:`repro.service.cache.ResultCache`; hits complete
        submissions instantly in state ``done`` without touching the
        solver.
    job_timeout:
        Default per-job wall-clock budget in seconds (None: take
        ``tolerance.task_deadline``; that too None means no timeout).
    tolerance:
        :class:`~repro.core.faults.FaultTolerance` recovery budgets —
        ``task_retries`` failed-solve resubmissions with
        ``backoff_base``/``backoff_cap`` exponential backoff, and
        ``task_deadline`` as the fallback job timeout.
    runner:
        The blocking solve callable ``spec -> FlowHTPResult`` (tests
        inject slow/failing stand-ins; defaults to :func:`run_spec`).
        Runners that declare a ``context`` keyword additionally receive
        a :class:`JobContext` with the per-job checkpoint directory and
        abort poll; legacy single-argument runners still work.
    counters:
        Shared :class:`PerfCounters`; job failures, retries, timeouts
        and cancellations are recorded here via ``record_degradation``
        (site ``"service"``) and every completed solve's counters are
        merged in.
    journal:
        Optional :class:`~repro.service.journal.Journal`; every
        lifecycle transition is appended *before* the in-memory state
        moves, and :meth:`recover` replays it after a restart.
    checkpoint_root:
        Optional directory; each running job checkpoints under
        ``<root>/<spec_hash>/`` and a requeued job resumes from there.
        Pruned when the job completes.
    checkpoint_every:
        Solver round-checkpoint cadence (see ``flow_htp``).
    max_queue_depth:
        Admission control: submissions beyond this many queued jobs
        raise :class:`AdmissionError` (None: unbounded).
    """

    def __init__(
        self,
        max_concurrency: int = 2,
        cache=None,
        job_timeout: Optional[float] = None,
        tolerance: Optional[FaultTolerance] = None,
        runner: Optional[Callable[..., FlowHTPResult]] = None,
        counters: Optional[PerfCounters] = None,
        journal: Optional[Journal] = None,
        checkpoint_root: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1,
        max_queue_depth: Optional[int] = None,
    ) -> None:
        if max_concurrency < 1:
            raise ServiceError("max_concurrency must be at least 1")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ServiceError("max_queue_depth must be at least 1")
        self.counters = counters if counters is not None else PerfCounters()
        self.cache = cache
        if cache is not None and cache.counters is not self.counters:
            # One instrument for the whole service: fold any traffic the
            # cache counted pre-adoption into the manager's struct, then
            # share it so hits/misses/evictions land beside the solver
            # counters.
            self.counters.merge(cache.counters)
            cache.counters = self.counters
        self.tolerance = tolerance or FaultTolerance()
        if job_timeout is None:
            job_timeout = self.tolerance.task_deadline
        self.job_timeout = job_timeout
        self._runner = runner or run_spec
        try:
            parameters = inspect.signature(self._runner).parameters
            self._runner_takes_context = "context" in parameters or any(
                p.kind is inspect.Parameter.VAR_KEYWORD
                for p in parameters.values()
            )
        except (TypeError, ValueError):
            self._runner_takes_context = False
        self.journal = journal
        if journal is not None and journal.counters is not self.counters:
            self.counters.merge(journal.counters)
            journal.counters = self.counters
        self.checkpoint_root = (
            Path(checkpoint_root) if checkpoint_root is not None else None
        )
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.max_queue_depth = max_queue_depth
        self._queued = 0
        self._durations: Deque[float] = deque(maxlen=16)
        self._max_concurrency = max_concurrency
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "asyncio.Queue[str]" = asyncio.Queue()
        self._workers: List[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._sequence = itertools.count(1)
        self._accepting = True
        self._started = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._in_flight = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def accepting(self) -> bool:
        """Whether :meth:`submit` currently accepts new jobs."""
        return self._accepting

    async def start(self) -> None:
        """Spawn the worker tasks (idempotent)."""
        if self._started:
            return
        self._started = True
        self._executor = ThreadPoolExecutor(
            max_workers=self._max_concurrency,
            thread_name_prefix="repro-job",
        )
        for index in range(self._max_concurrency):
            self._workers.append(
                asyncio.create_task(self._worker(), name=f"job-worker-{index}")
            )

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the manager.

        With ``drain=True`` (graceful): refuse new submissions, let
        RUNNING jobs finish, and cancel everything still QUEUED.  With
        ``drain=False``: additionally request cancellation of RUNNING
        jobs (their executor threads finish in the background; results
        are discarded).
        """
        self._accepting = False
        for job in self._jobs.values():
            if job.state == JobState.QUEUED:
                self._cancel_queued(job)
            elif job.state == JobState.RUNNING and not drain:
                job.cancel_requested = True
        if drain:
            await self._idle.wait()
        else:
            # Interrupt in-flight solves.  Termination does NOT rely on
            # this cancellation being delivered: on 3.11 ``wait_for``
            # swallows a cancel that races a just-completed executor
            # future, leaving the worker alive in "cancelling" state.
            # The sentinels below end the loop either way.
            for worker in self._workers:
                worker.cancel()
        for _ in self._workers:
            self._queue.put_nowait(_STOP)
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._executor is not None:
            self._executor.shutdown(wait=drain, cancel_futures=True)
            self._executor = None
        if self.journal is not None:
            self.journal.close()
        self._started = False

    # ------------------------------------------------------------------
    # Submission / queries
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec, deadline: Optional[float] = None) -> Job:
        """Enqueue a spec; returns the job (may already be ``done``).

        A cache hit never reaches the queue: the job is created directly
        in state ``done`` with the cached payload and ``cached=True``.
        ``deadline`` (seconds from now) bounds the job's wall clock: it
        caps the solve timeout and is polled by the solver at every
        round boundary, so an expiring job exits cleanly with a final
        checkpoint on disk.  With ``max_queue_depth`` set, submissions
        beyond that many queued jobs raise :class:`AdmissionError`.
        """
        if not self._accepting:
            raise ServiceError("service is shutting down; not accepting jobs")
        if (
            self.max_queue_depth is not None
            and self._queued >= self.max_queue_depth
        ):
            self.counters.admission_rejections += 1
            retry_after = self.retry_after()
            self.counters.record_degradation(
                "job-rejected",
                f"queue depth {self._queued} at limit {self.max_queue_depth}",
                site="service",
            )
            raise AdmissionError(
                f"queue is full ({self._queued} jobs queued, limit "
                f"{self.max_queue_depth}); retry in {retry_after:g}s",
                retry_after=retry_after,
            )
        spec_hash = spec.canonical_hash()
        job_id = f"{spec_hash[:12]}-{next(self._sequence):04d}"
        job = Job(job_id=job_id, spec_hash=spec_hash, spec=spec)
        if deadline is not None:
            job.deadline_epoch = time.time() + float(deadline)
        self._jobs[job_id] = job
        self._order.append(job_id)
        record = {
            "type": "submitted",
            "job_id": job_id,
            "spec_hash": spec_hash,
            "spec": spec.to_payload(),
            "submitted_at": job.submitted_at,
        }
        if job.deadline_epoch is not None:
            record["deadline_epoch"] = job.deadline_epoch
        self._journal_append(record)
        cached = self.cache.get(spec_hash) if self.cache is not None else None
        if cached is not None:
            job.cached = True
            job.result_payload = cached
            job.transition(JobState.RUNNING)
            job.transition(JobState.DONE)
            self._journal_state(job)
            return job
        self._enqueue(job)
        return job

    def get(self, job_id: str) -> Job:
        """The job record, or :class:`ServiceError` if unknown."""
        try:
            return self._jobs[job_id]
        except KeyError as exc:
            raise ServiceError(f"unknown job id {job_id!r}") from exc

    def jobs(self) -> List[Job]:
        """All jobs in submission order."""
        return [self._jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> Job:
        """Cancel a job; no-op for jobs already in a terminal state.

        QUEUED jobs are cancelled immediately; RUNNING jobs get
        ``cancel_requested`` set and report ``cancelled`` once their
        solve returns (the result is discarded, not cached).
        """
        job = self.get(job_id)
        if job.state == JobState.QUEUED:
            self._cancel_queued(job)
        elif job.state == JobState.RUNNING:
            job.cancel_requested = True
        return job

    def state_counts(self) -> Dict[str, int]:
        """Jobs per state (the ``healthz`` summary)."""
        counts = {state.value: 0 for state in JobState}
        for job in self._jobs.values():
            counts[job.state.value] += 1
        return counts

    def queue_depth(self) -> int:
        """Jobs accepted but not yet running (the admission gauge)."""
        return self._queued

    @property
    def in_flight(self) -> int:
        """Jobs accepted and not yet settled (queued + running) — the
        load figure a cluster worker reports on its heartbeats."""
        return self._in_flight

    @property
    def max_concurrency(self) -> int:
        """The worker-pool width announced to a cluster router."""
        return self._max_concurrency

    def retry_after(self) -> float:
        """Seconds a rejected client should wait before resubmitting.

        Estimated from recent solve durations and the queue backlog;
        clamped to [1, 60] so the hint is always actionable.
        """
        if self._durations:
            avg = sum(self._durations) / len(self._durations)
        else:
            avg = 1.0
        estimate = avg * (self._queued / max(1, self._max_concurrency) + 1.0)
        return float(min(60.0, max(1.0, math.ceil(estimate))))

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> Dict[str, int]:
        """Rebuild job state from the journal after a restart.

        The contract, per journal-derived state:

        * ``done`` — re-served from the content-addressed cache without
          re-running; if the cached result is gone (or corrupt and
          quarantined), the job is requeued instead.
        * ``queued`` — requeued in original submission order.
        * ``running`` — requeued; the runner resumes from the dead
          process's newest valid checkpoint under ``checkpoint_root``.
        * ``failed`` / ``cancelled`` — restored terminal, for status.

        Jobs whose deadline expired during the outage fail immediately
        rather than burning solver time.  Returns summary counts and
        journals every recovery-time decision, so a second crash replays
        to the same place.
        """
        summary = {
            "recovered": 0,
            "done_from_cache": 0,
            "requeued": 0,
            "terminal": 0,
            "expired": 0,
            "skipped": 0,
        }
        if self.journal is None:
            return summary
        state = self.journal.recover()
        now = time.time()
        max_sequence = 0
        for recovered in state.in_order():
            try:
                spec = JobSpec.from_payload(dict(recovered.spec_payload))
            except ServiceError as exc:
                summary["skipped"] += 1
                self.counters.record_degradation(
                    "recover-skip", exc, site="service"
                )
                continue
            job = Job(
                job_id=recovered.job_id,
                spec_hash=recovered.spec_hash,
                spec=spec,
                submitted_at=(
                    recovered.submitted_at
                    if recovered.submitted_at is not None
                    else now
                ),
                deadline_epoch=recovered.deadline_epoch,
                recovered=True,
            )
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
            summary["recovered"] += 1
            suffix = recovered.job_id.rsplit("-", 1)[-1]
            if suffix.isdigit():
                max_sequence = max(max_sequence, int(suffix))
            if recovered.state == "done":
                cached = (
                    self.cache.get(recovered.spec_hash)
                    if self.cache is not None
                    else None
                )
                if cached is not None:
                    job.cached = True
                    job.result_payload = cached
                    job.state = JobState.DONE
                    job.finished_at = now
                    summary["done_from_cache"] += 1
                    # Fold the job's recorded solver counters back into
                    # the manager's struct: ``/metricsz`` after a
                    # restart must account for work the dead process
                    # did, exactly as if the job had completed here.
                    result = cached.get("result")
                    if isinstance(result, dict) and isinstance(
                        result.get("perf"), dict
                    ):
                        self.counters.merge(
                            PerfCounters.from_dict(result["perf"])
                        )
                    continue
                # The journal promised a result the cache no longer
                # holds (lost or quarantined blob): solve it again.
                self._journal_append(
                    {"type": "requeued", "job_id": job.job_id, "ts": now}
                )
                self._enqueue(job)
                summary["requeued"] += 1
                continue
            if recovered.state in ("failed", "cancelled"):
                job.state = JobState(recovered.state)
                job.error = recovered.error
                job.finished_at = now
                summary["terminal"] += 1
                continue
            # queued or running: the work is still owed.
            if job.deadline_epoch is not None and job.deadline_epoch <= now:
                job.state = JobState.FAILED
                job.error = "deadline expired while the service was down"
                job.finished_at = now
                self._journal_state(job)
                self.counters.record_degradation(
                    "job-timeout", job.error, site="service"
                )
                summary["expired"] += 1
                continue
            if recovered.state == "running":
                self._journal_append(
                    {"type": "requeued", "job_id": job.job_id, "ts": now}
                )
            self._enqueue(job)
            summary["requeued"] += 1
        if max_sequence:
            self._sequence = itertools.count(max_sequence + 1)
        return summary

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _enqueue(self, job: Job) -> None:
        self._idle.clear()
        self._in_flight += 1
        self._queued += 1
        self._queue.put_nowait(job.job_id)

    def _journal_append(self, record: Dict[str, object]) -> None:
        if self.journal is not None:
            self.journal.append(record)

    def _journal_state(self, job: Job) -> None:
        """Append ``job``'s current state as a lifecycle record."""
        if self.journal is None:
            return
        record: Dict[str, object] = {
            "type": "state",
            "job_id": job.job_id,
            "state": job.state.value,
            "ts": time.time(),
        }
        if job.error is not None:
            record["error"] = job.error
        if job.cached:
            record["cached"] = True
        self.journal.append(record)

    def _job_context(self, job: Job) -> JobContext:
        checkpoint_dir = None
        if self.checkpoint_root is not None:
            checkpoint_dir = self.checkpoint_root / job.spec_hash

        def abort_check() -> object:
            if job.cancel_requested:
                return "cancel requested"
            if (
                job.deadline_epoch is not None
                and time.time() >= job.deadline_epoch
            ):
                return "deadline exceeded"
            return False

        return JobContext(
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=self.checkpoint_every,
            abort_check=abort_check,
        )

    def _call_runner(self, job: Job) -> FlowHTPResult:
        if self._runner_takes_context:
            return self._runner(job.spec, context=self._job_context(job))
        return self._runner(job.spec)

    def _prune_checkpoints(self, job: Job) -> None:
        if self.checkpoint_root is not None:
            shutil.rmtree(
                self.checkpoint_root / job.spec_hash, ignore_errors=True
            )

    def _cancel_queued(self, job: Job) -> None:
        job.cancel_requested = True
        job.transition(JobState.CANCELLED)
        self._journal_state(job)
        self.counters.record_degradation(
            "job-cancelled", "cancelled while queued", site="service"
        )
        self._queued -= 1
        self._job_settled()

    def _job_settled(self) -> None:
        self._in_flight -= 1
        if self._in_flight == 0:
            self._idle.set()

    async def _worker(self) -> None:
        while True:
            job_id = await self._queue.get()
            if job_id is _STOP:
                return
            job = self._jobs[job_id]
            try:
                if job.state == JobState.CANCELLED:
                    continue  # cancelled while queued; already settled
                self._queued -= 1
                job.transition(JobState.RUNNING)
                self._journal_state(job)
                try:
                    await self._run_job(job)
                except asyncio.CancelledError:
                    # Hard shutdown (drain=False) killed the worker task
                    # mid-solve: report the job cancelled, not stuck.
                    if job.state == JobState.RUNNING:
                        job.error = "worker cancelled at shutdown"
                        job.transition(JobState.CANCELLED)
                        self._journal_state(job)
                        self.counters.record_degradation(
                            "job-cancelled", job.error, site="service"
                        )
                    raise
                finally:
                    self._job_settled()
            finally:
                self._queue.task_done()

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        retries = self.tolerance.task_retries
        attempt = 0
        started = time.monotonic()
        timeout = self.job_timeout
        if job.deadline_epoch is not None:
            remaining = job.deadline_epoch - time.time()
            if remaining <= 0:
                job.error = "deadline expired before the solve started"
                job.transition(JobState.FAILED)
                self._journal_state(job)
                self.counters.record_degradation(
                    "job-timeout", job.error, site="service"
                )
                return
            timeout = remaining if timeout is None else min(timeout, remaining)
        while True:
            attempt += 1
            try:
                future = loop.run_in_executor(
                    self._executor, self._call_runner, job
                )
                if timeout is not None:
                    result = await asyncio.wait_for(future, timeout)
                else:
                    result = await future
            except asyncio.TimeoutError:
                job.error = f"timed out after {timeout:g}s"
                job.transition(JobState.FAILED)
                self._journal_state(job)
                self.counters.record_degradation(
                    "job-timeout", job.error, site="service"
                )
                return
            except SolverAborted as exc:
                # The solver exited cooperatively (cancel or deadline),
                # leaving a final checkpoint on disk — never retried.
                job.error = str(exc)
                if job.cancel_requested:
                    job.transition(JobState.CANCELLED)
                    self._journal_state(job)
                    self.counters.record_degradation(
                        "job-cancelled", exc, site="service"
                    )
                else:
                    job.transition(JobState.FAILED)
                    self._journal_state(job)
                    self.counters.record_degradation(
                        "job-timeout", exc, site="service"
                    )
                return
            except Exception as exc:
                if job.cancel_requested:
                    job.error = repr(exc)
                    job.transition(JobState.CANCELLED)
                    self._journal_state(job)
                    self.counters.record_degradation(
                        "job-cancelled", exc, site="service"
                    )
                    return
                if attempt <= retries:
                    self.counters.pool_task_retries += 1
                    self.counters.record_degradation(
                        "job-retry", exc, site="service"
                    )
                    await asyncio.sleep(
                        min(
                            self.tolerance.backoff_cap,
                            self.tolerance.backoff_base * 2 ** (attempt - 1),
                        )
                    )
                    continue
                job.error = repr(exc)
                job.transition(JobState.FAILED)
                self._journal_state(job)
                self.counters.record_degradation(
                    "job-failed", exc, site="service"
                )
                return
            break

        if job.cancel_requested:
            job.transition(JobState.CANCELLED)
            self._journal_state(job)
            self.counters.record_degradation(
                "job-cancelled",
                "cancelled while running; result discarded",
                site="service",
            )
            return
        payload = {
            "spec_hash": job.spec_hash,
            "result": result.to_dict(),
        }
        if result.perf is not None:
            self.counters.merge(result.perf)
        if self.cache is not None:
            self.cache.put(job.spec_hash, payload)
        job.result_payload = payload
        self._durations.append(time.monotonic() - started)
        # The WAL claims "done" only once the result is safely in the
        # cache's durable tier — recovery re-serves it from there.
        job.transition(JobState.DONE)
        self._journal_state(job)
        self._prune_checkpoints(job)
