"""Stdlib-only HTTP front end of the partitioning service.

``asyncio.start_server`` plus hand-rolled HTTP/1.0 framing — no new
dependencies.  One request per connection (the thin client opens a
fresh connection per call), JSON bodies both ways.

Endpoints
---------
=======  =======================  ==========================================
method   path                     meaning
=======  =======================  ==========================================
POST     ``/jobs``                submit a JobSpec payload; returns the job
GET      ``/jobs``                list all jobs (submission order)
GET      ``/jobs/<id>``           job status
GET      ``/jobs/<id>/result``    result payload (409 until ``done``)
POST     ``/jobs/<id>/cancel``    cancel a queued/running job
GET      ``/healthz``             liveness + per-state job counts
GET      ``/metricsz``            merged PerfCounters + cache stats
GET      ``/cache/<hash>``        durable-cache read-through (cluster)
PUT      ``/cache/<hash>``        result replica install (cluster)
GET      ``/ckpt/<hash>``         checkpoint frame listing (cluster)
GET      ``/ckpt/<hash>/<seq>``   one CRC-stamped checkpoint frame
PUT      ``/ckpt/<hash>/<seq>``   checkpoint frame replica install
=======  =======================  ==========================================

Error responses are ``{"error": ...}`` with conventional status codes:
400 malformed request/spec, 404 unknown job, 405 wrong method, 409
result not ready, 429 queue full (with a ``Retry-After`` header), 503
shutting down.  A submission may carry a top-level ``deadline`` (seconds
of wall clock the client will wait); it caps the job timeout and is
polled by the solver every round, but is *not* part of the spec's
content address.

:class:`PartitionServer` is the asyncio server; :class:`ServerThread`
runs one on a daemon thread for embedding in synchronous code (tests,
benchmarks, the smoke script); :func:`serve` is the blocking entry point
behind ``htp serve`` with signal-driven graceful shutdown.  The raw
HTTP/1.0 plumbing lives in :class:`HttpServerBase` so the cluster
router (:mod:`repro.service.cluster.router`) speaks the identical wire
dialect without copying the framing code.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import signal
import threading
from typing import Dict, Optional, Tuple

from repro.core.checkpoint import (
    install_checkpoint_frame,
    list_checkpoint_frames,
    newest_checkpoint_age,
)
from repro.errors import ServiceError
from repro.service.jobs import AdmissionError, JobManager, JobSpec, JobState

_HEX = frozenset("0123456789abcdef")

#: Largest accepted request body (netlists are a few MB at paper scale).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Default TCP port of ``htp serve`` / ``htp submit``.
DEFAULT_PORT = 8947

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Internal: aborts handling with a status code and message."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


class HttpServerBase:
    """Shared asyncio HTTP/1.0 plumbing of the service and the router.

    Subclasses implement ``_route(method, path, body) -> (status,
    payload)`` — synchronous or ``async`` (the connection handler awaits
    coroutines transparently) — and may raise :class:`_HttpError` /
    :class:`ServiceError` for conventional error responses.  Binding,
    framing, error mapping and teardown live here once.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port  # replaced by the bound port after binding
        self._server: Optional[asyncio.AbstractServer] = None

    async def _bind(self) -> None:
        """Bind the listening socket and learn the ephemeral port."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _unbind(self) -> None:
        """Stop accepting connections (idempotent)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        """The base URL clients should use."""
        return f"http://{self.host}:{self.port}"

    def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        raise NotImplementedError  # pragma: no cover - interface

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            headers: Dict[str, str] = {}
            try:
                method, path, body = await self._read_request(reader)
                routed = self._route(method, path, body)
                if inspect.isawaitable(routed):
                    routed = await routed
                status, payload = routed
            except _HttpError as exc:
                status, payload = exc.status, {"error": exc.message}
                headers = exc.headers
            except ServiceError as exc:
                status, payload = 400, {"error": str(exc)}
            except Exception as exc:  # pragma: no cover - defensive
                status, payload = 500, {"error": repr(exc)}
            await self._write_response(writer, status, payload, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {request_line!r}")
        method, path, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _sep, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError as exc:
                    raise _HttpError(400, "bad Content-Length") from exc
        if content_length > MAX_BODY_BYTES:
            raise _HttpError(
                413, f"body exceeds {MAX_BODY_BYTES} byte limit"
            )
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return method.upper(), path, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"HTTP/1.0 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}, not {method}")

    @staticmethod
    def _json_body(body: bytes) -> Dict[str, object]:
        """Decode a JSON object body, mapping failures to 400."""
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise _HttpError(400, "body must be a JSON object")
        return payload


class PartitionServer(HttpServerBase):
    """The asyncio HTTP server wrapping a :class:`JobManager`.

    A clustered worker additionally carries ``cluster_view`` (the
    :class:`~repro.service.cluster.replication.ClusterView` its agent
    keeps current — used to fence forwards from zombie routers) and
    ``replicator`` (the checkpoint replicator consulted before solving a
    forwarded job this worker has nothing local for).  Both stay None on
    a plain single-box ``htp serve``.
    """

    def __init__(
        self,
        manager: JobManager,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__(host=host, port=port)
        self.manager = manager
        self.cluster_view = None
        self.replicator = None
        self.recovery_summary: Dict[str, int] = {}

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the manager, replay the journal, bind the socket.

        Recovery runs *before* the socket accepts its first request, so
        clients never observe a half-recovered job table; the summary is
        kept on :attr:`recovery_summary` for the CLI to announce.
        """
        await self.manager.start()
        self.recovery_summary = self.manager.recover()
        await self._bind()

    async def stop(self, drain: bool = True) -> None:
        """Stop listening, then shut the manager down (drain by default)."""
        await self._unbind()
        await self.manager.shutdown(drain=drain)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._require(method, "GET")
            return 200, {
                "status": "ok",
                "accepting": self.manager.accepting,
                "jobs": self.manager.state_counts(),
            }
        if path == "/metricsz":
            self._require(method, "GET")
            manager = self.manager
            cache = manager.cache
            checkpoints = None
            if manager.checkpoint_root is not None:
                checkpoints = {
                    "root": str(manager.checkpoint_root),
                    "newest_age_seconds": newest_checkpoint_age(
                        manager.checkpoint_root
                    ),
                }
            return 200, {
                "perf": manager.counters.as_dict(),
                "cache": cache.stats() if cache is not None else None,
                "queue": {
                    "depth": manager.queue_depth(),
                    "max_depth": manager.max_queue_depth,
                    "rejections": manager.counters.admission_rejections,
                    "retry_after": manager.retry_after(),
                },
                "journal": (
                    manager.journal.stats()
                    if manager.journal is not None
                    else None
                ),
                "checkpoints": checkpoints,
            }
        if path == "/jobs":
            if method == "POST":
                return self._submit(body)
            self._require(method, "GET")
            return 200, {
                "jobs": [job.status() for job in self.manager.jobs()]
            }
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if rest.endswith("/result"):
                self._require(method, "GET")
                return self._result(rest[: -len("/result")])
            if rest.endswith("/cancel"):
                self._require(method, "POST")
                return self._cancel(rest[: -len("/cancel")])
            self._require(method, "GET")
            return 200, self._job(rest).status()
        if path.startswith("/cache/"):
            # The cluster read-through tier: the router answers a warm
            # submission from *any* worker's durable cache by asking the
            # owner directly for the content address.  PUT is the
            # write-through half — the router replicating a fresh result
            # here so it survives its producer's death.
            spec_hash = path[len("/cache/"):]
            if method == "PUT":
                return self._cache_install(spec_hash, body)
            self._require(method, "GET")
            return self._cache_lookup(spec_hash)
        if path.startswith("/ckpt/"):
            return self._ckpt_route(method, path[len("/ckpt/"):], body)
        raise _HttpError(404, f"no such endpoint {path!r}")

    def _cache_lookup(self, spec_hash: str) -> Tuple[int, Dict[str, object]]:
        cache = self.manager.cache
        if cache is None:
            raise _HttpError(404, "this worker runs without a result cache")
        try:
            payload = cache.get(spec_hash)
        except ServiceError as exc:  # malformed key
            raise _HttpError(400, str(exc)) from exc
        if payload is None:
            raise _HttpError(
                404, f"no cached result for content address {spec_hash}"
            )
        return 200, dict(payload)

    def _cache_install(
        self, spec_hash: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        cache = self.manager.cache
        if cache is None:
            raise _HttpError(404, "this worker runs without a result cache")
        payload = self._json_body(body)
        try:
            # ``put`` validates the payload's own spec_hash matches the
            # content address, so a replica can never poison the cache.
            cache.put(spec_hash, payload)
        except ServiceError as exc:
            raise _HttpError(400, str(exc)) from exc
        return 200, {"spec_hash": spec_hash, "stored": True}

    # ------------------------------------------------------------------
    # Checkpoint replication endpoints (cluster failover)
    # ------------------------------------------------------------------
    def _ckpt_route(
        self, method: str, rest: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        root = self.manager.checkpoint_root
        if root is None:
            raise _HttpError(
                404, "this worker runs without a checkpoint root"
            )
        spec_hash, _, seq_text = rest.partition("/")
        if not spec_hash or not set(spec_hash) <= _HEX:
            # Content addresses are hex; anything else (notably path
            # segments) never touches the filesystem.
            raise _HttpError(400, f"bad content address {spec_hash!r}")
        if not seq_text:
            self._require(method, "GET")
            frames = list_checkpoint_frames(root / spec_hash)
            return 200, {
                "spec_hash": spec_hash,
                "frames": [seq for seq, _path in frames],
            }
        try:
            seq = int(seq_text)
        except ValueError as exc:
            raise _HttpError(
                400, f"bad frame sequence {seq_text!r}"
            ) from exc
        if method == "PUT":
            envelope = self._json_body(body)
            written = install_checkpoint_frame(
                root / spec_hash, seq, envelope,
                counters=self.manager.counters,
            )
            if written is None:
                raise _HttpError(
                    400,
                    f"frame {spec_hash}/{seq} failed its CRC check; "
                    "discarded",
                )
            return 200, {"spec_hash": spec_hash, "seq": seq, "stored": True}
        self._require(method, "GET")
        path = root / spec_hash / f"ckpt-{seq:08d}.json"
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise _HttpError(
                404, f"no frame {seq} for content address {spec_hash}"
            ) from exc
        if not isinstance(envelope, dict):
            raise _HttpError(
                404, f"no frame {seq} for content address {spec_hash}"
            )
        return 200, envelope

    def _job(self, job_id: str):
        try:
            return self.manager.get(job_id)
        except ServiceError as exc:
            raise _HttpError(404, str(exc)) from exc

    def _submit(self, body: bytes) -> Tuple[int, Dict[str, object]]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from exc
        deadline = None
        if isinstance(payload, dict) and "deadline" in payload:
            # The deadline rides beside the spec, never inside it: two
            # submissions with different deadlines are the same problem
            # and must share one content address.
            raw_deadline = payload.pop("deadline")
            try:
                deadline = float(raw_deadline)
            except (TypeError, ValueError) as exc:
                raise _HttpError(
                    400, f"bad deadline {raw_deadline!r}: not a number"
                ) from exc
            if deadline <= 0:
                raise _HttpError(
                    400, f"bad deadline {deadline!r}: must be positive"
                )
        router_epoch = None
        if isinstance(payload, dict) and "router_epoch" in payload:
            # The router's fencing stamp rides beside the spec like the
            # deadline does — never inside the content address.  A stamp
            # older than the newest epoch this worker has seen means the
            # sender is a fenced zombie: refuse with 409 so the job
            # fails at the zombie instead of running twice.
            router_epoch = payload.pop("router_epoch")
            view = self.cluster_view
            if view is not None and not view.admit_epoch(router_epoch):
                raise _HttpError(
                    409,
                    f"stale router epoch {router_epoch!r}; this worker "
                    f"has seen epoch {view.epoch}",
                )
        spec = JobSpec.from_payload(payload)  # ServiceError -> 400
        if self.replicator is not None and router_epoch is not None:
            # Failover read path: a forwarded job this worker holds
            # nothing for may have replicated checkpoint frames on its
            # peers — pull them in before the solve so ``resume_from``
            # continues the dead owner's run bit-identically.  Guarded
            # by the cache: a result we already hold needs no frames.
            spec_hash = spec.canonical_hash()
            cache = self.manager.cache
            if cache is None or spec_hash not in cache.keys():
                try:
                    self.replicator.fetch(spec_hash)
                except Exception:  # pragma: no cover - defensive
                    pass  # replication is best-effort; solve from scratch
        try:
            job = self.manager.submit(spec, deadline=deadline)
        except AdmissionError as exc:
            # ``:g`` keeps fractional hints intact on the wire — an
            # ``int()`` here used to truncate a 1.5s ask to 1s.
            raise _HttpError(
                429,
                str(exc),
                headers={"Retry-After": f"{exc.retry_after:g}"},
            ) from exc
        except ServiceError as exc:
            raise _HttpError(503, str(exc)) from exc
        return 200, job.status()

    def _result(self, job_id: str) -> Tuple[int, Dict[str, object]]:
        job = self._job(job_id)
        if job.state != JobState.DONE:
            doc: Dict[str, object] = {
                "error": f"job {job.job_id} is {job.state.value}, not done",
                "state": job.state.value,
            }
            if job.error is not None:
                doc["job_error"] = job.error
            return 409, doc
        return 200, dict(job.result_payload or {})

    def _cancel(self, job_id: str) -> Tuple[int, Dict[str, object]]:
        return 200, self.manager.cancel(self._job(job_id).job_id).status()


class ServerThread:
    """A :class:`PartitionServer` on a daemon thread, for sync callers.

    The constructor blocks until the socket is bound (so ``.port`` and
    ``.url`` are valid immediately); :meth:`stop` performs the graceful
    (or hard) shutdown and joins the thread.  Usable as a context
    manager.
    """

    def __init__(
        self,
        manager_kwargs: Optional[Dict[str, object]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._started = threading.Event()
        self._stop_requested: Optional[asyncio.Event] = None
        self._drain = True
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None
        self._manager_kwargs = dict(manager_kwargs or {})
        self._host = host
        self._requested_port = port
        self.server: Optional[PartitionServer] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        try:
            manager = JobManager(**self._manager_kwargs)
            self.server = PartitionServer(
                manager, host=self._host, port=self._requested_port
            )
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        await self._stop_requested.wait()
        await self.server.stop(drain=self._drain)

    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    @property
    def url(self) -> str:
        assert self.server is not None
        return self.server.url

    @property
    def manager(self) -> JobManager:
        assert self.server is not None
        return self.server.manager

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut down and join the server thread."""
        if self._loop is None or self._stop_requested is None:
            return
        self._drain = drain
        try:
            self._loop.call_soon_threadsafe(self._stop_requested.set)
        except RuntimeError:  # loop already closed
            pass
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def make_worker_agent(
    manager: JobManager, worker_url: str, join_kwargs: Dict[str, object]
):
    """Build the cluster agent for a serving worker (``--join`` wiring).

    ``join_kwargs`` carries ``router_url`` plus the optional identity
    knobs (``worker_id``, ``weight``, ``engines``, ``interval``).  Load
    and cached-keys callbacks are wired to the live manager; the
    advertised concurrency is the manager's own.  Imported lazily so a
    plain single-box ``htp serve`` never touches the cluster package.

    When the manager keeps a checkpoint root, the agent also gets a
    :class:`~repro.service.cluster.replication.CheckpointReplicator`
    that pushes fresh frames to ring-chosen peers on every heartbeat;
    wire the agent's ``view``/``replicator`` onto the
    :class:`PartitionServer` (``serve`` does) to complete the worker's
    fencing and failover-fetch paths.
    """
    from repro.service.cluster.agent import WorkerAgent
    from repro.service.cluster.replication import CheckpointReplicator

    kwargs = dict(join_kwargs)
    router_url = kwargs.pop("router_url")
    cache = manager.cache
    agent = WorkerAgent(
        router_url=router_url,
        worker_url=worker_url,
        max_concurrency=manager.max_concurrency,
        cached_keys=(lambda: cache.keys()) if cache is not None else None,
        load=lambda: manager.in_flight,
        **kwargs,
    )
    if manager.checkpoint_root is not None:
        agent.replicator = CheckpointReplicator(
            manager.checkpoint_root,
            agent.worker_id,
            agent.view,
            counters=manager.counters,
        )
    return agent


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    manager_kwargs: Optional[Dict[str, object]] = None,
    announce=print,
    join_kwargs: Optional[Dict[str, object]] = None,
) -> int:
    """Run a server until SIGINT/SIGTERM, then drain and exit (0).

    The blocking entry point behind ``htp serve``.  ``announce`` gets a
    one-line ``serving on http://...`` message once the socket is bound
    (the smoke script parses it to learn an ephemeral port).  With
    ``join_kwargs`` (``htp serve --join``) the worker also registers
    with a cluster router and heartbeats until shutdown.
    """

    async def _main() -> None:
        manager = JobManager(**(manager_kwargs or {}))
        server = PartitionServer(manager, host=host, port=port)
        await server.start()
        if server.recovery_summary.get("recovered"):
            announce(
                "recovered from journal: "
                + " ".join(
                    f"{name}={count}"
                    for name, count in server.recovery_summary.items()
                    if count
                )
            )
        announce(f"serving on {server.url}")
        agent = None
        if join_kwargs:
            kwargs = dict(join_kwargs)
            advertise_url = kwargs.pop("advertise_url", None) or server.url
            agent = make_worker_agent(manager, advertise_url, kwargs)
            server.cluster_view = agent.view
            server.replicator = agent.replicator
            agent.start()
            announce(
                f"joining cluster at {kwargs['router_url']} "
                f"as {agent.worker_id}"
            )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread / platform without signal support
        await stop.wait()
        announce("shutting down (draining in-flight jobs)")
        if agent is not None:
            await loop.run_in_executor(None, agent.stop)
        await server.stop(drain=True)
        counts = manager.state_counts()
        announce(
            "drained: "
            + " ".join(f"{state}={count}" for state, count in counts.items())
        )

    asyncio.run(_main())
    return 0
