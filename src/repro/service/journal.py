"""Write-ahead job journal: the service's crash-safe source of truth.

Every job lifecycle event — submission (with the full spec payload),
``running``, ``done``, ``failed``, ``cancelled``, and recovery-time
requeues — is appended to one JSON-lines file *before* the in-memory
state machine moves on.  A restarted server replays the journal and owes
its clients exactly what the dead one did: finished jobs are re-served
from the content-addressed cache, queued jobs rejoin the queue in their
original order, and running jobs resume from their newest valid solver
checkpoint.

Record format (one per line)::

    {"crc32": "<hex>", "record": {"type": ..., "job_id": ..., ...}}

The CRC-32 is computed over the canonical JSON form of ``record``.  A
line that fails to parse or fails its CRC — the torn tail a SIGKILL
leaves behind, or a scribbled sector — is **discarded with a counter**
(``journal_torn_records``), never raised: recovery always proceeds from
the longest valid prefix-with-gaps.

:func:`replay` is a *pure* function of a record list, which gives the
two properties the property tests pin down: replaying any prefix of a
journal yields a valid recovered state, and replaying twice equals
replaying once.

Fsync policy trades durability for latency: ``always`` fsyncs every
append (no accepted job is ever lost), ``batch`` fsyncs every
:data:`BATCH_FSYNC_EVERY` records (bounded loss window, measured as
``records_since_fsync`` in ``/metricsz``), ``never`` leaves flushing to
the OS.
"""

from __future__ import annotations

import binascii
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.perf import PerfCounters
from repro.errors import ServiceError

#: Accepted fsync policies.
FSYNC_POLICIES = ("always", "batch", "never")

#: Appends between fsyncs under the ``batch`` policy.
BATCH_FSYNC_EVERY = 32

#: Record types a journal line may carry.
RECORD_TYPES = ("submitted", "state", "requeued")

#: Job states a ``state`` record may carry (the wire values of
#: :class:`repro.service.jobs.JobState`, minus ``queued`` which only
#: ever appears via ``submitted``/``requeued``).
_STATE_VALUES = ("running", "done", "failed", "cancelled")

#: Legal replay moves, mirroring the in-memory state machine.  Replay is
#: tolerant — a record proposing an illegal move is *skipped*, not
#: raised — so a valid recovered state comes out of any record prefix.
_REPLAY_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    "queued": ("running", "cancelled"),
    "running": ("done", "failed", "cancelled"),
    "done": (),
    "failed": (),
    "cancelled": (),
}


def record_crc(record: Dict[str, object]) -> str:
    """CRC-32 (hex) over the canonical JSON form of ``record``."""
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return format(binascii.crc32(blob.encode("utf-8")) & 0xFFFFFFFF, "08x")


def encode_line(record: Dict[str, object]) -> str:
    """One journal line (newline included) for ``record``."""
    envelope = {"crc32": record_crc(record), "record": record}
    return json.dumps(envelope, sort_keys=True, separators=(",", ":")) + "\n"


def decode_line(line: str) -> Optional[Dict[str, object]]:
    """The verified record in ``line``, or None for torn/corrupt lines."""
    try:
        envelope = json.loads(line)
    except ValueError:
        return None
    if not isinstance(envelope, dict):
        return None
    record = envelope.get("record")
    if not isinstance(record, dict):
        return None
    if envelope.get("crc32") != record_crc(record):
        return None
    return record


# ----------------------------------------------------------------------
# Pure replay
# ----------------------------------------------------------------------
@dataclass
class RecoveredJob:
    """One job's journal-derived state after :func:`replay`."""

    job_id: str
    spec_hash: str
    spec_payload: Dict[str, object]
    state: str = "queued"
    submitted_at: Optional[float] = None
    deadline_epoch: Optional[float] = None
    error: Optional[str] = None
    cached: bool = False


@dataclass
class RecoveredState:
    """The result of replaying a journal: jobs in submission order."""

    jobs: Dict[str, RecoveredJob] = field(default_factory=dict)
    replayed: int = 0
    skipped: int = 0

    def in_order(self) -> List[RecoveredJob]:
        """Jobs in first-submission order (dicts preserve insertion)."""
        return list(self.jobs.values())


def replay(records: List[Dict[str, object]]) -> RecoveredState:
    """Fold a record list into a recovered job table (pure, total).

    Tolerant by construction: records with unknown types, unknown job
    ids, missing fields or illegal state moves are counted on
    ``skipped`` and otherwise ignored, so *any* prefix of a journal
    (including one ending in a torn record that :func:`decode_line`
    already dropped) replays to a valid state, and replaying a journal
    twice is the same as replaying it once.
    """
    state = RecoveredState()
    for record in records:
        state.replayed += 1
        rtype = record.get("type")
        job_id = record.get("job_id")
        if not isinstance(job_id, str) or rtype not in RECORD_TYPES:
            state.skipped += 1
            continue
        if rtype == "submitted":
            spec_payload = record.get("spec")
            spec_hash = record.get("spec_hash")
            if (
                job_id in state.jobs
                or not isinstance(spec_payload, dict)
                or not isinstance(spec_hash, str)
            ):
                state.skipped += 1
                continue
            state.jobs[job_id] = RecoveredJob(
                job_id=job_id,
                spec_hash=spec_hash,
                spec_payload=spec_payload,
                submitted_at=record.get("submitted_at"),
                deadline_epoch=record.get("deadline_epoch"),
            )
            continue
        job = state.jobs.get(job_id)
        if job is None:
            state.skipped += 1
            continue
        if rtype == "requeued":
            job.state = "queued"
            job.error = None
            job.cached = False
            continue
        new_state = record.get("state")
        if new_state not in _STATE_VALUES:
            state.skipped += 1
            continue
        if new_state not in _REPLAY_TRANSITIONS[job.state]:
            # ``done``/``failed``/``cancelled`` may legally follow
            # ``queued`` on the wire (cache hits complete instantly and
            # queue-side cancels skip ``running``); everything else is
            # an out-of-order or duplicated record.
            if job.state == "queued" and new_state in ("done", "cancelled", "failed"):
                pass
            else:
                state.skipped += 1
                continue
        job.state = new_state
        error = record.get("error")
        job.error = error if isinstance(error, str) else None
        job.cached = bool(record.get("cached", False))
    return state


# ----------------------------------------------------------------------
# The append-only journal file
# ----------------------------------------------------------------------
class Journal:
    """Append-only write-ahead journal under ``directory/journal.jsonl``.

    Parameters
    ----------
    directory:
        Journal home; created on demand.  The same directory fed to a
        restarted server makes recovery automatic.
    fsync:
        ``'always'`` (default), ``'batch'`` or ``'never'`` — see the
        module docstring for the durability trade.
    counters:
        Shared :class:`PerfCounters`; appends land on
        ``journal_records``, scan casualties on
        ``journal_torn_records``, replayed records on
        ``journal_replayed``.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        fsync: str = "always",
        counters: Optional[PerfCounters] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ServiceError(
                f"unknown fsync policy {fsync!r} "
                f"(choose from {FSYNC_POLICIES})"
            )
        self.directory = Path(directory)
        self.path = self.directory / "journal.jsonl"
        self.fsync = fsync
        self.counters = counters if counters is not None else PerfCounters()
        self._handle = None
        self._appended = 0
        self._since_fsync = 0
        self._torn_seen = 0

    # ------------------------------------------------------------------
    def append(self, record: Dict[str, object]) -> None:
        """Durably append one record (per the fsync policy)."""
        if self._handle is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(encode_line(record))
        self._handle.flush()
        self._appended += 1
        self._since_fsync += 1
        self.counters.journal_records += 1
        if self.fsync == "always" or (
            self.fsync == "batch" and self._since_fsync >= BATCH_FSYNC_EVERY
        ):
            os.fsync(self._handle.fileno())
            self._since_fsync = 0

    def scan(self) -> List[Dict[str, object]]:
        """All valid records on disk; torn/corrupt lines are counted.

        Never raises on content: a missing file is an empty journal, a
        bad line is a ``journal_torn_records`` increment.
        """
        if not self.path.is_file():
            return []
        records: List[Dict[str, object]] = []
        torn = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                if not line.strip():
                    continue
                record = decode_line(line)
                if record is None:
                    torn += 1
                    continue
                records.append(record)
        if torn:
            self._torn_seen += torn
            self.counters.journal_torn_records += torn
        return records

    def recover(self) -> RecoveredState:
        """Scan + replay, counting replayed records."""
        state = replay(self.scan())
        self.counters.journal_replayed += state.replayed
        return state

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """The ``/metricsz`` view of the journal."""
        size = self.path.stat().st_size if self.path.is_file() else 0
        return {
            "path": str(self.path),
            "bytes": size,
            "appended": self._appended,
            "fsync": self.fsync,
            "records_since_fsync": self._since_fsync,
            "torn_discarded": self._torn_seen,
        }

    def close(self) -> None:
        """Flush, fsync (unless ``never``) and release the file handle."""
        if self._handle is not None:
            self._handle.flush()
            if self.fsync != "never":
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
