"""The partitioning service: async job server, result cache, client.

Layers (each importable on its own):

- :mod:`repro.service.jobs` — :class:`JobSpec` (content-addressed work
  unit), the job state machine and the asyncio :class:`JobManager`;
- :mod:`repro.service.cache` — :class:`ResultCache`, an in-memory LRU
  over optional on-disk JSON blobs keyed by the JobSpec hash;
- :mod:`repro.service.server` — the stdlib HTTP front end
  (:class:`PartitionServer`, :class:`ServerThread`, :func:`serve`);
- :mod:`repro.service.client` — the blocking :class:`ServiceClient`.

See the "Service" section of ``docs/architecture.md`` for the endpoint
table, the job lifecycle diagram and the cache-key definition.
"""

from repro.service.cache import ResultCache
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.jobs import (
    CONFIG_DEFAULTS,
    Job,
    JobManager,
    JobSpec,
    JobState,
    TERMINAL_STATES,
    run_spec,
)
from repro.service.server import PartitionServer, ServerThread, serve

__all__ = [
    "CONFIG_DEFAULTS",
    "Job",
    "JobManager",
    "JobSpec",
    "JobState",
    "PartitionServer",
    "ResultCache",
    "ServerThread",
    "ServiceClient",
    "ServiceClientError",
    "TERMINAL_STATES",
    "run_spec",
    "serve",
]
