"""The partitioning service: async job server, result cache, client.

Layers (each importable on its own):

- :mod:`repro.service.jobs` — :class:`JobSpec` (content-addressed work
  unit), the job state machine and the asyncio :class:`JobManager`
  (admission control, deadlines, checkpointed solves);
- :mod:`repro.service.journal` — :class:`Journal`, the append-only
  write-ahead log of job lifecycle transitions, and the pure
  :func:`replay` recovery function;
- :mod:`repro.service.cache` — :class:`ResultCache`, an in-memory LRU
  over optional on-disk CRC-enveloped JSON blobs keyed by the JobSpec
  hash (corrupt blobs quarantine to a miss, never an exception);
- :mod:`repro.service.server` — the stdlib HTTP front end
  (:class:`PartitionServer`, :class:`ServerThread`, :func:`serve`);
- :mod:`repro.service.client` — the blocking :class:`ServiceClient`
  (idempotent reads retry reset connections with bounded backoff).

See the "Service" and "Durability & recovery" sections of
``docs/architecture.md`` for the endpoint table, the job lifecycle
diagram, the cache-key definition, the journal record format and the
crash-recovery matrix.
"""

from repro.service.cache import ResultCache
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.jobs import (
    CONFIG_DEFAULTS,
    AdmissionError,
    Job,
    JobContext,
    JobManager,
    JobSpec,
    JobState,
    TERMINAL_STATES,
    run_spec,
)
from repro.service.journal import Journal, RecoveredJob, RecoveredState, replay
from repro.service.server import PartitionServer, ServerThread, serve

__all__ = [
    "CONFIG_DEFAULTS",
    "AdmissionError",
    "Job",
    "JobContext",
    "JobManager",
    "JobSpec",
    "JobState",
    "Journal",
    "PartitionServer",
    "RecoveredJob",
    "RecoveredState",
    "ResultCache",
    "ServerThread",
    "ServiceClient",
    "ServiceClientError",
    "TERMINAL_STATES",
    "replay",
    "run_spec",
    "serve",
]
