"""The cluster router: content-addressed placement over N workers.

``htp route`` runs one of these in front of any number of ``htp serve
--join`` workers.  Clients speak the *same* wire dialect to the router
as to a single worker (``POST /jobs``, poll ``GET /jobs/<id>``, fetch
``GET /jobs/<id>/result``), so ``htp submit`` and
:class:`~repro.service.client.ServiceClient` work against either
unchanged; the router adds the membership endpoints the worker agents
push to (``/workers/join``, ``/workers/<id>/heartbeat``).

A submission flows through three tiers:

1. **Router memory cache** — a bounded LRU over result payloads keyed by
   the spec's content address.  A hit answers instantly.
2. **Cluster cache index** — workers report their cached content
   addresses on join/heartbeat; on a router miss the read-through tier
   asks an owning worker's ``GET /cache/<hash>`` and installs the
   result (``cluster_remote_hits``).  The index is advisory: a stale
   entry costs one failed lookup, never a wrong answer.
3. **Placement** — the configured policy (``hash`` or ``capacity``, see
   :mod:`~repro.service.cluster.placement`) picks an alive,
   engine-capable worker; the placement is journaled *before* the
   forward (write-ahead, like the worker's own job journal) and the
   worker's job id is journaled after, so a restarted router owes its
   clients exactly what the dead one did.

Failure handling mirrors the repo's FaultTolerance ladder — retry,
reroute, mark dead: a connection-refused forward marks the worker dead
and tries the next eligible one (journaled as ``rerouted``); a worker
that stops heartbeating is probed, suspected, then declared dead, and
its in-flight jobs are re-placed.  Workers are shared-nothing: each
keeps a private checkpoint root, and checkpoint frames are replicated
peer-to-peer (see :mod:`~repro.service.cluster.replication`), so the
replacement worker fetches the dead one's newest replicated frame and
produces a bit-identical result (the chaos tier proves this end to
end).  Completed results are likewise write-through-replicated to extra
ring owners so a cached answer survives its producer's death.

The router itself fails over: ``htp route --standby <primary>`` runs a
warm standby that tails the primary's placement WAL (``GET
/wal?since=<seq>``) into its own journal and takes over after
``epoch_timeout`` seconds of failed polls.  Every forward is stamped
with the router's **fencing epoch** (journaled, monotonically growing
across recoveries); workers refuse forwards carrying an older epoch, so
a zombie primary that lost a takeover race can never place work.

All internal deadline arithmetic (heartbeats, monitor grace) runs on an
injectable monotonic clock; only client-visible timestamps
(``submitted_at``, ``deadline_epoch``) stay wall-clock because they are
journaled and cross process boundaries.
"""

from __future__ import annotations

import asyncio
import re
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.core.faults import FaultTolerance
from repro.core.perf import PerfCounters
from repro.errors import ServiceError
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.cluster.journal import replay_cluster
from repro.service.cluster.placement import make_policy, replica_owners
from repro.service.cluster.registry import WorkerInfo, WorkerRegistry
from repro.service.jobs import JobSpec
from repro.service.journal import Journal
from repro.service.server import HttpServerBase, _HttpError

#: Pseudo-worker recorded in the journal for jobs answered by a cache
#: tier (no real worker ever saw them).
ROUTER_CACHE = "router-cache"

#: Default TCP port of ``htp route`` (the worker default plus one).
DEFAULT_ROUTER_PORT = 8948

#: Terminal router job states (the same wire values a worker serves).
_TERMINAL = ("done", "failed", "cancelled")

_SEQ_RE = re.compile(r"-r(\d+)$")


class UnknownJobError(ServiceError):
    """No routed job under that id (HTTP 404)."""


class NoCapacityError(ServiceError):
    """No alive, engine-capable worker to place on (HTTP 503)."""


class RouterBusyError(ServiceError):
    """The chosen worker answered 429; carries its Retry-After hint."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ResultNotReady(ServiceError):
    """Result requested before the job is done (HTTP 409)."""

    def __init__(self, message: str, state: str,
                 job_error: Optional[str] = None) -> None:
        super().__init__(message)
        self.state = state
        self.job_error = job_error


@dataclass
class RouterJob:
    """One routed job as the router tracks it.

    ``state`` always holds a client-visible
    :class:`~repro.service.jobs.JobState` wire value — a job the router
    has accepted but not yet (re)forwarded reports ``queued``, exactly
    like a worker-local job waiting in the admission queue.
    """

    job_id: str
    spec_hash: str
    spec_payload: Dict[str, object]
    state: str = "queued"
    worker: Optional[str] = None
    worker_job_id: Optional[str] = None
    cached: bool = False
    error: Optional[str] = None
    result_payload: Optional[Dict[str, object]] = None
    submitted_at: float = field(default_factory=time.time)
    deadline_epoch: Optional[float] = None
    reroutes: int = 0
    placed_journaled: bool = False
    rerouting: bool = False

    @property
    def engine(self) -> Optional[str]:
        config = self.spec_payload.get("config")
        if isinstance(config, dict):
            engine = config.get("engine")
            if isinstance(engine, str):
                return engine
        return None

    def status(self) -> Dict[str, object]:
        """The JSON status document served by the router."""
        doc: Dict[str, object] = {
            "job_id": self.job_id,
            "spec_hash": self.spec_hash,
            "state": self.state,
            "cached": self.cached,
            "worker": self.worker,
            "worker_job_id": self.worker_job_id,
            "reroutes": self.reroutes,
            "submitted_at": self.submitted_at,
        }
        if self.error is not None:
            doc["error"] = self.error
        return doc


class ClusterRouter:
    """Registry + cache tiers + journaled placement (the router core).

    Thread-safe: every public method may be called from any thread (the
    HTTP front end runs them on executor threads).  The lock is never
    held across network I/O — worker calls happen between short locked
    sections, so a slow worker stalls one request, not the router.

    Parameters
    ----------
    policy:
        Placement policy name (``hash`` or ``capacity``).
    journal_dir:
        Optional WAL home; same semantics as the worker journal — feed
        the same directory to a restarted router and it owes clients
        exactly what the dead one did.
    cache_capacity:
        Entries in the router's in-memory result LRU.
    heartbeat_interval / max_missed / probe_retries:
        The registry's death-ladder knobs.
    worker_timeout:
        HTTP timeout for forwards and status proxying.
    probe_timeout:
        HTTP timeout for liveness probes (short: a probe that hangs is
        a failure).
    replicas:
        Extra copies of results (and the checkpoint-replica count
        announced to workers) past the primary owner; 0 turns
        replication off.
    clock:
        Monotonic time source for the monitor's deadline arithmetic
        (injectable so tests can freeze/step it).
    """

    def __init__(
        self,
        policy: str = "hash",
        journal_dir: Optional[Union[str, Path]] = None,
        cache_capacity: int = 256,
        heartbeat_interval: float = 2.0,
        max_missed: int = 3,
        probe_retries: int = 2,
        worker_timeout: float = 30.0,
        probe_timeout: float = 2.0,
        replicas: int = 1,
        clock=time.monotonic,
    ) -> None:
        if replicas < 0:
            raise ServiceError("replicas must be non-negative")
        self.counters = PerfCounters()
        self.policy = make_policy(policy)
        self._clock = clock
        self.registry = WorkerRegistry(
            heartbeat_interval=heartbeat_interval,
            max_missed=max_missed,
            probe_retries=probe_retries,
            clock=clock,
        )
        self.cache = ResultCache(
            capacity=cache_capacity, counters=self.counters
        )
        self.journal = (
            Journal(journal_dir, counters=self.counters)
            if journal_dir is not None
            else None
        )
        self.worker_timeout = worker_timeout
        self.probe_timeout = probe_timeout
        self.replicas = int(replicas)
        #: Fencing epoch stamped into every forward; recovery (and a
        #: standby takeover, which recovers over the tailed WAL) adopts
        #: max(journaled) + 1, so successive incarnations never share
        #: an epoch.
        self.epoch = 1
        self._standby_url: Optional[str] = None
        self._lock = threading.RLock()
        self._jobs: Dict[str, RouterJob] = {}
        self._clients: Dict[str, ServiceClient] = {}
        self._seq = 1
        self._started_at = self._clock()

    # ------------------------------------------------------------------
    # Membership (driven by worker agents)
    # ------------------------------------------------------------------
    def join(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Register a worker from its ``POST /workers/join`` payload."""
        worker_id = payload.get("worker_id")
        url = payload.get("url")
        if not isinstance(worker_id, str) or not worker_id:
            raise ServiceError("join payload needs a non-empty worker_id")
        if not isinstance(url, str) or not url.startswith("http"):
            raise ServiceError("join payload needs an http url")
        try:
            weight = float(payload.get("weight", 1.0))
        except (TypeError, ValueError) as exc:
            raise ServiceError("join weight must be a number") from exc
        if weight <= 0:
            raise ServiceError("join weight must be positive")
        engines = payload.get("engines", ())
        if not isinstance(engines, (list, tuple)):
            raise ServiceError("join engines must be a list")
        cached_keys = payload.get("cached_keys", ())
        if not isinstance(cached_keys, (list, tuple)):
            raise ServiceError("join cached_keys must be a list")
        info = WorkerInfo(
            worker_id=worker_id,
            url=url,
            weight=weight,
            engines=tuple(str(engine) for engine in engines),
            max_concurrency=int(payload.get("max_concurrency", 1) or 1),
            cached_keys={str(key) for key in cached_keys},
        )
        with self._lock:
            self.registry.register(info)
            alive = len(self.registry.alive())
            doc = {
                "worker_id": worker_id,
                "heartbeat_interval": self.registry.heartbeat_interval,
                "workers_alive": alive,
            }
            doc.update(self._announce())
        return doc

    def heartbeat(
        self, worker_id: str, payload: Dict[str, object]
    ) -> Dict[str, object]:
        """Record a heartbeat; raises UnknownJobError-style 404 via False."""
        in_flight = payload.get("in_flight")
        cached_keys = payload.get("cached_keys", ())
        if not isinstance(cached_keys, (list, tuple)):
            cached_keys = ()
        with self._lock:
            known = self.registry.heartbeat(
                worker_id,
                in_flight=in_flight if isinstance(in_flight, int) else None,
                cached_keys=(str(key) for key in cached_keys),
            )
        if not known:
            raise UnknownJobError(
                f"worker {worker_id!r} is not a live member; re-register"
            )
        with self._lock:
            doc = {"worker_id": worker_id, "known": True}
            doc.update(self._announce())
        return doc

    def workers(self) -> List[Dict[str, object]]:
        with self._lock:
            return [worker.status() for worker in self.registry.workers()]

    def _announce(self) -> Dict[str, object]:
        """Cluster state piggybacked on join/heartbeat responses.

        Caller holds the lock.  This is how workers learn the fencing
        epoch, their peer set (for checkpoint replication), the replica
        count and where the standby router lives.
        """
        return {
            "epoch": self.epoch,
            "replicas": self.replicas,
            "standby": self._standby_url,
            "peers": [
                {
                    "worker_id": worker.worker_id,
                    "url": worker.url,
                    "weight": worker.weight,
                }
                for worker in self.registry.alive()
            ],
        }

    def register_standby(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Record the warm standby's URL (``POST /standby``).

        The standby announces itself on every WAL poll; the URL is
        rebroadcast to workers so their agents know where to fail over
        when this router stops answering.
        """
        url = payload.get("url")
        if not isinstance(url, str) or not url.startswith("http"):
            raise ServiceError("standby payload needs an http url")
        with self._lock:
            self._standby_url = url
            return {"standby": url, "epoch": self.epoch}

    def wal_records(self, since: int) -> Dict[str, object]:
        """The journal's valid records from position ``since`` on.

        Positional, not keyed: cluster records carry no sequence
        numbers, so the standby's cursor is simply how many valid
        records it already holds.  Torn lines are dropped by ``scan``
        (counted on ``journal_torn_records``), which keeps both sides'
        positions consistent — a torn tail is invisible to the cursor.
        """
        if since < 0:
            raise ServiceError("since must be non-negative")
        records = self.journal.scan() if self.journal is not None else []
        with self._lock:
            return {
                "since": since,
                "records": records[since:],
                "total": len(records),
                "epoch": self.epoch,
            }

    # ------------------------------------------------------------------
    # The client-facing job API
    # ------------------------------------------------------------------
    def submit(
        self,
        payload: Dict[str, object],
        deadline: Optional[float] = None,
    ) -> Dict[str, object]:
        """Place one spec payload; returns the router job status doc."""
        spec = JobSpec.from_payload(payload)  # ServiceError -> 400
        spec_hash = spec.canonical_hash()
        with self._lock:
            cached = self.cache.get(spec_hash)
        if cached is None:
            cached = self._remote_lookup(spec_hash)
        if cached is not None:
            with self._lock:
                job = self._new_job(spec, spec_hash, deadline)
                job.state = "done"
                job.cached = True
                job.worker = ROUTER_CACHE
                job.result_payload = cached
                job.placed_journaled = True
                self._append(
                    {
                        "type": "placed",
                        "job_id": job.job_id,
                        "spec_hash": spec_hash,
                        "spec": job.spec_payload,
                        "worker": ROUTER_CACHE,
                        "submitted_at": job.submitted_at,
                        "deadline_epoch": job.deadline_epoch,
                    }
                )
                self._append(
                    {
                        "type": "resolved",
                        "job_id": job.job_id,
                        "state": "done",
                    }
                )
                return job.status()
        with self._lock:
            job = self._new_job(spec, spec_hash, deadline)
        self._forward(job)
        with self._lock:
            return job.status()

    def get(self, job_id: str) -> RouterJob:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        return job

    def jobs(self) -> List[Dict[str, object]]:
        with self._lock:
            return [job.status() for job in self._jobs.values()]

    def status(self, job_id: str) -> Dict[str, object]:
        """The job's status, refreshed from its worker when in flight."""
        job = self.get(job_id)
        with self._lock:
            if job.state in _TERMINAL:
                return job.status()
            worker_job_id = job.worker_job_id
            url = self._worker_url(job.worker)
        if worker_job_id is None or url is None:
            return job.status()
        try:
            remote = self._client(url).status(worker_job_id)
        except ServiceClientError as exc:
            self._poll_failed(job, exc)
            return job.status()
        return self._absorb_remote(job, remote)

    def result(self, job_id: str) -> Dict[str, object]:
        """The result payload; 409-shaped ResultNotReady until done."""
        self.status(job_id)  # refresh terminal state from the worker
        job = self.get(job_id)
        with self._lock:
            if job.state != "done":
                raise ResultNotReady(
                    f"job {job.job_id} is {job.state}, not done",
                    state=job.state,
                    job_error=job.error,
                )
            if job.result_payload is not None:
                return dict(job.result_payload)
        payload = self._fetch_result(job)
        if payload is None:
            raise ServiceError(
                f"job {job.job_id} is done but its result payload is "
                "unavailable (no cache tier holds "
                f"{job.spec_hash})"
            )
        with self._lock:
            job.result_payload = payload
            return dict(payload)

    def cancel(self, job_id: str) -> Dict[str, object]:
        job = self.get(job_id)
        with self._lock:
            if job.state in _TERMINAL:
                return job.status()
            worker_job_id = job.worker_job_id
            url = self._worker_url(job.worker)
        if worker_job_id is not None and url is not None:
            try:
                self._client(url).cancel(worker_job_id)
            except ServiceClientError:
                pass  # the worker may be gone; the cancel stands anyway
        with self._lock:
            if job.state not in _TERMINAL:
                self._resolve(job, "cancelled", error=None)
            return job.status()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state_counts(self) -> Dict[str, int]:
        counts = {
            state: 0
            for state in ("queued", "running", "done", "failed", "cancelled")
        }
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def metrics(self) -> Dict[str, object]:
        """The router's ``/metricsz`` document (with a ``cluster`` section)."""
        with self._lock:
            return {
                "perf": self.counters.as_dict(),
                "cache": self.cache.stats(),
                "cluster": {
                    "policy": self.policy.name,
                    "workers": self.registry.state_counts(),
                    "heartbeat_interval": self.registry.heartbeat_interval,
                    "placements": self.counters.cluster_placements,
                    "reroutes": self.counters.cluster_reroutes,
                    "remote_cache_hits": self.counters.cluster_remote_hits,
                    "epoch": self.epoch,
                    "replicas": self.replicas,
                    "standby": self._standby_url,
                    "epoch_bumps": self.counters.router_epoch_bumps,
                    "cache_replications": self.counters.cache_replications,
                    "ckpt_replications": self.counters.ckpt_replications,
                    "ckpt_replica_fetches": (
                        self.counters.ckpt_replica_fetches
                    ),
                    "netfaults_injected": self.counters.netfaults_injected,
                },
                "jobs": self.state_counts(),
                "journal": (
                    self.journal.stats() if self.journal is not None else None
                ),
            }

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> Dict[str, int]:
        """Replay the placement journal into the job table.

        Also adopts the next fencing epoch: ``max(journaled) + 1``,
        journaled immediately so the *next* incarnation (or a standby
        tailing this WAL) moves past it in turn.  Counted on
        ``router_epoch_bumps`` only when an earlier epoch existed — a
        fresh journal starts at epoch 1 without a bump.
        """
        summary = {"recovered": 0, "open": 0, "resolved": 0, "skipped": 0}
        if self.journal is None:
            return summary
        recovered = replay_cluster(self.journal.scan())
        self.counters.journal_replayed += recovered.replayed
        summary["skipped"] = recovered.skipped
        with self._lock:
            if recovered.epoch > 0:
                self.epoch = recovered.epoch + 1
                self.counters.router_epoch_bumps += 1
            self._append({"type": "epoch", "epoch": self.epoch})
            for placement in recovered.in_order():
                job = RouterJob(
                    job_id=placement.job_id,
                    spec_hash=placement.spec_hash,
                    spec_payload=placement.spec_payload,
                    worker=placement.worker,
                    worker_job_id=placement.worker_job_id,
                    submitted_at=placement.submitted_at or time.time(),
                    deadline_epoch=placement.deadline_epoch,
                    reroutes=placement.reroutes,
                    placed_journaled=True,
                )
                if placement.state in _TERMINAL:
                    job.state = placement.state
                    job.error = placement.error
                    job.cached = placement.worker == ROUTER_CACHE
                    summary["resolved"] += 1
                else:
                    job.state = "queued"
                    summary["open"] += 1
                self._jobs[job.job_id] = job
                summary["recovered"] += 1
                match = _SEQ_RE.search(placement.job_id)
                if match:
                    self._seq = max(self._seq, int(match.group(1)) + 1)
            self._started_at = self._clock()
        return summary

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()

    # ------------------------------------------------------------------
    # The monitor (death ladder + orphan rescue)
    # ------------------------------------------------------------------
    def monitor_tick(self) -> None:
        """One sweep: probe overdue workers, reroute orphaned jobs.

        Called periodically by the HTTP front end; safe to call from
        tests directly.
        """
        now = self._clock()
        with self._lock:
            overdue = [
                (worker.worker_id, worker.url)
                for worker in self.registry.overdue(now)
            ]
        for worker_id, url in overdue:
            try:
                ServiceClient(
                    url,
                    timeout=self.probe_timeout,
                    tolerance=FaultTolerance(task_retries=0),
                ).healthz()
            except ServiceClientError:
                self._probe_failure(worker_id)
            else:
                with self._lock:
                    # A successful probe counts as the missed heartbeat.
                    self.registry.heartbeat(worker_id)
        # Orphan rescue: jobs whose worker is unknown (router restarted,
        # worker never rejoined) or already dead.  Grace-delayed so a
        # restarting cluster gets one heartbeat budget to reassemble
        # before the router starts re-placing work.
        grace = (
            self.registry.heartbeat_interval * self.registry.max_missed
        )
        if now - self._started_at < grace:
            return
        with self._lock:
            orphans = [
                job
                for job in self._jobs.values()
                if job.state not in _TERMINAL
                and not job.rerouting
                and self._worker_state(job.worker) in (None, "dead")
            ]
        for job in orphans:
            self._reroute_job(job)

    def reroute_worker(self, worker_id: str) -> int:
        """Re-place every non-terminal job owned by a dead worker."""
        with self._lock:
            victims = [
                job
                for job in self._jobs.values()
                if job.worker == worker_id
                and job.state not in _TERMINAL
                and not job.rerouting
            ]
        for job in victims:
            self._reroute_job(job)
        return len(victims)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _new_job(
        self,
        spec: JobSpec,
        spec_hash: str,
        deadline: Optional[float],
    ) -> RouterJob:
        job_id = f"{spec_hash[:12]}-r{self._seq:04d}"
        self._seq += 1
        job = RouterJob(
            job_id=job_id,
            spec_hash=spec_hash,
            spec_payload=spec.to_payload(),
            deadline_epoch=(
                time.time() + deadline if deadline is not None else None
            ),
        )
        self._jobs[job_id] = job
        return job

    def _client(self, url: str) -> ServiceClient:
        with self._lock:
            client = self._clients.get(url)
            if client is None:
                client = ServiceClient(url, timeout=self.worker_timeout)
                self._clients[url] = client
            return client

    def _worker_url(self, worker_id: Optional[str]) -> Optional[str]:
        if worker_id is None or worker_id == ROUTER_CACHE:
            return None
        try:
            return self.registry.get(worker_id).url
        except ServiceError:
            return None

    def _worker_state(self, worker_id: Optional[str]) -> Optional[str]:
        if worker_id == ROUTER_CACHE:
            return "alive"  # never orphaned: cache answers are terminal
        try:
            return self.registry.get(worker_id or "").state
        except ServiceError:
            return None

    def _append(self, record: Dict[str, object]) -> None:
        if self.journal is not None:
            self.journal.append(record)

    def _resolve(
        self, job: RouterJob, state: str, error: Optional[str]
    ) -> None:
        """Terminal transition (caller holds the lock)."""
        job.state = state
        job.error = error
        record: Dict[str, object] = {
            "type": "resolved",
            "job_id": job.job_id,
            "state": state,
        }
        if error is not None:
            record["error"] = error
        self._append(record)
        worker = self.registry._workers.get(job.worker or "")
        if worker is not None:
            worker.in_flight = max(0, worker.in_flight - 1)

    def _remote_lookup(self, spec_hash: str) -> Optional[Dict[str, object]]:
        """Read-through: fetch a result from a worker that reported it."""
        with self._lock:
            owners = [
                (worker.worker_id, worker.url)
                for worker in self.registry.cache_owners(spec_hash)
            ]
        for worker_id, url in owners:
            try:
                payload = self._client(url).cache_lookup(spec_hash)
            except ServiceClientError as exc:
                if exc.status == 404:
                    with self._lock:
                        # Stale index entry (evicted or quarantined).
                        self.registry.forget_cached(worker_id, spec_hash)
                continue
            with self._lock:
                try:
                    self.cache.put(spec_hash, payload)
                except ServiceError:
                    continue  # wrong-hash payload: treat as a miss
                self.counters.cluster_remote_hits += 1
            return payload
        return None

    def _forward(self, job: RouterJob, exclude: Set[str] = frozenset()) -> bool:
        """Place + submit ``job`` to a worker, walking the reroute ladder.

        Returns True when a worker acknowledged the submission, False
        when no eligible worker remains *and* the job already has a
        journaled placement (it stays ``queued`` for the next monitor
        sweep).  Raises :class:`NoCapacityError` for a fresh submission
        with nowhere to go and :class:`RouterBusyError` when the chosen
        worker answered 429.
        """
        tried: Set[str] = set(exclude)
        while True:
            with self._lock:
                eligible = [
                    worker
                    for worker in self.registry.alive(job.engine)
                    if worker.worker_id not in tried
                ]
                chosen = self.policy.choose(job.spec_hash, eligible)
                if chosen is None:
                    if job.placed_journaled:
                        # Already owed to the client: park it for the
                        # monitor's orphan sweep to retry.
                        job.worker_job_id = None
                        return False
                    raise NoCapacityError(
                        "no alive worker "
                        + (
                            f"supporting engine {job.engine!r}"
                            if job.engine
                            else "registered"
                        )
                        + " to place the job on"
                    )
                url = self.registry.get(chosen).url
                if not job.placed_journaled:
                    self._append(
                        {
                            "type": "placed",
                            "job_id": job.job_id,
                            "spec_hash": job.spec_hash,
                            "spec": job.spec_payload,
                            "worker": chosen,
                            "submitted_at": job.submitted_at,
                            "deadline_epoch": job.deadline_epoch,
                        }
                    )
                    job.placed_journaled = True
                else:
                    self._append(
                        {
                            "type": "rerouted",
                            "job_id": job.job_id,
                            "worker": chosen,
                        }
                    )
                    job.reroutes += 1
                    self.counters.cluster_reroutes += 1
                job.worker = chosen
                job.worker_job_id = None
                deadline_epoch = job.deadline_epoch
                forward_payload = dict(job.spec_payload)
                # The fencing stamp: workers refuse forwards whose epoch
                # is older than the newest they have seen, so a fenced
                # zombie router cannot place work (its submissions fail
                # here with 409 and the job resolves failed *at the
                # zombie*, never reaching a worker queue).
                forward_payload["router_epoch"] = self.epoch
            remaining: Optional[float] = None
            if deadline_epoch is not None:
                remaining = deadline_epoch - time.time()
                if remaining <= 0:
                    with self._lock:
                        self._resolve(
                            job, "failed", error="deadline expired in transit"
                        )
                    return False
            try:
                response = self._client(url).submit(
                    forward_payload, deadline=remaining
                )
            except ServiceClientError as exc:
                if exc.status == 0:
                    # Transport failure: the worker is gone.  Mark it
                    # dead (a rejoin resurrects it) and try the next.
                    with self._lock:
                        try:
                            self.registry.mark_dead(chosen)
                        except ServiceError:
                            pass
                    tried.add(chosen)
                    continue
                if exc.status == 429:
                    with self._lock:
                        self._resolve(
                            job, "failed", error=f"worker busy: {exc}"
                        )
                    raise RouterBusyError(
                        str(exc), retry_after=exc.retry_after or 1.0
                    ) from exc
                with self._lock:
                    self._resolve(
                        job, "failed", error=f"worker rejected job: {exc}"
                    )
                raise ServiceError(
                    f"worker {chosen} rejected the job: {exc}"
                ) from exc
            with self._lock:
                job.worker_job_id = str(response.get("job_id"))
                remote_state = response.get("state")
                job.state = (
                    str(remote_state)
                    if remote_state in ("queued", "running", "done")
                    else "queued"
                )
                self._append(
                    {
                        "type": "forwarded",
                        "job_id": job.job_id,
                        "worker": chosen,
                        "worker_job_id": job.worker_job_id,
                    }
                )
                self.counters.cluster_placements += 1
                worker = self.registry._workers.get(chosen)
                if worker is not None:
                    worker.in_flight += 1
            if job.state == "done":
                # The worker answered from its own cache: absorb now so
                # the client's very first poll sees a terminal state.
                self.status(job.job_id)
            return True

    def _absorb_remote(
        self, job: RouterJob, remote: Dict[str, object]
    ) -> Dict[str, object]:
        """Fold a worker status document into the router's view."""
        state = str(remote.get("state", "queued"))
        if state not in _TERMINAL:
            with self._lock:
                if job.state not in _TERMINAL:
                    job.state = state if state in ("queued", "running") else "queued"
                return job.status()
        if state == "done":
            payload: Optional[Dict[str, object]] = None
            with self._lock:
                url = self._worker_url(job.worker)
                worker_job_id = job.worker_job_id
            if url is not None and worker_job_id is not None:
                try:
                    payload = self._client(url).result(worker_job_id)
                except ServiceClientError:
                    payload = None
            replicate_from: Optional[str] = None
            with self._lock:
                if job.state not in _TERMINAL:
                    if payload is not None:
                        try:
                            self.cache.put(job.spec_hash, payload)
                        except ServiceError:
                            pass  # quarantined-by-shape: keep the job doc
                        else:
                            replicate_from = job.worker
                        job.result_payload = payload
                        job.cached = bool(remote.get("cached", False))
                        if job.worker is not None:
                            worker = self.registry._workers.get(job.worker)
                            if worker is not None:
                                worker.cached_keys.add(job.spec_hash)
                    self._resolve(job, "done", error=None)
                status = job.status()
            if payload is not None and replicate_from is not None:
                self._replicate_result(
                    job.spec_hash, payload, exclude=replicate_from
                )
            return status
        error = remote.get("error")
        with self._lock:
            if job.state not in _TERMINAL:
                self._resolve(
                    job,
                    state,
                    error=error if isinstance(error, str) else None,
                )
            return job.status()

    def _replicate_result(
        self,
        spec_hash: str,
        payload: Dict[str, object],
        exclude: str,
    ) -> int:
        """Write-through-replicate a fresh result to extra ring owners.

        Called outside the lock right after a ``done`` absorb: the
        producing worker (``exclude``) already holds the result, so up
        to ``replicas`` *other* owners named by the hash ring get a copy
        via ``PUT /cache/<hash>``.  Their cache-index entries are
        updated immediately, so the read-through tier can answer from a
        replica the moment the producer dies.  Unreachable replicas are
        skipped — replication is best-effort; the counter records what
        actually landed.
        """
        if self.replicas < 1:
            return 0
        with self._lock:
            workers = self.registry.alive()
            owners = replica_owners(
                spec_hash, workers, self.replicas, exclude=(exclude,)
            )
            targets = [
                (worker.worker_id, worker.url)
                for worker in workers
                if worker.worker_id in owners
            ]
        landed = 0
        for worker_id, url in targets:
            try:
                self._client(url).cache_push(spec_hash, payload)
            except ServiceClientError:
                continue
            landed += 1
            with self._lock:
                self.counters.cache_replications += 1
                peer = self.registry._workers.get(worker_id)
                if peer is not None:
                    peer.cached_keys.add(spec_hash)
        return landed

    def _poll_failed(self, job: RouterJob, exc: ServiceClientError) -> None:
        """A status proxy failed: feed the death ladder or re-place."""
        if exc.status == 404:
            # The worker restarted without its journal and no longer
            # knows the job: re-place it somewhere immediately.
            self._reroute_job(job)
            return
        if exc.status == 0 and job.worker is not None:
            self._probe_failure(job.worker)

    def _probe_failure(self, worker_id: str) -> None:
        with self._lock:
            try:
                state = self.registry.probe_failed(worker_id)
            except ServiceError:
                return
        if state == "dead":
            self.reroute_worker(worker_id)

    def _reroute_job(self, job: RouterJob) -> None:
        """Re-place one job (its previous owner is gone)."""
        with self._lock:
            if job.state in _TERMINAL or job.rerouting:
                return
            job.rerouting = True
            job.state = "queued"
            exclude = (
                {job.worker}
                if job.worker is not None
                and self._worker_state(job.worker) == "dead"
                else set()
            )
        try:
            self._forward(job, exclude=exclude)
        except ServiceError:
            pass  # parked as queued; the next sweep tries again
        finally:
            with self._lock:
                job.rerouting = False

    def _fetch_result(self, job: RouterJob) -> Optional[Dict[str, object]]:
        """Find a done job's payload across the cache tiers."""
        with self._lock:
            payload = self.cache.get(job.spec_hash)
        if payload is not None:
            return payload
        with self._lock:
            url = self._worker_url(job.worker)
        if url is not None:
            try:
                payload = self._client(url).cache_lookup(job.spec_hash)
            except ServiceClientError:
                payload = None
            if payload is not None:
                with self._lock:
                    try:
                        self.cache.put(job.spec_hash, payload)
                        self.counters.cluster_remote_hits += 1
                    except ServiceError:
                        payload = None
                if payload is not None:
                    return payload
        return self._remote_lookup(job.spec_hash)


class RouterServer(HttpServerBase):
    """The asyncio HTTP front end over a :class:`ClusterRouter`.

    Same wire dialect as :class:`~repro.service.server.PartitionServer`
    (it shares the framing base class), with the membership endpoints
    added:

    =======  ==============================  ==========================
    method   path                            meaning
    =======  ==============================  ==========================
    POST     ``/jobs``                       place a spec on a worker
    GET      ``/jobs``                       list routed jobs
    GET      ``/jobs/<id>``                  status (proxied when live)
    GET      ``/jobs/<id>/result``           result (409 until done)
    POST     ``/jobs/<id>/cancel``           cancel locally + remotely
    POST     ``/workers/join``               register a worker
    POST     ``/workers/<id>/heartbeat``     worker liveness + load
    GET      ``/workers``                    membership table
    GET      ``/healthz``                    liveness + counts
    GET      ``/metricsz``                   perf + cache + cluster
    GET      ``/wal?since=<n>``              journal tail (standby feed)
    POST     ``/standby``                    standby self-announcement
    =======  ==============================  ==========================

    Blocking router work (worker HTTP calls) runs on the default
    executor so the event loop keeps accepting heartbeats while a
    forward is in flight.

    With ``standby_of`` set the server starts as a **warm standby**: it
    binds and answers health/metrics, but 503s every job and membership
    endpoint while a tail loop copies the primary's WAL into its own
    journal (and announces itself via ``POST /standby``).  After
    ``epoch_timeout`` seconds of failed polls it takes over — recovers
    from the tailed journal (adopting a higher fencing epoch), starts
    the monitor, and serves everything a primary does.  Workers find it
    through the standby URL their agents learned from the old primary.
    """

    def __init__(
        self,
        router: ClusterRouter,
        host: str = "127.0.0.1",
        port: int = 0,
        standby_of: Optional[str] = None,
        epoch_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(host=host, port=port)
        self.router = router
        self.standby_of = standby_of
        if epoch_timeout is None:
            epoch_timeout = (
                router.registry.heartbeat_interval * router.registry.max_missed
            )
        self.epoch_timeout = float(epoch_timeout)
        self.recovery_summary: Dict[str, int] = {}
        self.took_over = False
        self._active = standby_of is None
        self._monitor_task: Optional[asyncio.Task] = None
        self._standby_task: Optional[asyncio.Task] = None
        if standby_of is not None and router.journal is None:
            raise ServiceError(
                "a standby router needs --journal-dir: the tailed WAL is "
                "what it takes over from"
            )

    @property
    def active(self) -> bool:
        """Whether this server currently serves jobs (primary role)."""
        return self._active

    async def start(self) -> None:
        """Recover the journal, bind, start the monitor loop.

        A standby defers recovery until takeover — it binds immediately
        (so workers can find it) and runs the WAL tail loop instead of
        the monitor.
        """
        if self._active:
            self.recovery_summary = self.router.recover()
        await self._bind()
        if self._active:
            self._monitor_task = asyncio.ensure_future(self._monitor_loop())
        else:
            self._standby_task = asyncio.ensure_future(self._standby_loop())

    async def stop(self) -> None:
        for task_name in ("_monitor_task", "_standby_task"):
            task = getattr(self, task_name)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, task_name, None)
        await self._unbind()
        self.router.close()

    async def _monitor_loop(self) -> None:
        interval = min(1.0, self.router.registry.heartbeat_interval)
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(interval)
            try:
                await loop.run_in_executor(None, self.router.monitor_tick)
            except Exception:  # pragma: no cover - defensive
                pass  # the monitor must outlive any single bad sweep

    # ------------------------------------------------------------------
    # Warm standby
    # ------------------------------------------------------------------
    async def _standby_loop(self) -> None:
        """Tail the primary's WAL; take over when it stops answering.

        Every poll appends the newly-served records verbatim into this
        router's own journal, so the standby's copy is always a valid
        prefix of the primary's history (a torn tail in *this* file is
        self-healing: ``scan`` drops the torn line and the next poll
        re-fetches from the shorter cursor).  ``epoch_timeout`` seconds
        of consecutive failures triggers takeover.
        """
        loop = asyncio.get_running_loop()
        interval = min(1.0, self.router.registry.heartbeat_interval)
        cursor = len(self.router.journal.scan())
        failing_since: Optional[float] = None
        while True:
            try:
                fetched = await loop.run_in_executor(
                    None, self._standby_poll, cursor
                )
            except ServiceClientError:
                now = loop.time()
                if failing_since is None:
                    failing_since = now
                elif now - failing_since >= self.epoch_timeout:
                    await self._take_over()
                    return
            else:
                failing_since = None
                cursor += fetched
            await asyncio.sleep(interval)

    def _standby_poll(self, cursor: int) -> int:
        """One WAL poll + self-announcement; returns records appended."""
        client = ServiceClient(
            self.standby_of,
            timeout=self.router.probe_timeout,
            tolerance=FaultTolerance(task_retries=0),
        )
        doc = client.wal_since(cursor)
        records = doc.get("records", [])
        appended = 0
        if isinstance(records, list):
            for record in records:
                if isinstance(record, dict):
                    self.router.journal.append(record)
                    appended += 1
        try:
            client.register_standby(self.url)
        except ServiceClientError:
            pass  # announcement is best-effort; the tail is the contract
        return appended

    async def _take_over(self) -> None:
        """Promote: recover from the tailed WAL and start serving."""
        loop = asyncio.get_running_loop()
        self.recovery_summary = await loop.run_in_executor(
            None, self.router.recover
        )
        self.took_over = True
        self._active = True
        self._standby_task = None
        self._monitor_task = asyncio.ensure_future(self._monitor_loop())

    # ------------------------------------------------------------------
    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        path, _, query = path.partition("?")
        path = path.rstrip("/") or "/"
        router = self.router
        if path == "/healthz":
            self._require(method, "GET")
            return 200, {
                "status": "ok",
                "role": "router" if self._active else "standby",
                "workers": router.registry.state_counts(),
                "jobs": router.state_counts(),
            }
        if path == "/metricsz":
            self._require(method, "GET")
            return 200, router.metrics()
        if path == "/wal":
            self._require(method, "GET")
            since = 0
            for param in query.split("&"):
                name, sep, value = param.partition("=")
                if name == "since" and sep:
                    try:
                        since = int(value)
                    except ValueError as exc:
                        raise _HttpError(
                            400, f"bad since {value!r}: not an integer"
                        ) from exc
            return await self._call(router.wal_records, since)
        if path == "/standby":
            self._require(method, "POST")
            return await self._call(
                router.register_standby, self._json_body(body)
            )
        if not self._active:
            # Warm standby: health, metrics and the WAL are served; the
            # job and membership surface answers 503 so agents and
            # clients keep retrying until takeover.
            raise _HttpError(
                503,
                f"standing by for {self.standby_of}; not serving yet",
            )
        if path == "/workers":
            if method == "POST":
                raise _HttpError(405, "POST to /workers/join to register")
            self._require(method, "GET")
            return 200, {"workers": router.workers()}
        if path == "/workers/join":
            self._require(method, "POST")
            return 200, router.join(self._json_body(body))
        if path.startswith("/workers/") and path.endswith("/heartbeat"):
            self._require(method, "POST")
            worker_id = path[len("/workers/"): -len("/heartbeat")]
            return await self._call(
                router.heartbeat, worker_id, self._json_body(body)
            )
        if path == "/jobs":
            if method == "POST":
                payload = self._json_body(body)
                deadline = self._pop_deadline(payload)
                return await self._call(router.submit, payload, deadline)
            self._require(method, "GET")
            return 200, {"jobs": router.jobs()}
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if rest.endswith("/result"):
                self._require(method, "GET")
                return await self._call(
                    router.result, rest[: -len("/result")]
                )
            if rest.endswith("/cancel"):
                self._require(method, "POST")
                return await self._call(router.cancel, rest[: -len("/cancel")])
            self._require(method, "GET")
            return await self._call(router.status, rest)
        raise _HttpError(404, f"no such endpoint {path!r}")

    async def _call(self, fn, *args) -> Tuple[int, Dict[str, object]]:
        """Run a blocking router call off-loop, mapping its errors."""
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(None, fn, *args)
        except UnknownJobError as exc:
            raise _HttpError(404, str(exc)) from exc
        except NoCapacityError as exc:
            raise _HttpError(503, str(exc)) from exc
        except RouterBusyError as exc:
            # ``:g`` keeps fractional hints intact on the wire — an
            # ``int()`` here used to truncate a worker's 1.5s ask to 1s.
            raise _HttpError(
                429,
                str(exc),
                headers={"Retry-After": f"{exc.retry_after:g}"},
            ) from exc
        except ResultNotReady as exc:
            payload: Dict[str, object] = {
                "error": str(exc),
                "state": exc.state,
            }
            if exc.job_error is not None:
                payload["job_error"] = exc.job_error
            return 409, payload
        if isinstance(result, dict):
            return 200, result
        return 200, {"result": result}

    @staticmethod
    def _pop_deadline(payload: Dict[str, object]) -> Optional[float]:
        """Extract the optional top-level deadline (same rules as serve)."""
        if "deadline" not in payload:
            return None
        raw = payload.pop("deadline")
        try:
            deadline = float(raw)
        except (TypeError, ValueError) as exc:
            raise _HttpError(
                400, f"bad deadline {raw!r}: not a number"
            ) from exc
        if deadline <= 0:
            raise _HttpError(400, f"bad deadline {deadline!r}: must be positive")
        return deadline


class RouterThread:
    """A :class:`RouterServer` on a daemon thread, for sync callers.

    Mirrors :class:`~repro.service.server.ServerThread`: the constructor
    blocks until the socket is bound, :meth:`stop` shuts down and joins.
    """

    def __init__(
        self,
        router_kwargs: Optional[Dict[str, object]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        standby_of: Optional[str] = None,
        epoch_timeout: Optional[float] = None,
    ) -> None:
        self._started = threading.Event()
        self._stop_requested: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None
        self._router_kwargs = dict(router_kwargs or {})
        self._host = host
        self._requested_port = port
        self._standby_of = standby_of
        self._epoch_timeout = epoch_timeout
        self.server: Optional[RouterServer] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-route", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        try:
            router = ClusterRouter(**self._router_kwargs)
            self.server = RouterServer(
                router,
                host=self._host,
                port=self._requested_port,
                standby_of=self._standby_of,
                epoch_timeout=self._epoch_timeout,
            )
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        await self._stop_requested.wait()
        await self.server.stop()

    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    @property
    def url(self) -> str:
        assert self.server is not None
        return self.server.url

    @property
    def router(self) -> ClusterRouter:
        assert self.server is not None
        return self.server.router

    def stop(self, timeout: Optional[float] = None) -> None:
        if self._loop is None or self._stop_requested is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._stop_requested.set)
        except RuntimeError:  # loop already closed
            pass
        self._thread.join(timeout)

    def __enter__(self) -> "RouterThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def route(
    host: str = "127.0.0.1",
    port: int = 0,
    router_kwargs: Optional[Dict[str, object]] = None,
    announce=print,
    standby_of: Optional[str] = None,
    epoch_timeout: Optional[float] = None,
) -> int:
    """Run a router until SIGINT/SIGTERM — the entry behind ``htp route``."""

    async def _main() -> None:
        router = ClusterRouter(**(router_kwargs or {}))
        server = RouterServer(
            router,
            host=host,
            port=port,
            standby_of=standby_of,
            epoch_timeout=epoch_timeout,
        )
        await server.start()
        if server.recovery_summary.get("recovered"):
            announce(
                "recovered placements from journal: "
                + " ".join(
                    f"{name}={count}"
                    for name, count in server.recovery_summary.items()
                    if count
                )
            )
        if standby_of is not None:
            announce(f"standing by for {standby_of} on {server.url}")
        announce(f"routing on {server.url}")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop.wait()
        announce("router shutting down")
        await server.stop()
        counts = router.state_counts()
        announce(
            "routed: "
            + " ".join(f"{state}={count}" for state, count in counts.items())
        )

    asyncio.run(_main())
    return 0
