"""Cluster placement journal: the router's crash-safe source of truth.

The router reuses the service's CRC-framed append-only
:class:`~repro.service.journal.Journal` file machinery (same envelope,
same torn-tail tolerance) with its own record vocabulary:

``placed``
    A job was accepted and assigned a worker.  Carries the full spec
    payload — like the service WAL, the journal alone must be enough to
    finish the work after a crash.
``forwarded``
    The owning worker acknowledged the submission; carries the worker's
    own job id so a restarted router can resume proxying status polls.
``rerouted``
    The job moved to a new worker (its previous owner died).  The next
    ``forwarded`` record binds the new worker-side job id.
``resolved``
    The job reached a terminal state (``done`` / ``failed`` /
    ``cancelled``) as observed by the router.
``epoch``
    The router adopted a new fencing epoch (an integer that only ever
    grows).  A fresh router journals epoch 1; every recovery — and every
    standby takeover, which *is* a recovery over the tailed WAL — adopts
    ``max(seen) + 1``, so a zombie primary and its successor can never
    share an epoch.  Workers refuse forwards stamped with an epoch older
    than the newest they have seen.

:func:`replay_cluster` is pure and total, with the same two properties
the service journal's property tests established: any record prefix
replays to a valid state, and replaying twice equals replaying once.
Unknown types, unknown job ids and malformed records are counted on
``skipped`` and ignored — a router must recover from the longest valid
prefix of whatever a SIGKILL left behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Record types a cluster journal line may carry.
CLUSTER_RECORD_TYPES = ("placed", "forwarded", "rerouted", "resolved", "epoch")

#: Terminal states a ``resolved`` record may carry.
_RESOLVED_STATES = ("done", "failed", "cancelled")


@dataclass
class RecoveredPlacement:
    """One routed job's journal-derived state after :func:`replay_cluster`."""

    job_id: str
    spec_hash: str
    spec_payload: Dict[str, object]
    worker: Optional[str] = None
    worker_job_id: Optional[str] = None
    state: str = "placed"
    submitted_at: Optional[float] = None
    deadline_epoch: Optional[float] = None
    reroutes: int = 0
    error: Optional[str] = None


@dataclass
class RecoveredCluster:
    """The result of replaying a router journal."""

    jobs: Dict[str, RecoveredPlacement] = field(default_factory=dict)
    replayed: int = 0
    skipped: int = 0
    #: Highest fencing epoch journaled (0 when no epoch record exists).
    epoch: int = 0

    def in_order(self) -> List[RecoveredPlacement]:
        """Placements in first-placement order."""
        return list(self.jobs.values())

    def open_jobs(self) -> List[RecoveredPlacement]:
        """Placements still owed to a client (not terminal)."""
        return [
            job for job in self.jobs.values()
            if job.state not in _RESOLVED_STATES
        ]


def replay_cluster(records: List[Dict[str, object]]) -> RecoveredCluster:
    """Fold router journal records into a placement table (pure, total)."""
    state = RecoveredCluster()
    for record in records:
        state.replayed += 1
        rtype = record.get("type")
        if rtype == "epoch":
            # Epoch records carry no job id; a malformed or regressing
            # value is skipped like any other garbage record.
            epoch = record.get("epoch")
            if (
                isinstance(epoch, int)
                and not isinstance(epoch, bool)
                and epoch > state.epoch
            ):
                state.epoch = epoch
            else:
                state.skipped += 1
            continue
        job_id = record.get("job_id")
        if not isinstance(job_id, str) or rtype not in CLUSTER_RECORD_TYPES:
            state.skipped += 1
            continue
        if rtype == "placed":
            spec_payload = record.get("spec")
            spec_hash = record.get("spec_hash")
            worker = record.get("worker")
            if (
                job_id in state.jobs
                or not isinstance(spec_payload, dict)
                or not isinstance(spec_hash, str)
                or not isinstance(worker, str)
            ):
                state.skipped += 1
                continue
            state.jobs[job_id] = RecoveredPlacement(
                job_id=job_id,
                spec_hash=spec_hash,
                spec_payload=spec_payload,
                worker=worker,
                submitted_at=record.get("submitted_at"),
                deadline_epoch=record.get("deadline_epoch"),
            )
            continue
        job = state.jobs.get(job_id)
        if job is None:
            state.skipped += 1
            continue
        if rtype == "forwarded":
            worker_job_id = record.get("worker_job_id")
            if not isinstance(worker_job_id, str):
                state.skipped += 1
                continue
            job.worker_job_id = worker_job_id
            worker = record.get("worker")
            if isinstance(worker, str):
                job.worker = worker
            continue
        if rtype == "rerouted":
            worker = record.get("worker")
            if not isinstance(worker, str) or job.state in _RESOLVED_STATES:
                state.skipped += 1
                continue
            job.worker = worker
            job.worker_job_id = None  # rebound by the next ``forwarded``
            job.reroutes += 1
            continue
        # resolved
        new_state = record.get("state")
        if new_state not in _RESOLVED_STATES or job.state in _RESOLVED_STATES:
            state.skipped += 1
            continue
        job.state = new_state
        error = record.get("error")
        job.error = error if isinstance(error, str) else None
    return state
