"""Placement policies: which worker gets a job.

The router asks a policy one question — ``choose(spec_hash, workers)``
over the currently-eligible worker set (alive, engine-capable) — and the
two shipped answers bracket the design space:

``hash`` (:class:`ConsistentHashPolicy`)
    Pure content placement on the :class:`~repro.service.cluster.ring.
    HashRing`.  The same spec always lands on the same worker while the
    membership is stable, so worker-local disk caches and checkpoint
    directories stay hot, and a resubmitted spec finds its earlier
    result without any shared state.  Blind to load: a burst of distinct
    hot keys can pile onto one worker.

``capacity`` (:class:`CapacityPolicy`)
    Greedy bin-packing by declared weight and live load: place on the
    worker minimising ``(in_flight + 1) / weight`` — the first-fit-
    decreasing heuristic of the embedding literature (cf. the EC2
    bin-packing embedder referenced by ROADMAP item 1), with the
    consistent-hash owner used as the deterministic tie-break so equal
    loads degrade to ``hash`` behaviour rather than to submission-order
    noise.

Both are pure functions of their inputs — no wall clock, no RNG — so a
placement decision replayed from the journal matches the live one.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.errors import ServiceError
from repro.service.cluster.ring import HashRing

#: Registered policy names (the ``htp route --policy`` choices).
POLICIES = ("hash", "capacity")


class PlacementPolicy:
    """Interface: pick one of ``workers`` for ``spec_hash``.

    ``workers`` is a sequence of :class:`~repro.service.cluster.registry.
    WorkerInfo` records the router already filtered down to alive +
    engine-capable; a policy never second-guesses eligibility, only
    ranks.  Returns the chosen worker's id, or None for an empty set.
    """

    name = "abstract"

    def choose(self, spec_hash: str, workers: Sequence) -> Optional[str]:
        raise NotImplementedError

    # Rings depend on the membership snapshot; policies may cache per
    # (ids, weights) signature.  The default implementation rebuilds.
    @staticmethod
    def _ring(workers: Sequence) -> HashRing:
        return HashRing(
            {worker.worker_id: worker.weight for worker in workers}
        )


class ConsistentHashPolicy(PlacementPolicy):
    """Stable content placement on the weighted hash ring."""

    name = "hash"

    def __init__(self) -> None:
        self._cache_signature = None
        self._cache_ring: Optional[HashRing] = None

    def choose(self, spec_hash: str, workers: Sequence) -> Optional[str]:
        if not workers:
            return None
        signature = tuple(
            sorted((w.worker_id, w.weight) for w in workers)
        )
        if signature != self._cache_signature:
            self._cache_signature = signature
            self._cache_ring = self._ring(workers)
        return self._cache_ring.place(spec_hash)


class CapacityPolicy(PlacementPolicy):
    """Greedy weighted bin-packing with a hash-ring tie-break."""

    name = "capacity"

    def __init__(self) -> None:
        self._hash_tiebreak = ConsistentHashPolicy()

    def choose(self, spec_hash: str, workers: Sequence) -> Optional[str]:
        if not workers:
            return None
        def pressure(worker) -> float:
            return (worker.in_flight + 1) / float(worker.weight)
        least = min(pressure(worker) for worker in workers)
        lightest = [
            worker for worker in workers if pressure(worker) == least
        ]
        if len(lightest) == 1:
            return lightest[0].worker_id
        return self._hash_tiebreak.choose(spec_hash, lightest)


def replica_owners(
    key: str,
    workers: Sequence,
    count: int,
    exclude: Sequence[str] = (),
) -> list:
    """The first ``count`` distinct ring owners for ``key`` past ``exclude``.

    This is the replica-set rule both replication tiers share: walk the
    hash ring clockwise from ``key`` and collect worker ids, skipping
    ``exclude`` (normally the primary owner, so replicas never land on
    the copy that already exists).  A cluster smaller than
    ``count + len(exclude)`` simply yields fewer owners — replication
    degrades, it never blocks.  Pure: same membership, same answer.
    """
    if count < 1 or not workers:
        return []
    ring = PlacementPolicy._ring(workers)
    owners: list = []
    excluded = set(exclude)
    while len(owners) < count:
        owner = ring.place(key, exclude=excluded)
        if owner is None:
            break
        owners.append(owner)
        excluded.add(owner)
    return owners


def make_policy(name: str) -> PlacementPolicy:
    """Instantiate a registered policy by name."""
    if name == "hash":
        return ConsistentHashPolicy()
    if name == "capacity":
        return CapacityPolicy()
    raise ServiceError(
        f"unknown placement policy {name!r} (choose from {POLICIES})"
    )
