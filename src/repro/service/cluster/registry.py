"""Worker membership: registration, heartbeats, and the death ladder.

A worker announces itself once (:meth:`WorkerRegistry.register`) with
its URL, weight, supported engines and the content addresses already in
its disk cache; afterwards it heartbeats every ``heartbeat_interval``
seconds with its live load and any newly cached addresses.  The router
never polls healthy workers — the registry is updated entirely by these
pushes, plus the :meth:`overdue` sweep the router's monitor task runs.

Death is a ladder, not a cliff, mirroring the
:class:`~repro.core.faults.FaultTolerance` degradation ladder the
solver pool uses:

    alive --(missed heartbeats)--> suspect --(failed probes)--> dead

A ``suspect`` worker still *owns* its jobs (they may be seconds from
finishing); only ``dead`` triggers rerouting.  A worker that heartbeats
while suspect is restored to ``alive`` with its miss count reset; a
worker that reports after being declared dead is told to re-register
(the router answers its heartbeat with 404 and the agent rejoins as a
fresh member).

The registry also maintains the **cluster cache index**: the union of
content addresses each live worker has reported, consulted by the
router's read-through tier so a warm hit *anywhere* answers without a
solve.  The index is advisory — a stale entry costs one failed remote
lookup, never a wrong answer (results are content-addressed).

All deadline arithmetic (``last_heartbeat``, :meth:`overdue`) runs on
``time.monotonic`` — an NTP step of the wall clock must never walk the
whole fleet to ``suspect`` at once.  ``joined_at`` stays wall-clock
because it is display-only.  The clock is injectable so tests can
freeze and step it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import ServiceError

#: Worker lifecycle states.
WORKER_STATES = ("alive", "suspect", "dead")


@dataclass
class WorkerInfo:
    """One registered worker's membership record."""

    worker_id: str
    url: str
    weight: float = 1.0
    engines: tuple = ()
    max_concurrency: int = 1
    state: str = "alive"
    joined_at: float = field(default_factory=time.time)
    #: Monotonic-clock reading, not wall time: compared against the
    #: registry clock in :meth:`WorkerRegistry.overdue`.
    last_heartbeat: float = field(default_factory=time.monotonic)
    heartbeats: int = 0
    probe_failures: int = 0
    in_flight: int = 0
    cached_keys: Set[str] = field(default_factory=set)

    def supports(self, engine: str) -> bool:
        """Whether this worker declared support for ``engine``."""
        return not self.engines or engine in self.engines

    def status(self) -> Dict[str, object]:
        """The JSON view served by the router's ``GET /workers``."""
        return {
            "worker_id": self.worker_id,
            "url": self.url,
            "weight": self.weight,
            "engines": list(self.engines),
            "max_concurrency": self.max_concurrency,
            "state": self.state,
            "joined_at": self.joined_at,
            "last_heartbeat": self.last_heartbeat,
            "heartbeats": self.heartbeats,
            "in_flight": self.in_flight,
            "cached_keys": len(self.cached_keys),
        }


class WorkerRegistry:
    """Membership table plus the cluster-wide cache index.

    Parameters
    ----------
    heartbeat_interval:
        Seconds between expected worker heartbeats (announced back to
        joining workers, so one knob steers both sides).
    max_missed:
        Heartbeat periods a worker may miss before the monitor starts
        probing it (the ``alive -> suspect`` edge).
    probe_retries:
        Failed active probes before a suspect worker is declared dead
        (the ``suspect -> dead`` edge).
    clock:
        Monotonic time source for heartbeat deadlines (injectable so
        tests can freeze/step it; defaults to ``time.monotonic``).
    """

    def __init__(
        self,
        heartbeat_interval: float = 2.0,
        max_missed: int = 3,
        probe_retries: int = 2,
        clock=time.monotonic,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ServiceError("heartbeat_interval must be positive")
        if max_missed < 1 or probe_retries < 1:
            raise ServiceError(
                "max_missed and probe_retries must be at least 1"
            )
        self.heartbeat_interval = heartbeat_interval
        self.max_missed = max_missed
        self.probe_retries = probe_retries
        self._clock = clock
        self._workers: Dict[str, WorkerInfo] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, info: WorkerInfo) -> WorkerInfo:
        """Add (or re-add) a worker; rejoining resets its ladder state."""
        if not info.worker_id:
            raise ServiceError("worker_id must be non-empty")
        existing = self._workers.get(info.worker_id)
        if existing is not None and existing.state != "dead":
            # A re-join from a live worker (e.g. an agent retrying a
            # lost join response) refreshes the record in place.
            info.joined_at = existing.joined_at
        self._workers[info.worker_id] = info
        info.state = "alive"
        info.probe_failures = 0
        info.last_heartbeat = self._clock()
        return info

    def heartbeat(
        self,
        worker_id: str,
        in_flight: Optional[int] = None,
        cached_keys: Iterable[str] = (),
    ) -> bool:
        """Record a heartbeat; False means the worker must re-register.

        Heartbeats from ``dead`` workers are refused (False) — the
        router may already have rerouted their jobs, so the only safe
        path back is a fresh join.
        """
        worker = self._workers.get(worker_id)
        if worker is None or worker.state == "dead":
            return False
        worker.last_heartbeat = self._clock()
        worker.heartbeats += 1
        worker.state = "alive"
        worker.probe_failures = 0
        if in_flight is not None:
            worker.in_flight = int(in_flight)
        worker.cached_keys.update(cached_keys)
        return True

    def get(self, worker_id: str) -> WorkerInfo:
        try:
            return self._workers[worker_id]
        except KeyError as exc:
            raise ServiceError(f"unknown worker {worker_id!r}") from exc

    def workers(self) -> List[WorkerInfo]:
        """All workers, join order."""
        return list(self._workers.values())

    def alive(self, engine: Optional[str] = None) -> List[WorkerInfo]:
        """Workers eligible for placement (alive + supporting ``engine``).

        ``suspect`` workers are excluded from *new* placements — they
        keep their in-flight jobs but receive no more until they
        heartbeat back to ``alive``.
        """
        return [
            worker
            for worker in self._workers.values()
            if worker.state == "alive"
            and (engine is None or worker.supports(engine))
        ]

    def state_counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in WORKER_STATES}
        for worker in self._workers.values():
            counts[worker.state] += 1
        return counts

    # ------------------------------------------------------------------
    # The death ladder
    # ------------------------------------------------------------------
    def overdue(self, now: Optional[float] = None) -> List[WorkerInfo]:
        """Alive/suspect workers whose heartbeat budget has lapsed.

        The router's monitor probes each returned worker and feeds the
        outcome to :meth:`probe_failed` / :meth:`heartbeat`.
        """
        now = self._clock() if now is None else now
        budget = self.heartbeat_interval * self.max_missed
        return [
            worker
            for worker in self._workers.values()
            if worker.state in ("alive", "suspect")
            and now - worker.last_heartbeat > budget
        ]

    def probe_failed(self, worker_id: str) -> str:
        """Record one failed probe; returns the worker's new state."""
        worker = self.get(worker_id)
        if worker.state == "dead":
            return "dead"
        worker.state = "suspect"
        worker.probe_failures += 1
        if worker.probe_failures >= self.probe_retries:
            worker.state = "dead"
        return worker.state

    def mark_dead(self, worker_id: str) -> WorkerInfo:
        """Declare a worker dead outright (probe short-circuit)."""
        worker = self.get(worker_id)
        worker.state = "dead"
        return worker

    # ------------------------------------------------------------------
    # The cluster cache index
    # ------------------------------------------------------------------
    def cache_owners(self, spec_hash: str) -> List[WorkerInfo]:
        """Live workers that have reported ``spec_hash`` in their cache."""
        return [
            worker
            for worker in self._workers.values()
            if worker.state == "alive" and spec_hash in worker.cached_keys
        ]

    def forget_cached(self, worker_id: str, spec_hash: str) -> None:
        """Drop a stale index entry after a failed remote lookup."""
        worker = self._workers.get(worker_id)
        if worker is not None:
            worker.cached_keys.discard(spec_hash)
