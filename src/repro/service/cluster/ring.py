"""Consistent-hash ring placing content addresses on workers.

The cluster router places every job by its :meth:`JobSpec.canonical_hash`
content address, so the map from work to worker must be *stable*: adding
or removing one worker may move only the keys that land on that worker's
arc, never reshuffle the whole key space (which would cold-start every
worker-local cache and checkpoint directory at once).  A consistent-hash
ring gives exactly that property.

Each worker owns ``replicas`` virtual points on a 64-bit ring, drawn
deterministically from SHA-256 over ``"<worker_id>#<index>"``; a key is
placed on the first point clockwise from its own hash.  Replica counts
scale with the worker's declared weight, so a weight-2 worker owns about
twice the arc of a weight-1 worker — the cheap half of heterogeneous
placement (the expensive half, live load, is the
:class:`~repro.service.cluster.placement.CapacityPolicy`'s job).

Everything here is pure and process-independent: the same worker set and
weights produce the same placement in the router, in tests and across
restarts — the property the journaled-failover tests pin down.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError

#: Ring points per unit of worker weight.  Large enough that arcs even
#: out (the classic variance argument), small enough that rebuilding the
#: ring on membership change stays trivially cheap.
REPLICAS_PER_WEIGHT = 64


def _point(label: str) -> int:
    """A deterministic 64-bit ring position for ``label``."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def key_position(key: str) -> int:
    """Ring position of a content address (any hex digest string)."""
    return _point(f"key:{key}")


class HashRing:
    """An immutable consistent-hash ring over a weighted worker set.

    Parameters
    ----------
    weights:
        Mapping ``worker_id -> weight``; weight must be positive and
        scales the worker's share of the ring.

    Examples
    --------
    >>> ring = HashRing({"a": 1.0, "b": 1.0})
    >>> ring.place("00" * 32) in ("a", "b")
    True
    >>> ring.place("00" * 32) == HashRing({"a": 1.0, "b": 1.0}).place("00" * 32)
    True
    """

    def __init__(self, weights: Dict[str, float]) -> None:
        points: List[Tuple[int, str]] = []
        for worker_id, weight in weights.items():
            if weight <= 0:
                raise ServiceError(
                    f"worker {worker_id!r} weight must be positive, "
                    f"got {weight!r}"
                )
            replicas = max(1, round(float(weight) * REPLICAS_PER_WEIGHT))
            for index in range(replicas):
                points.append((_point(f"{worker_id}#{index}"), worker_id))
        # Sort by position; break position collisions by worker id so
        # the ring is a pure function of the weight mapping.
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners = [worker_id for _, worker_id in points]
        self.weights = dict(weights)

    def __len__(self) -> int:
        return len(self._positions)

    def place(
        self, key: str, exclude: Optional[Sequence[str]] = None
    ) -> Optional[str]:
        """The worker owning ``key``, walking clockwise past ``exclude``.

        Returns None when the ring is empty or every worker is excluded
        (the caller decides whether that is a queue-and-wait or an
        error).
        """
        if not self._positions:
            return None
        excluded = frozenset(exclude or ())
        start = bisect.bisect_right(self._positions, key_position(key))
        for step in range(len(self._owners)):
            owner = self._owners[(start + step) % len(self._owners)]
            if owner not in excluded:
                return owner
        return None

    def arc_shares(self) -> Dict[str, float]:
        """Fraction of the key space each worker owns (sums to 1.0).

        Diagnostic used by tests to assert weights translate into
        proportional arcs.
        """
        if not self._positions:
            return {}
        total = float(1 << 64)
        shares: Dict[str, float] = {}
        for index, position in enumerate(self._positions):
            previous = self._positions[index - 1] if index else (
                self._positions[-1] - (1 << 64)
            )
            shares[self._owners[index]] = (
                shares.get(self._owners[index], 0.0)
                + (position - previous) / total
            )
        return shares
