"""Cluster tier: a router placing content-addressed jobs on N workers.

ROADMAP item 1 — "one box is not a service".  The pieces:

- :mod:`~repro.service.cluster.ring` — weighted consistent hashing.
- :mod:`~repro.service.cluster.placement` — pluggable placement
  policies (``hash``, ``capacity``).
- :mod:`~repro.service.cluster.registry` — worker membership,
  heartbeats, and the alive → suspect → dead ladder.
- :mod:`~repro.service.cluster.journal` — the router's write-ahead
  placement journal replay.
- :mod:`~repro.service.cluster.router` — the router core + HTTP front
  end (``htp route``).
- :mod:`~repro.service.cluster.agent` — the worker-side join/heartbeat
  daemon (``htp serve --join``).
- :mod:`~repro.service.cluster.replication` — shared-nothing failover:
  the worker-side cluster view (fencing epoch, peers, standby URL) and
  the checkpoint replicator pushing CRC-stamped frames to ring-chosen
  peers.

See ``docs/cluster.md`` for the topology and failover walkthrough.
"""

from repro.service.cluster.agent import WorkerAgent, default_worker_id
from repro.service.cluster.journal import (
    CLUSTER_RECORD_TYPES,
    RecoveredCluster,
    RecoveredPlacement,
    replay_cluster,
)
from repro.service.cluster.placement import (
    POLICIES,
    CapacityPolicy,
    ConsistentHashPolicy,
    PlacementPolicy,
    make_policy,
    replica_owners,
)
from repro.service.cluster.replication import (
    CheckpointReplicator,
    ClusterView,
    PeerInfo,
)
from repro.service.cluster.registry import (
    WORKER_STATES,
    WorkerInfo,
    WorkerRegistry,
)
from repro.service.cluster.ring import HashRing, key_position
from repro.service.cluster.router import (
    ROUTER_CACHE,
    ClusterRouter,
    NoCapacityError,
    ResultNotReady,
    RouterBusyError,
    RouterJob,
    RouterServer,
    RouterThread,
    UnknownJobError,
    route,
)

__all__ = [
    "CLUSTER_RECORD_TYPES",
    "CapacityPolicy",
    "CheckpointReplicator",
    "ClusterRouter",
    "ClusterView",
    "ConsistentHashPolicy",
    "HashRing",
    "NoCapacityError",
    "POLICIES",
    "PeerInfo",
    "PlacementPolicy",
    "ROUTER_CACHE",
    "RecoveredCluster",
    "RecoveredPlacement",
    "ResultNotReady",
    "RouterBusyError",
    "RouterJob",
    "RouterServer",
    "RouterThread",
    "UnknownJobError",
    "WORKER_STATES",
    "WorkerAgent",
    "WorkerInfo",
    "WorkerRegistry",
    "default_worker_id",
    "key_position",
    "make_policy",
    "replay_cluster",
    "replica_owners",
    "route",
]
