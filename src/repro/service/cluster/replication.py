"""Shared-nothing replication: checkpoints and the cluster view.

Before this module, bit-identical failover leaned on a shared
``--checkpoint-dir``: kill a worker mid-solve and the survivor resumed
from the dead process's frames only because both pointed at the same
directory.  Real fleets do not share a filesystem.  Here every worker
keeps a *private* checkpoint root and the frames travel over HTTP:

* :class:`ClusterView` is the worker-side snapshot of what the router
  announces on every join/heartbeat response — the fencing epoch, the
  live peer set, the replica count and the standby router's URL.  One
  instance is shared (under a lock) between the heartbeat agent that
  updates it and the HTTP server that consults it.
* :class:`CheckpointReplicator` pushes newly-written checkpoint frames
  to the replica owners the hash ring names for each spec (excluding
  this worker, which already holds the original), riding the heartbeat
  cadence so replication lag is bounded by one heartbeat interval.  On
  the receiving side a frame is CRC-verified *before* it touches disk
  (:func:`repro.core.checkpoint.install_checkpoint_frame`); a frame torn
  in transit is a counted discard, never a resume candidate.
* :meth:`CheckpointReplicator.fetch` is the failover read path: a worker
  handed a job it has no local frames for asks the replica owners for
  their newest frames and installs whatever verifies, after which the
  ordinary ``resume_from`` machinery continues the solve bit-identically
  — the same guarantee as the shared-directory era, without the shared
  directory.

Frames are only ever *added* under a spec's directory; sequence numbers
come from the producer, so pushing the same frame twice is idempotent
(``os.replace`` onto identical content).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.checkpoint import (
    install_checkpoint_frame,
    list_checkpoint_frames,
    read_checkpoint_file,
)
from repro.core.perf import PerfCounters
from repro.service.cluster.placement import replica_owners


@dataclass
class PeerInfo:
    """One peer as announced by the router (enough to place replicas)."""

    worker_id: str
    url: str
    weight: float = 1.0


class ClusterView:
    """Thread-safe snapshot of the router's announcements.

    The heartbeat agent calls :meth:`update` with every join/heartbeat
    response; the worker's HTTP server calls :meth:`admit_epoch` on every
    forwarded job to fence zombie routers.  ``epoch`` only ever grows.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = 0
        self._peers: Dict[str, PeerInfo] = {}
        self._replicas = 1
        self._standby_url: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    @property
    def replicas(self) -> int:
        with self._lock:
            return self._replicas

    @property
    def standby_url(self) -> Optional[str]:
        with self._lock:
            return self._standby_url

    def peers(self, exclude: str = "") -> List[PeerInfo]:
        """The announced peer set, minus ``exclude`` (normally self)."""
        with self._lock:
            return [
                peer
                for peer in self._peers.values()
                if peer.worker_id != exclude
            ]

    # ------------------------------------------------------------------
    def update(self, doc: Dict[str, object]) -> bool:
        """Fold a join/heartbeat response in; True if the epoch advanced.

        Unknown or missing keys are ignored — an old router that does
        not announce cluster state simply leaves the view at its
        defaults, and replication quietly stays off (no peers).
        """
        bumped = False
        with self._lock:
            epoch = doc.get("epoch")
            if isinstance(epoch, int) and epoch > self._epoch:
                bumped = self._epoch > 0
                self._epoch = epoch
            replicas = doc.get("replicas")
            if isinstance(replicas, int) and replicas >= 0:
                self._replicas = replicas
            standby = doc.get("standby")
            if isinstance(standby, str) or standby is None:
                self._standby_url = standby
            peers = doc.get("peers")
            if isinstance(peers, list):
                table: Dict[str, PeerInfo] = {}
                for entry in peers:
                    if not isinstance(entry, dict):
                        continue
                    worker_id = entry.get("worker_id")
                    url = entry.get("url")
                    if isinstance(worker_id, str) and isinstance(url, str):
                        table[worker_id] = PeerInfo(
                            worker_id=worker_id,
                            url=url,
                            weight=float(entry.get("weight", 1.0)),
                        )
                self._peers = table
        return bumped

    def admit_epoch(self, epoch: object) -> bool:
        """Fence a forwarded job's epoch stamp.

        Newer-or-equal epochs are admitted (newer ones adopted — the
        forward may be the first news of a takeover); older epochs are
        refused, which is exactly the zombie-primary case: a fenced
        router keeps forwarding with its stale epoch and every worker
        answers 409.
        """
        if not isinstance(epoch, int):
            return True  # unstamped forwards (pre-cluster clients) pass
        with self._lock:
            if epoch < self._epoch:
                return False
            self._epoch = epoch
            return True


class CheckpointReplicator:
    """Pushes local checkpoint frames to ring-chosen replica peers.

    Parameters
    ----------
    checkpoint_root:
        This worker's private checkpoint root (``<root>/<spec_hash>/``
        per job, the layout :class:`~repro.service.jobs.JobManager`
        maintains).
    worker_id:
        This worker's id — excluded from its own replica sets.
    view:
        The shared :class:`ClusterView` naming peers and replica count.
    client_factory:
        ``url -> client`` hook (tests inject fakes); the client needs
        ``ckpt_push``, ``ckpt_frames`` and ``ckpt_frame``.
    counters:
        Shared perf struct (``ckpt_replications`` per frame pushed,
        ``ckpt_replica_fetches`` per frame installed on fetch).
    """

    def __init__(
        self,
        checkpoint_root: Union[str, Path],
        worker_id: str,
        view: ClusterView,
        client_factory: Optional[Callable[[str], object]] = None,
        counters: Optional[PerfCounters] = None,
    ) -> None:
        if client_factory is None:
            from repro.service.client import ServiceClient

            def client_factory(url: str):
                return ServiceClient(url, timeout=10.0)

        self.checkpoint_root = Path(checkpoint_root)
        self.worker_id = worker_id
        self.view = view
        self.counters = counters
        self._client_factory = client_factory
        #: Newest frame seq pushed per (peer_id, spec_hash); replication
        #: is incremental — each sweep ships only what is new.
        self._pushed: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Push (producer side, rides the heartbeat cadence)
    # ------------------------------------------------------------------
    def sync(self) -> int:
        """Push every frame newer than the last push to each replica owner.

        Returns the number of frames shipped.  Unreachable peers are
        skipped without resetting the high-water mark, so the next sweep
        retries exactly the frames they missed.  With no peers (or
        ``replicas`` 0) this is a no-op — a one-worker cluster replicates
        nothing and loses nothing it could have kept.
        """
        peers = self.view.peers(exclude=self.worker_id)
        count = self.view.replicas
        if not peers or count < 1 or not self.checkpoint_root.is_dir():
            return 0
        by_id = {peer.worker_id: peer for peer in peers}
        shipped = 0
        for spec_dir in sorted(self.checkpoint_root.iterdir()):
            if not spec_dir.is_dir():
                continue
            frames = list_checkpoint_frames(spec_dir)
            if not frames:
                continue
            owners = replica_owners(
                spec_dir.name, peers, count, exclude=(self.worker_id,)
            )
            for owner in owners:
                shipped += self._push_frames(
                    by_id[owner], spec_dir.name, frames
                )
        return shipped

    def _push_frames(
        self, peer: PeerInfo, spec_hash: str, frames: List[Tuple[int, Path]]
    ) -> int:
        from repro.service.client import ServiceClientError

        mark = self._pushed.get((peer.worker_id, spec_hash), -1)
        shipped = 0
        for seq, path in frames:
            if seq <= mark:
                continue
            try:
                envelope = _read_envelope(path)
            except Exception:
                continue  # torn local frame; the CRC layer owns counting
            try:
                self._client_factory(peer.url).ckpt_push(
                    spec_hash, seq, envelope
                )
            except ServiceClientError:
                return shipped  # peer unreachable; retry next sweep
            mark = seq
            self._pushed[(peer.worker_id, spec_hash)] = mark
            shipped += 1
            if self.counters is not None:
                self.counters.ckpt_replications += 1
        return shipped

    # ------------------------------------------------------------------
    # Fetch (failover read path)
    # ------------------------------------------------------------------
    def fetch(self, spec_hash: str) -> int:
        """Pull newer replicated frames for ``spec_hash`` from the peers.

        Called by the worker server when a forwarded job has no local
        frames (or only older ones): every peer is asked what it holds,
        and any frame newer than the local newest is fetched and
        CRC-verified into the local spec directory.  Returns the number
        of frames installed; 0 is normal (cold job, no replicas yet).
        """
        from repro.service.client import ServiceClientError

        spec_dir = self.checkpoint_root / spec_hash
        local = list_checkpoint_frames(spec_dir)
        newest_local = local[-1][0] if local else -1
        installed = 0
        for peer in self.view.peers(exclude=self.worker_id):
            client = self._client_factory(peer.url)
            try:
                listing = client.ckpt_frames(spec_hash)
            except ServiceClientError:
                continue
            frames = listing.get("frames", [])
            if not isinstance(frames, list):
                continue
            for seq in sorted(int(s) for s in frames):
                if seq <= newest_local:
                    continue
                try:
                    envelope = client.ckpt_frame(spec_hash, seq)
                except ServiceClientError:
                    continue
                if (
                    install_checkpoint_frame(
                        spec_dir, seq, envelope, counters=self.counters
                    )
                    is not None
                ):
                    installed += 1
                    newest_local = max(newest_local, seq)
                    if self.counters is not None:
                        self.counters.ckpt_replica_fetches += 1
        return installed


def _read_envelope(path: Path) -> Dict[str, object]:
    """A frame file's ``{"crc32", "payload"}`` envelope, CRC-verified.

    :func:`read_checkpoint_file` raises on a torn local frame, so what
    travels is always an envelope the receiver can verify again.
    """
    import json

    read_checkpoint_file(path)  # raises CheckpointError on a torn frame
    return json.loads(path.read_text(encoding="utf-8"))
