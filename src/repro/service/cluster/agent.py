"""Worker-side cluster agent: join the router, then heartbeat forever.

``htp serve --join http://router`` runs a normal single-box
:class:`~repro.service.server.PartitionServer` plus one of these agents
on a daemon thread.  The agent:

1. **joins** — ``POST /workers/join`` announcing the worker's id, URL,
   weight, supported engines, concurrency and the content addresses
   already in its disk cache (so a restarted worker immediately
   re-enters the cluster cache index warm);
2. **heartbeats** — every ``interval`` seconds, ``POST
   /workers/<id>/heartbeat`` with the live queue depth and any content
   addresses cached since the last beat;
3. **rejoins** — a heartbeat answered with 404 means the router
   declared this worker dead (or restarted and lost its membership);
   the agent simply runs step 1 again.  Unreachable routers are retried
   with the bounded backoff of a :class:`~repro.core.faults.
   FaultTolerance` — a worker survives a router outage and reattaches
   when it returns.

Beyond the membership loop the agent is the worker's window on the
cluster: every join/heartbeat response updates a shared
:class:`~repro.service.cluster.replication.ClusterView` (fencing epoch,
peer set, replica count, standby URL).  An epoch bump observed on a
heartbeat means a new router incarnation took over — the agent
re-registers immediately so placement state is rebuilt under the new
epoch.  When the router stays unreachable past ``failover_after``
consecutive contacts and a standby URL is known, the agent retargets its
client at the standby and keeps joining there until the takeover
completes (the standby 503s joins while still tailing).  If a
:class:`~repro.service.cluster.replication.CheckpointReplicator` is
attached, each successful heartbeat also pushes newly-written
checkpoint frames to the replica peers, so replication lag is bounded
by one heartbeat interval.
"""

from __future__ import annotations

import threading
import uuid
from typing import Callable, Dict, Iterable, Optional, Set

from repro.core.faults import FaultTolerance
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.cluster.replication import ClusterView


def default_worker_id() -> str:
    """A fresh worker identity (stable for the process lifetime)."""
    return f"worker-{uuid.uuid4().hex[:10]}"


class WorkerAgent:
    """The join/heartbeat daemon thread of one cluster worker.

    Parameters
    ----------
    router_url:
        Base URL of the ``htp route`` process.
    worker_url:
        This worker's own advertised base URL (the router submits jobs
        here, so it must be reachable *from the router*).
    worker_id:
        Stable identity; defaults to a fresh ``worker-<hex>``.
    weight:
        Declared capacity weight for placement (see the ring docs).
    engines:
        Engines this worker accepts (empty: everything).
    max_concurrency:
        The worker's ``JobManager`` concurrency, announced for the
        router's capacity policy.
    cached_keys:
        Callable returning the content addresses currently in the
        worker's cache (only new ones are sent per beat).
    load:
        Callable returning the worker's in-flight job count
        (queued + running).
    interval:
        Heartbeat period; overridden by the router's announced interval
        on join when the router asks for a different cadence.
    tolerance:
        Retry budgets for unreachable-router backoff.
    failover_after:
        Consecutive failed router contacts before the agent retargets
        at the announced standby URL (when one is known).
    """

    def __init__(
        self,
        router_url: str,
        worker_url: str,
        worker_id: Optional[str] = None,
        weight: float = 1.0,
        engines: Iterable[str] = (),
        max_concurrency: int = 1,
        cached_keys: Optional[Callable[[], Iterable[str]]] = None,
        load: Optional[Callable[[], int]] = None,
        interval: float = 2.0,
        tolerance: Optional[FaultTolerance] = None,
        client_timeout: float = 10.0,
        failover_after: int = 3,
    ) -> None:
        self.worker_id = worker_id or default_worker_id()
        self.worker_url = worker_url
        self.router_url = router_url
        self.weight = float(weight)
        self.engines = tuple(engines)
        self.max_concurrency = int(max_concurrency)
        self.interval = float(interval)
        self.tolerance = tolerance or FaultTolerance()
        self.failover_after = max(1, int(failover_after))
        self._cached_keys = cached_keys or (lambda: ())
        self._load = load or (lambda: 0)
        self._client_timeout = client_timeout
        self._client = ServiceClient(router_url, timeout=client_timeout)
        self._reported: Set[str] = set()
        self._joined = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.view = ClusterView()
        #: Optional CheckpointReplicator, attached by the serve wiring;
        #: synced after every successful heartbeat.
        self.replicator = None
        self.beats = 0
        self.rejoins = 0
        self.failovers = 0
        self._router_failures = 0

    # ------------------------------------------------------------------
    @property
    def joined(self) -> bool:
        """Whether the most recent join/heartbeat was acknowledged."""
        return self._joined.is_set()

    def join_payload(self) -> Dict[str, object]:
        """The membership announcement (also reused on rejoin)."""
        keys = set(self._cached_keys())
        self._reported = set(keys)
        return {
            "worker_id": self.worker_id,
            "url": self.worker_url,
            "weight": self.weight,
            "engines": list(self.engines),
            "max_concurrency": self.max_concurrency,
            "cached_keys": sorted(keys),
        }

    def join_once(self) -> bool:
        """One join attempt; True when the router acknowledged."""
        try:
            response = self._client._request(
                "POST", "/workers/join", body=self.join_payload()
            )
        except ServiceClientError:
            self._joined.clear()
            self._router_failed()
            return False
        self._router_failures = 0
        announced = response.get("heartbeat_interval")
        if isinstance(announced, (int, float)) and announced > 0:
            self.interval = float(announced)
        self.view.update(response)
        self._joined.set()
        return True

    def heartbeat_once(self) -> bool:
        """One heartbeat; rejoins on 404, False when unreachable."""
        keys = set(self._cached_keys())
        fresh = sorted(keys - self._reported)
        try:
            response = self._client._request(
                "POST",
                f"/workers/{self.worker_id}/heartbeat",
                body={"in_flight": int(self._load()), "cached_keys": fresh},
            )
        except ServiceClientError as exc:
            if exc.status == 404:
                # Declared dead (or the router restarted): re-register.
                self.rejoins += 1
                return self.join_once()
            self._joined.clear()
            self._router_failed()
            return False
        self._router_failures = 0
        self._reported.update(fresh)
        if self.view.update(response):
            # The fencing epoch advanced under our feet — a new router
            # incarnation took over.  Re-register so its membership
            # table (and the placement ring) includes this worker.
            self.rejoins += 1
            return self.join_once()
        self._joined.set()
        self.beats += 1
        if self.replicator is not None:
            try:
                self.replicator.sync()
            except Exception:  # pragma: no cover - defensive
                pass  # replication is best-effort, never kills the beat
        return True

    def _router_failed(self) -> None:
        """Count a failed contact; retarget at the standby when owed.

        The standby URL was learned from the *old* primary's
        announcements.  While the standby is still tailing it answers
        503 (also a failure), so the agent simply keeps knocking there
        until the takeover flips it active; a fenced old primary coming
        back cannot reclaim the agent because nothing retargets away
        from the standby except another announced failover.
        """
        self._router_failures += 1
        standby = self.view.standby_url
        if (
            self._router_failures >= self.failover_after
            and standby
            and standby != self.router_url
        ):
            self.router_url = standby
            self._client = ServiceClient(
                standby, timeout=self._client_timeout
            )
            self._router_failures = 0
            self.failovers += 1

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the daemon thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name=f"cluster-agent-{self.worker_id}",
            daemon=True,
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop heartbeating and join the thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def wait_joined(self, timeout: float = 10.0) -> bool:
        """Block until the router has acknowledged this worker."""
        return self._joined.wait(timeout)

    def _run(self) -> None:
        wave = 0
        while not self._stop.is_set():
            if not self._joined.is_set():
                if self.join_once():
                    wave = 0
                else:
                    # Router unreachable: bounded backoff, then retry —
                    # the worker outlives a router outage.
                    wave = min(wave + 1, self.tolerance.task_retries + 1)
                    if self._stop.wait(self.tolerance.backoff(wave)):
                        return
                    continue
            if self._stop.wait(self.interval):
                return
            self.heartbeat_once()
