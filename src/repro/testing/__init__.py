"""Reusable test-support utilities (invariant checkers, harness helpers).

This package ships *inside* ``repro`` (not under ``tests/``) so that the
chaos harness, property-based tests and any downstream consumer can
import the same invariant checkers without path games.
"""

from repro.testing.netfaults import (
    NET_KINDS,
    FaultProxy,
    NetFaultPlan,
    NetFaultSpec,
)
from repro.testing.invariants import (
    InvariantViolation,
    assert_cost_optimal,
    assert_gap_bounded,
    check_cost_telescoping,
    check_cut_identity,
    check_g_properties,
    check_metric_result,
    check_partition_feasible,
    check_spreading_monotonicity,
)

__all__ = [
    "NET_KINDS",
    "FaultProxy",
    "NetFaultPlan",
    "NetFaultSpec",
    "InvariantViolation",
    "assert_cost_optimal",
    "assert_gap_bounded",
    "check_cost_telescoping",
    "check_cut_identity",
    "check_g_properties",
    "check_metric_result",
    "check_partition_feasible",
    "check_spreading_monotonicity",
]
