"""Deterministic network-fault injection between cluster processes.

The cluster chaos drills need to say things like "two seconds in, the
primary router loses the network" and have the statement be *replayable*
— the same plan, seed and connection order must inject the same faults
every run, because the drills assert bit-identical results on the far
side of the failure.  Library-level mocks cannot prove that: the faults
must hit real sockets carrying real HTTP traffic.

:class:`FaultProxy` is a plain TCP relay for one named **link**
(``router->w1``, ``client->router``, ...): it listens on a local port
and forwards byte streams to one upstream address, consulting a
:class:`NetFaultPlan` at every accept and every relayed chunk.  Cluster
tests point a worker's ``--join`` URL, a client's base URL or a
standby's ``--standby`` URL at the proxy's port instead of the real
process, and the wire between them becomes scriptable.

Plans reuse the compact fault DSL from :mod:`repro.core.faults`
(``kind:site[@k=v,...];...`` — same splitter, same seeded uniform
draws) with a network vocabulary::

    latency:client->router@delay=0.2
    drop:router->w1@p=0.5
    half_close:client->router@after=1s
    partition:router->w1@after=2s,duration=10s
    reorder:client->router

Kinds
-----
``latency``
    Hold every relayed chunk for ``delay`` seconds before forwarding.
``drop``
    Black-hole the connection: bytes are read and discarded, nothing
    reaches the upstream, the peer eventually times out or sees a
    close.
``half_close``
    Forward the first chunk, then shut down that direction of the
    stream (``SHUT_WR``) — the classic wedged-socket failure where one
    side still looks connected.
``partition``
    While active, sever new connections at accept and live connections
    at their next relayed chunk — the link is gone in both directions.
``reorder``
    Deliver chunks pairwise swapped (the second chunk overtakes the
    first).  Visible only to peers that stream multiple chunks.

Conditions
----------
``after=<seconds>`` (arm delay, default 0; a trailing ``s`` is
accepted: ``after=2s``), ``duration=<seconds>`` (how long the fault
stays armed, default forever), ``p=<probability>`` (per-connection
deterministic draw, default 1), ``delay=<seconds>`` (latency hold,
default 0.2).  The link site also accepts ``*`` to match every link.

Every *applied* fault — one that touched live traffic, not one merely
scheduled — appends to :attr:`FaultProxy.injected` and increments
``netfaults_injected`` on the proxy's :class:`PerfCounters`, so drills
can assert the partition actually happened rather than the test
passing vacuously.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.faults import (
    FaultPlanError,
    deterministic_uniform,
    split_plan,
)
from repro.core.perf import PerfCounters

#: Network fault kinds a spec may request.
NET_KINDS = ("latency", "drop", "half_close", "partition", "reorder")

#: Relay chunk size (bytes) — large enough that an HTTP/1.0 request or
#: response is usually one chunk, so ``reorder`` only bites peers that
#: genuinely stream.
_CHUNK = 65536


def _seconds(value: str) -> float:
    """Parse a seconds value, tolerating a trailing ``s`` (``2s``)."""
    text = value.strip()
    if text and text[-1] in ("s", "S"):
        text = text[:-1]
    return float(text)


@dataclass(frozen=True)
class NetFaultSpec:
    """One scheduled network fault on one named link.

    Attributes
    ----------
    kind:
        One of :data:`NET_KINDS`.
    link:
        The link name this spec targets (``router->w1``), or ``*``.
    after / duration:
        The fault arms ``after`` seconds past proxy start and stays
        armed for ``duration`` seconds (None = forever).
    p:
        Per-connection firing probability in (0, 1]; drawn
        deterministically from the plan seed and connection ordinal.
    delay:
        Seconds each chunk is held (``latency`` only).
    """

    kind: str
    link: str
    after: float = 0.0
    duration: Optional[float] = None
    p: float = 1.0
    delay: float = 0.2

    def __post_init__(self) -> None:
        if self.kind not in NET_KINDS:
            raise FaultPlanError(
                f"unknown net fault kind {self.kind!r} "
                f"(choose from {NET_KINDS})"
            )
        if not self.link:
            raise FaultPlanError("net fault link must be non-empty")
        if self.after < 0:
            raise FaultPlanError("after must be nonnegative")
        if self.duration is not None and self.duration <= 0:
            raise FaultPlanError("duration must be positive")
        if not 0.0 < self.p <= 1.0:
            raise FaultPlanError("p must be in (0, 1]")
        if self.delay < 0:
            raise FaultPlanError("delay must be nonnegative")

    def active(self, elapsed: float) -> bool:
        """True when the fault is armed ``elapsed`` seconds into the run."""
        if elapsed < self.after:
            return False
        return self.duration is None or elapsed < self.after + self.duration

    def describe(self) -> str:
        """The spec back in plan syntax."""
        conds = []
        if self.after:
            conds.append(f"after={self.after:g}")
        if self.duration is not None:
            conds.append(f"duration={self.duration:g}")
        if self.p < 1.0:
            conds.append(f"p={self.p:g}")
        if self.kind == "latency":
            conds.append(f"delay={self.delay:g}")
        suffix = "@" + ",".join(conds) if conds else ""
        return f"{self.kind}:{self.link}{suffix}"


@dataclass(frozen=True)
class NetFaultPlan:
    """An immutable, seedable schedule of network faults.

    Examples
    --------
    >>> plan = NetFaultPlan.parse("partition:router->w1@after=2s")
    >>> plan.specs[0].kind, plan.specs[0].after
    ('partition', 2.0)
    >>> plan.specs[0].active(1.0), plan.specs[0].active(3.0)
    (False, True)
    """

    specs: Tuple[NetFaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "NetFaultPlan":
        """Parse ``kind:link[@k=v,...]`` specs joined by ``;``."""
        specs = []
        for kind, link, conditions in split_plan(text):
            after, duration, p, delay = 0.0, None, 1.0, 0.2
            for key, value in conditions.items():
                try:
                    if key == "after":
                        after = _seconds(value)
                    elif key == "duration":
                        duration = _seconds(value)
                    elif key == "p":
                        p = float(value)
                    elif key == "delay":
                        delay = _seconds(value)
                    else:
                        raise FaultPlanError(
                            f"unknown net fault condition {key!r} "
                            "(choose from after/duration/p/delay)"
                        )
                except ValueError as exc:
                    if isinstance(exc, FaultPlanError):
                        raise
                    raise FaultPlanError(
                        f"bad value {value!r} for {key!r} in net fault plan"
                    ) from exc
            specs.append(
                NetFaultSpec(
                    kind=kind, link=link,
                    after=after, duration=duration, p=p, delay=delay,
                )
            )
        return cls(specs=tuple(specs), seed=seed)

    def describe(self) -> str:
        """The plan back in ``--plan`` syntax."""
        return ";".join(spec.describe() for spec in self.specs)

    def draw(
        self, link: str, elapsed: float, ordinal: int
    ) -> List[NetFaultSpec]:
        """Specs applying to connection ``ordinal`` on ``link`` now.

        Pure: the probabilistic part hashes ``(seed, spec index, link,
        ordinal)``, so a replay with the same accept order injects the
        same faults.
        """
        chosen = []
        for index, spec in enumerate(self.specs):
            if spec.link not in (link, "*"):
                continue
            if not spec.active(elapsed):
                continue
            if spec.p >= 1.0 or deterministic_uniform(
                self.seed, index, link, (("conn", ordinal),)
            ) < spec.p:
                chosen.append(spec)
        return chosen


class FaultProxy:
    """A TCP relay for one named link, applying a :class:`NetFaultPlan`.

    Parameters
    ----------
    upstream_host / upstream_port:
        The real endpoint traffic should reach when no fault is active.
    link:
        This proxy's link name, matched against spec sites.
    plan:
        The fault schedule (None = transparent relay).
    counters:
        Optional :class:`PerfCounters`; every applied fault increments
        ``netfaults_injected``.
    clock:
        Injectable monotonic clock for arming arithmetic (tests freeze
        and step it).
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        link: str,
        plan: Optional[NetFaultPlan] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        counters: Optional[PerfCounters] = None,
        clock=time.monotonic,
    ) -> None:
        self.link = link
        self.plan = plan
        self.counters = counters
        self._clock = clock
        self._upstream = (upstream_host, int(upstream_port))
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._accepted = 0
        self._injected: List[str] = []
        self._closing = False
        self._started = self._clock()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(32)
        self._listener = listener
        self.host = host
        self.port = listener.getsockname()[1]

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """HTTP base URL of the proxied endpoint."""
        return f"http://{self.host}:{self.port}"

    @property
    def injected(self) -> List[str]:
        """Descriptions of every fault applied to live traffic so far."""
        with self._lock:
            return list(self._injected)

    def elapsed(self) -> float:
        """Seconds since the proxy started (arming clock)."""
        return self._clock() - self._started

    def start(self) -> "FaultProxy":
        """Begin accepting; the arming clock restarts now."""
        self._started = self._clock()
        thread = threading.Thread(
            target=self._accept_loop,
            name=f"netfaults-{self.link}",
            daemon=True,
        )
        thread.start()
        self._threads.append(thread)
        return self

    def stop(self) -> None:
        """Stop accepting and sever every live connection."""
        self._closing = True
        # A blocked accept() does not reliably wake when the listener is
        # closed from another thread; one throwaway self-connection does.
        try:
            socket.create_connection(
                (self.host, self.port), timeout=1.0
            ).close()
        except OSError:
            pass
        self._close_quietly(self._listener)
        with self._lock:
            conns = list(self._conns)
        for sock in conns:
            self._close_quietly(sock)
        for thread in self._threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "FaultProxy":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _draw(self, ordinal: int) -> List[NetFaultSpec]:
        if self.plan is None:
            return []
        return self.plan.draw(self.link, self.elapsed(), ordinal)

    def _count(self, spec: NetFaultSpec) -> None:
        with self._lock:
            self._injected.append(spec.describe())
            if self.counters is not None:
                self.counters.netfaults_injected += 1

    @staticmethod
    def _close_quietly(sock: socket.socket) -> None:
        try:
            sock.close()
        except OSError:
            pass

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return
            with self._lock:
                ordinal = self._accepted
                self._accepted += 1
            thread = threading.Thread(
                target=self._handle,
                args=(client, ordinal),
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _handle(self, client: socket.socket, ordinal: int) -> None:
        counted = set()

        def applied(spec: NetFaultSpec) -> None:
            # Count once per connection per spec: assertions want "the
            # partition bit this connection", not a chunk count.
            if id(spec) not in counted:
                counted.add(id(spec))
                self._count(spec)

        specs = self._draw(ordinal)
        partition = next(
            (s for s in specs if s.kind == "partition"), None
        )
        if partition is not None:
            applied(partition)
            self._close_quietly(client)
            return
        drop = next((s for s in specs if s.kind == "drop"), None)
        if drop is not None:
            applied(drop)
            self._blackhole(client)
            return
        try:
            upstream = socket.create_connection(self._upstream, timeout=10.0)
        except OSError:
            self._close_quietly(client)
            return
        with self._lock:
            self._conns.extend((client, upstream))
        back = threading.Thread(
            target=self._pump,
            args=(upstream, client, ordinal, applied),
            daemon=True,
        )
        back.start()
        self._pump(client, upstream, ordinal, applied)
        back.join()
        self._close_quietly(client)
        self._close_quietly(upstream)

    def _blackhole(self, client: socket.socket) -> None:
        """Read and discard until the peer gives up; forward nothing."""
        client.settimeout(0.2)
        while not self._closing:
            try:
                if not client.recv(_CHUNK):
                    break
            except socket.timeout:
                continue
            except OSError:
                break
        self._close_quietly(client)

    def _pump(self, source, dest, ordinal, applied) -> None:
        """Relay one direction, consulting the plan at every chunk."""
        held: Optional[bytes] = None  # reorder buffer
        while True:
            try:
                chunk = source.recv(_CHUNK)
            except OSError:
                return
            if not chunk:
                break
            specs = self._draw(ordinal)
            partition = next(
                (s for s in specs if s.kind == "partition"), None
            )
            if partition is not None:
                applied(partition)
                self._close_quietly(source)
                self._close_quietly(dest)
                return
            for spec in specs:
                if spec.kind == "latency":
                    applied(spec)
                    time.sleep(spec.delay)
            reorder = next((s for s in specs if s.kind == "reorder"), None)
            half = next((s for s in specs if s.kind == "half_close"), None)
            try:
                if reorder is not None:
                    if held is None:
                        held = chunk
                        continue
                    applied(reorder)
                    dest.sendall(chunk)
                    dest.sendall(held)
                    held = None
                else:
                    dest.sendall(chunk)
            except OSError:
                return
            if half is not None:
                applied(half)
                break
        try:
            if held is not None:
                dest.sendall(held)
            dest.shutdown(socket.SHUT_WR)
        except OSError:
            pass
