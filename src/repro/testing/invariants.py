"""Reusable invariant checkers for HTP data structures and results.

Each checker raises :class:`InvariantViolation` (an ``AssertionError``
subclass, so plain ``pytest`` reporting applies) with a message naming
the violated property and the offending values.  They are shared by the
chaos harness (``tests/chaos/``), the hypothesis property tests and the
differential fuzzer, and are safe to call from application code in
debug builds — every checker is read-only.

Covered invariants
------------------
``check_g_properties``
    The spreading bound ``g`` is zero up to ``C_0``, nondecreasing,
    convex and piecewise linear with breakpoints exactly at the level
    capacities; its slope never exceeds ``2 * sum(w)``.
``check_spreading_monotonicity``
    Growing every edge length keeps satisfied spreading constraints
    satisfied (distances are monotone in the metric).
``check_cut_identity``
    ``sum_e d(e) * delta(S, e) == lhs`` for a violated shortest-path
    tree (Equation (6) bookkeeping of the oracle).
``check_partition_feasible``
    Capacity ``C_l`` and child-count ``K_l`` feasibility via
    :func:`repro.htp.validate.partition_violations`.
``check_cost_telescoping``
    ``total_cost`` equals its per-level decomposition
    ``sum_l w_l * sum_e span(e, l) * c(e)``.
``check_metric_result``
    A spreading-metric result is internally consistent: nonnegative
    lengths, ``objective == dot(capacities, lengths)``, and a
    ``satisfied`` flag that the oracle agrees with.
``assert_cost_optimal``
    A partition is feasible and its cost equals a proven optimum
    (ground truth from the exact oracles).
``assert_gap_bounded``
    A partition is feasible, never beats a proven optimum, and its
    achieved/optimal ratio stays within a stated bound; returns the
    achieved ratio for recording.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.constraints import SpreadingOracle, Violation
from repro.core.gfunc import spreading_bound_array
from repro.htp.cost import net_span, total_cost
from repro.htp.hierarchy import HierarchySpec
from repro.htp.partition import PartitionTree
from repro.htp.validate import partition_violations
from repro.hypergraph.graph import Graph
from repro.hypergraph.hypergraph import Hypergraph


class InvariantViolation(AssertionError):
    """A checked invariant does not hold."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InvariantViolation(message)


# ----------------------------------------------------------------------
# g-function shape
# ----------------------------------------------------------------------
def check_g_properties(
    spec: HierarchySpec,
    sizes: Optional[Sequence[float]] = None,
    tol: float = 1e-9,
) -> None:
    """Validate the analytic shape of ``g`` on a size grid.

    ``sizes`` defaults to a grid that brackets every capacity breakpoint
    plus the midpoints between them, which is enough to pin down a
    piecewise-linear function.
    """
    capacities = np.asarray(spec.capacities, dtype=float)
    weights = np.asarray(spec.weights, dtype=float)
    if sizes is None:
        grid = [0.0]
        for c in capacities:
            grid.extend([0.5 * c, c, 1.5 * c])
        grid.append(2.0 * capacities[-1] + 1.0)
        sizes = sorted(set(grid))
    x = np.asarray(sorted(float(s) for s in sizes), dtype=float)
    g = spreading_bound_array(spec, x)

    _require(bool(np.all(g >= -tol)), f"g must be nonnegative, got min {g.min()}")
    below = x <= capacities[0] + tol
    _require(
        bool(np.all(np.abs(g[below]) <= tol)),
        f"g must vanish for x <= C_0 = {capacities[0]}",
    )
    diffs = np.diff(g)
    _require(
        bool(np.all(diffs >= -tol)),
        f"g must be nondecreasing, got negative step {diffs.min()}",
    )

    # Convexity + piecewise linearity: the exact slope on (C_l, C_{l+1}]
    # is 2 * sum_{i<=l} w_i, which is nondecreasing in l.  Evaluate the
    # secant slope between consecutive grid points lying in one piece.
    max_slope = 2.0 * float(weights.sum())
    prev_slope = -tol
    for a, b, ga, gb in zip(x[:-1], x[1:], g[:-1], g[1:]):
        if b - a <= tol:
            continue
        # Skip intervals that straddle a breakpoint; slope is not
        # constant there.
        if any(a + tol < c < b - tol for c in capacities):
            continue
        slope = (gb - ga) / (b - a)
        expected = 2.0 * float(
            weights[: int(np.sum(capacities[:-1] < a + tol))].sum()
        )
        _require(
            abs(slope - expected) <= tol * max(1.0, abs(expected)),
            f"g is not piecewise linear with capacity breakpoints: "
            f"slope {slope} on ({a}, {b}], expected {expected}",
        )
        _require(
            slope >= prev_slope - tol,
            f"g must be convex: slope dropped from {prev_slope} to {slope}",
        )
        prev_slope = slope
        _require(
            slope <= max_slope + tol,
            f"g slope {slope} exceeds 2*sum(w) = {max_slope}",
        )


# ----------------------------------------------------------------------
# Spreading constraints
# ----------------------------------------------------------------------
def check_spreading_monotonicity(
    graph: Graph,
    spec: HierarchySpec,
    lengths_low: Sequence[float],
    lengths_high: Sequence[float],
    sources: Optional[Sequence[int]] = None,
) -> None:
    """Satisfied constraints stay satisfied when all lengths grow.

    ``lengths_high`` must dominate ``lengths_low`` pointwise; shortest
    paths are monotone in the metric so every source satisfied under the
    low metric must remain satisfied under the high one.
    """
    low = np.asarray(lengths_low, dtype=float)
    high = np.asarray(lengths_high, dtype=float)
    _require(
        low.shape == high.shape and bool(np.all(high >= low - 1e-12)),
        "lengths_high must dominate lengths_low pointwise",
    )
    if sources is None:
        sources = range(graph.num_nodes)
    oracle = SpreadingOracle(graph, spec)
    oracle.set_lengths(low)
    satisfied = [s for s in sources if oracle.violation_for(s) is None]
    oracle.set_lengths(high)
    for source in satisfied:
        violation = oracle.violation_for(source)
        _require(
            violation is None,
            f"source {source} satisfied under lengths_low but violated "
            f"under the dominating lengths_high "
            f"(lhs={getattr(violation, 'lhs', None)}, "
            f"rhs={getattr(violation, 'rhs', None)})",
        )


def check_cut_identity(
    oracle: SpreadingOracle, violation: Violation, tol: float = 1e-6
) -> None:
    """Equation (6): ``sum_e d(e) * delta(S, e) == lhs`` for a violation."""
    coeffs = oracle.tree_cut_coefficients(violation)
    lengths = np.asarray(oracle.lengths(), dtype=float)
    total = sum(lengths[edge_id] * delta for edge_id, delta in coeffs)
    _require(
        abs(total - violation.lhs) <= tol * max(1.0, abs(violation.lhs)),
        f"cut identity broken: sum d(e)*delta = {total}, lhs = "
        f"{violation.lhs} (source {violation.source})",
    )


# ----------------------------------------------------------------------
# Partitions and costs
# ----------------------------------------------------------------------
def check_partition_feasible(
    hypergraph: Hypergraph,
    partition: PartitionTree,
    spec: HierarchySpec,
) -> None:
    """Capacity / child-count / coverage feasibility of a partition."""
    problems = partition_violations(hypergraph, partition, spec)
    _require(
        not problems,
        "partition infeasible:\n  " + "\n  ".join(problems),
    )


def check_cost_telescoping(
    hypergraph: Hypergraph,
    partition: PartitionTree,
    spec: HierarchySpec,
    tol: float = 1e-9,
) -> None:
    """``total_cost`` equals its per-level telescoped decomposition.

    Equation (1) factors as ``sum_l w_l * (sum_e span(e, l) * c(e))`` —
    recomputing level by level and summing must reproduce the nominal
    total exactly (up to float round-off).
    """
    nominal = total_cost(hypergraph, partition, spec)
    by_level = 0.0
    for level in range(spec.num_levels):
        level_sum = sum(
            net_span(hypergraph, partition, net_id, level)
            * hypergraph.net_capacity(net_id)
            for net_id in range(hypergraph.num_nets)
        )
        by_level += spec.weight(level) * level_sum
    _require(
        abs(nominal - by_level) <= tol * max(1.0, abs(nominal)),
        f"cost does not telescope: total_cost={nominal}, per-level "
        f"sum={by_level}",
    )


# ----------------------------------------------------------------------
# Optimality (ground truth from repro.analysis.exact)
# ----------------------------------------------------------------------
def assert_cost_optimal(
    hypergraph: Hypergraph,
    partition: PartitionTree,
    spec: HierarchySpec,
    optimal_cost: float,
    tol: float = 1e-9,
) -> None:
    """The partition is feasible and achieves exactly ``optimal_cost``.

    ``optimal_cost`` must come from a proven-optimal exact solve (the
    tree DP, the ILP or the branch-and-bound with status ``optimal``).
    The partition's cost is recomputed through the canonical
    :func:`repro.htp.cost.total_cost`, matching how the oracles report
    theirs, so agreement is bit-equal on integer-weighted instances.
    """
    check_partition_feasible(hypergraph, partition, spec)
    cost = total_cost(hypergraph, partition, spec)
    _require(
        abs(cost - optimal_cost) <= tol * max(1.0, abs(optimal_cost)),
        f"cost {cost} is not the proven optimum {optimal_cost} "
        f"(difference {cost - optimal_cost})",
    )


def assert_gap_bounded(
    hypergraph: Hypergraph,
    partition: PartitionTree,
    spec: HierarchySpec,
    optimal_cost: float,
    max_ratio: float,
    tol: float = 1e-9,
) -> float:
    """Feasible, no better than the proven optimum, within ``max_ratio``.

    Checks three things: the partition is feasible; its cost is at
    least ``optimal_cost`` (a heuristic beating a *proven* optimum
    means one of the two cost computations is broken); and the ratio
    ``cost / optimal_cost`` does not exceed ``max_ratio``.  Returns the
    achieved ratio so callers (gap tables, benchmarks) can record it.
    A zero-cost optimum requires a zero-cost partition and yields 1.0.
    """
    check_partition_feasible(hypergraph, partition, spec)
    cost = total_cost(hypergraph, partition, spec)
    scale = max(1.0, abs(optimal_cost))
    _require(
        cost >= optimal_cost - tol * scale,
        f"heuristic cost {cost} beats the proven optimum {optimal_cost} "
        f"— one of the cost computations is broken",
    )
    if optimal_cost <= tol:
        _require(
            cost <= tol,
            f"optimum is 0 but the partition costs {cost}",
        )
        return 1.0
    ratio = cost / optimal_cost
    _require(
        ratio <= max_ratio + tol,
        f"optimality gap {ratio:.4f} exceeds the stated bound "
        f"{max_ratio} (cost {cost}, optimum {optimal_cost})",
    )
    return ratio


# ----------------------------------------------------------------------
# Spreading-metric results
# ----------------------------------------------------------------------
def check_metric_result(
    graph: Graph,
    spec: HierarchySpec,
    result,
    tol: float = 1e-6,
) -> None:
    """Internal consistency of a :class:`SpreadingMetricResult`.

    Lengths are nonnegative and cover every edge, the reported objective
    equals ``sum_e c(e) * d(e)``, and the ``satisfied`` flag matches a
    fresh oracle's verdict on the final metric.
    """
    lengths = np.asarray(result.lengths, dtype=float)
    _require(
        lengths.shape == (graph.num_edges,),
        f"metric has {lengths.shape} lengths for {graph.num_edges} edges",
    )
    _require(
        bool(np.all(lengths >= 0.0)),
        f"negative edge length: min {lengths.min()}",
    )
    capacities = np.asarray(
        [graph.capacity(e) for e in range(graph.num_edges)], dtype=float
    )
    objective = float(np.dot(capacities, lengths))
    _require(
        abs(objective - result.objective)
        <= tol * max(1.0, abs(result.objective)),
        f"objective mismatch: reported {result.objective}, recomputed "
        f"{objective}",
    )
    if result.satisfied:
        oracle = SpreadingOracle(graph, spec)
        oracle.set_lengths(lengths)
        _require(
            oracle.is_feasible(),
            "result claims satisfied=True but the oracle finds a "
            "violated spreading constraint",
        )
