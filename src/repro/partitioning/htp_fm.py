"""FM-based iterative improvement for the hierarchical cost (Table 3).

The ``+`` phase of the paper: given any initial hierarchical tree
partition, run Fiduccia–Mattheyses-style passes that move single nodes
between *leaf blocks* (possibly under different ancestors), pricing each
move with the full hierarchical cost of Equation (1) and respecting the
size bound ``C_l`` at every level of the target's ancestor chain.

Like classic FM, a pass permits *transient* capacity overflow of up to
one maximum node size — without it, a partition with full blocks (the
common case: ``C_0`` equals the balanced share) would admit no moves at
all.  Only prefixes of the move sequence at which every block is back
within its bound are eligible as the pass result; the pass rolls back to
the best such prefix.  Passes repeat until no improvement.

Candidate targets for a node are restricted to *connected leaves* — leaves
holding at least one of the node's net neighbours — which preserves all
cost-improving moves (a move to an unconnected leaf can only increase
every incident net's span at every level where the blocks differ).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.algorithms.heap import IndexedHeap
from repro.htp.cost import IncrementalCost
from repro.htp.hierarchy import HierarchySpec
from repro.htp.partition import PartitionTree
from repro.hypergraph.hypergraph import Hypergraph

_TOL = 1e-9


@dataclass
class HTPFMConfig:
    """Improvement-phase knobs.

    ``max_passes`` bounds the outer loop; ``stall_limit`` ends a pass
    after that many consecutive non-improving moves (0: move every node,
    the classic full pass).
    """

    max_passes: int = 8
    stall_limit: int = 200
    seed: int = 0


@dataclass
class HTPFMResult:
    """Improved partition with before/after costs and pass statistics."""

    partition: PartitionTree
    initial_cost: float
    final_cost: float
    passes: int
    moves_applied: int

    @property
    def improvement(self) -> float:
        """Fractional improvement over the initial cost (0 when already 0)."""
        if self.initial_cost == 0:
            return 0.0
        return (self.initial_cost - self.final_cost) / self.initial_cost


class _MoveEngine:
    """Shared state of one improvement run: sizes, overflow, cost."""

    def __init__(
        self,
        hypergraph: Hypergraph,
        partition: PartitionTree,
        spec: HierarchySpec,
    ) -> None:
        self.hypergraph = hypergraph
        self.partition = partition
        self.spec = spec
        self.tracker = IncrementalCost(hypergraph, partition, spec)
        self.node_sizes = hypergraph.node_sizes()
        self.relax = max(
            hypergraph.node_size(v) for v in hypergraph.nodes()
        )
        self.block_sizes: Dict[int, float] = partition.block_sizes(
            self.node_sizes
        )
        self.capacity_of: Dict[int, float] = {}
        for vertex in range(partition.num_vertices):
            self.capacity_of[vertex] = spec.capacity(partition.level(vertex))
        self.overfull = sum(
            1
            for vertex, size in self.block_sizes.items()
            if size > self.capacity_of[vertex] + _TOL
        )

    # ------------------------------------------------------------------
    def feasible(self) -> bool:
        """True when no block exceeds its capacity."""
        return self.overfull == 0

    def connected_leaves(self, node: int) -> List[int]:
        """Leaves (other than the node's own) holding a net neighbour."""
        own = self.partition.leaf_of(node)
        leaves = set()
        for net_id in self.hypergraph.incident_nets(node):
            for u in self.hypergraph.net(net_id):
                if u != node:
                    leaves.add(self.partition.leaf_of(u))
        leaves.discard(own)
        return sorted(leaves)

    def best_move(self, node: int) -> Optional[Tuple[float, int]]:
        """Best ``(gain, target_leaf)`` for ``node``.

        Strictly feasible targets are preferred; the transient-overflow
        allowance is used only when no feasible target exists (the
        zero-slack escape that lets nodes swap between full blocks).
        """
        size = float(self.node_sizes[node])
        source_chain = self.partition.ancestor_chain(
            self.partition.leaf_of(node)
        )
        best_feasible: Optional[Tuple[float, int]] = None
        best_relaxed: Optional[Tuple[float, int]] = None
        for leaf in self.connected_leaves(node):
            target_chain = self.partition.ancestor_chain(leaf)
            feasible = True
            admissible = True
            for level, vertex in enumerate(target_chain[:-1]):
                if vertex == source_chain[level]:
                    continue
                new_size = self.block_sizes[vertex] + size
                if new_size > self.capacity_of[vertex] + _TOL:
                    feasible = False
                    if new_size > self.capacity_of[vertex] + self.relax + _TOL:
                        admissible = False
                        break
            if not admissible:
                continue
            gain = self.tracker.gain(node, leaf)
            if feasible:
                if best_feasible is None or gain > best_feasible[0]:
                    best_feasible = (gain, leaf)
            elif best_relaxed is None or gain > best_relaxed[0]:
                best_relaxed = (gain, leaf)
        return best_feasible if best_feasible is not None else best_relaxed

    def apply(self, node: int, target_leaf: int) -> float:
        """Apply a move, maintaining sizes and overflow; returns the gain."""
        size = float(self.node_sizes[node])
        source_chain = list(
            self.partition.ancestor_chain(self.partition.leaf_of(node))
        )
        target_chain = self.partition.ancestor_chain(target_leaf)
        gain = self.tracker.apply(node, target_leaf)
        for vertex in source_chain:
            before = self.block_sizes[vertex]
            after = before - size
            self.block_sizes[vertex] = after
            limit = self.capacity_of[vertex] + _TOL
            if before > limit >= after:
                self.overfull -= 1
        for vertex in target_chain:
            before = self.block_sizes[vertex]
            after = before + size
            self.block_sizes[vertex] = after
            limit = self.capacity_of[vertex] + _TOL
            if after > limit >= before:
                self.overfull += 1
        return gain


def htp_fm_improve(
    hypergraph: Hypergraph,
    partition: PartitionTree,
    spec: HierarchySpec,
    config: Optional[HTPFMConfig] = None,
) -> HTPFMResult:
    """Improve ``partition`` (copied, not mutated) under the HTP cost."""
    config = config or HTPFMConfig()
    rng = random.Random(config.seed)
    engine = _MoveEngine(hypergraph, partition.copy(), spec)
    initial_cost = engine.tracker.cost

    passes = 0
    total_moves = 0
    for _pass in range(config.max_passes):
        passes += 1
        gained, kept = _one_pass(engine, config, rng)
        total_moves += kept
        if gained <= 1e-9:
            break
    return HTPFMResult(
        partition=engine.partition,
        initial_cost=initial_cost,
        final_cost=engine.tracker.cost,
        passes=passes,
        moves_applied=total_moves,
    )


def _one_pass(
    engine: _MoveEngine, config: HTPFMConfig, rng: random.Random
) -> Tuple[float, int]:
    """One FM pass with rollback; returns (realised gain, kept moves)."""
    n = engine.hypergraph.num_nodes
    locked = [False] * n
    heap = IndexedHeap()

    order = list(range(n))
    rng.shuffle(order)
    for node in order:
        move = engine.best_move(node)
        if move is not None:
            heap.push(node, -move[0])

    moves: List[Tuple[int, int]] = []  # (node, previous_leaf)
    cumulative = 0.0
    best_cumulative = 0.0
    best_prefix = 0
    stall = 0

    while heap:
        node, neg_gain = heap.pop()
        node = int(node)
        if locked[node]:
            continue
        # Revalidate: the stored best move may be stale or inadmissible.
        move = engine.best_move(node)
        if move is None:
            continue
        if -move[0] > neg_gain + 1e-12:
            heap.push(node, -move[0])
            continue
        previous = engine.partition.leaf_of(node)
        gain = engine.apply(node, move[1])
        locked[node] = True
        moves.append((node, previous))
        cumulative += gain
        if (
            engine.feasible()
            and cumulative > best_cumulative + 1e-12
        ):
            best_cumulative = cumulative
            best_prefix = len(moves)
            stall = 0
        else:
            stall += 1
            if config.stall_limit and stall >= config.stall_limit:
                break
        # Refresh unlocked net neighbours.
        touched = set()
        for net_id in engine.hypergraph.incident_nets(node):
            for u in engine.hypergraph.net(net_id):
                if not locked[u]:
                    touched.add(u)
        for u in touched:
            refreshed = engine.best_move(u)
            if refreshed is not None:
                heap.push(u, -refreshed[0])

    # Roll back the tail after the best feasible prefix.
    for node, previous in reversed(moves[best_prefix:]):
        engine.apply(node, previous)
    return best_cumulative, best_prefix
