"""Spectral bipartitioning (Fiedler-vector sweep cuts).

The paper's Section 1 lists spectral methods among the constructive
partitioners that are "developed for partitioning with a fixed
structure" and hence awkward for HTP.  We implement the classic variant
anyway as a quality reference: compute the Fiedler vector of the
clique-expanded Laplacian (scipy sparse eigensolver, with a dense
fallback for tiny or degenerate instances), order nodes by their
component, and take the best hypergraph cut over all prefixes whose size
lies in the window — a *sweep cut*.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import PartitionError
from repro.hypergraph.expansion import clique_expansion
from repro.hypergraph.graph import Graph
from repro.hypergraph.hypergraph import Hypergraph


def fiedler_vector(graph: Graph) -> np.ndarray:
    """The eigenvector of the second-smallest Laplacian eigenvalue.

    Uses ``scipy.sparse.linalg.eigsh`` on the weighted Laplacian; falls
    back to a dense solve when the iterative solver cannot converge
    (tiny graphs).
    """
    n = graph.num_nodes
    if n < 3:
        raise PartitionError("Fiedler vector needs at least three nodes")
    from scipy.sparse import csr_matrix

    weights = graph.capacities()
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    degree = np.zeros(n)
    for edge_id, (u, v) in enumerate(graph.edges()):
        w = float(weights[edge_id])
        rows += [u, v]
        cols += [v, u]
        data += [-w, -w]
        degree[u] += w
        degree[v] += w
    rows += list(range(n))
    cols += list(range(n))
    data += list(degree)
    laplacian = csr_matrix((data, (rows, cols)), shape=(n, n))

    if n <= 64:
        values, vectors = np.linalg.eigh(laplacian.toarray())
        return vectors[:, np.argsort(values)[1]]
    from scipy.sparse.linalg import eigsh

    try:
        values, vectors = eigsh(laplacian, k=2, sigma=-1e-6, which="LM")
    except Exception:  # pragma: no cover - solver-dependent fallback
        values, vectors = np.linalg.eigh(laplacian.toarray())
        return vectors[:, np.argsort(values)[1]]
    order = np.argsort(values)
    return vectors[:, order[1]]


def spectral_bipartition(
    hypergraph: Hypergraph,
    min_size0: float,
    max_size0: float,
    graph: Optional[Graph] = None,
) -> Tuple[List[int], float]:
    """Sweep-cut bipartition along the Fiedler ordering.

    Returns ``(side0_nodes, cut_capacity)`` with side 0's total size in
    ``[min_size0, max_size0]``.
    """
    if graph is None:
        graph = clique_expansion(hypergraph)
    vector = fiedler_vector(graph)
    order = np.argsort(vector, kind="stable")

    best_cut = float("inf")
    best_prefix = 0
    inside_count = {}
    net_sizes = [len(pins) for pins in hypergraph.nets()]
    cut = 0.0
    size = 0.0
    found = False
    for index, node in enumerate(order):
        node = int(node)
        size += hypergraph.node_size(node)
        if size > max_size0 + 1e-9:
            break
        for net_id in hypergraph.incident_nets(node):
            inside_count[net_id] = inside_count.get(net_id, 0) + 1
            if inside_count[net_id] == 1:
                cut += hypergraph.net_capacity(net_id)
            elif inside_count[net_id] == net_sizes[net_id]:
                cut -= hypergraph.net_capacity(net_id)
        if min_size0 - 1e-9 <= size and cut < best_cut:
            best_cut = cut
            best_prefix = index + 1
            found = True
    if not found:
        raise PartitionError(
            f"no sweep prefix lands in [{min_size0:g}, {max_size0:g}]"
        )
    side0 = sorted(int(v) for v in order[:best_prefix])
    return side0, best_cut
