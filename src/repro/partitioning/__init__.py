"""Baseline partitioning algorithms.

The paper compares FLOW against the two constructive algorithms of
Kuo, Liu & Cheng (DAC'96): **GFM** (bottom-up — multiway partition at the
bottom level, then level-by-level grouping) and **RFM** (top-down
recursive FM min-cut carving), and improves all three with an FM-based
iterative-improvement phase for the HTP cost (the ``+`` rows of Table 3).
All of these are implemented here, on top of a classic Fiduccia–Mattheyses
bipartitioner with gain tracking.
"""

from repro.partitioning.fm import FMConfig, fm_bipartition, fm_refine
from repro.partitioning.multiway import recursive_bisection
from repro.partitioning.gfm import gfm_partition
from repro.partitioning.rfm import rfm_partition
from repro.partitioning.htp_fm import HTPFMConfig, htp_fm_improve
from repro.partitioning.random_init import random_partition
from repro.partitioning.kl import KLConfig, kl_bipartition
from repro.partitioning.fbb import FBBResult, fbb_bipartition
from repro.partitioning.spectral import fiedler_vector, spectral_bipartition
from repro.partitioning.multilevel import (
    MultilevelConfig,
    multilevel_bipartition,
)

__all__ = [
    "FMConfig",
    "fm_bipartition",
    "fm_refine",
    "recursive_bisection",
    "gfm_partition",
    "rfm_partition",
    "HTPFMConfig",
    "htp_fm_improve",
    "random_partition",
    "KLConfig",
    "kl_bipartition",
    "FBBResult",
    "fbb_bipartition",
    "fiedler_vector",
    "spectral_bipartition",
    "MultilevelConfig",
    "multilevel_bipartition",
]
