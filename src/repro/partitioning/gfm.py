"""GFM: bottom-up constructive hierarchical tree partitioning.

The GFM baseline of Kuo, Liu & Cheng (DAC'96) first builds a multiway
partition at the bottom level (here: recursive FM bisection into the
maximum number of leaves, each within ``C_0``), then assembles the
hierarchy level by level: at each level, current blocks are grouped into
parents (at most ``K_l`` children, parent size at most ``C_l``) so as to
maximise the connectivity captured *inside* parents — for ``K_l = 2`` this
is a maximum-weight matching on the block-connectivity graph (solved with
networkx), for larger ``K_l`` a greedy merge.

Each level is optimised on its own, without regard to the global HTP
cost — the weakness the paper's FLOW algorithm addresses.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PartitionError
from repro.htp.hierarchy import HierarchySpec
from repro.htp.partition import PartitionTree
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioning.fm import FMConfig
from repro.partitioning.multiway import recursive_bisection


def gfm_partition(
    hypergraph: Hypergraph,
    spec: HierarchySpec,
    rng: Optional[random.Random] = None,
    fm_config: Optional[FMConfig] = None,
) -> PartitionTree:
    """Run GFM; returns a frozen partition tree for ``spec``."""
    rng = rng or random.Random(0)
    num_leaves = 1
    for level in range(1, spec.num_levels + 1):
        num_leaves *= spec.branch_bound(level)
    # Power-of-two leaves are required by recursive bisection; the
    # experiments use binary hierarchies where this always holds.
    blocks = recursive_bisection(
        hypergraph,
        num_parts=num_leaves,
        capacity=spec.capacity(0),
        rng=rng,
        config=fm_config,
    )

    # Bottom-up grouping.  group_members[i] = node ids of current block i.
    group_members: List[List[int]] = [list(b) for b in blocks]
    grouping: List[List[List[int]]] = []
    for level in range(1, spec.num_levels + 1):
        k = spec.branch_bound(level)
        capacity = spec.capacity(level)
        if level == spec.num_levels:
            groups = [list(range(len(group_members)))]
        elif k == 2:
            groups = _match_pairs(
                hypergraph, group_members, capacity
            )
        else:
            groups = _greedy_groups(
                hypergraph, group_members, k, capacity
            )
        grouping.append(groups)
        group_members = [
            sorted(v for i in group for v in group_members[i])
            for group in groups
        ]
    if len(group_members) != 1:
        raise PartitionError(
            f"grouping ended with {len(group_members)} top blocks, not 1"
        )
    return PartitionTree.from_leaf_blocks(
        blocks, hypergraph.num_nodes, grouping=grouping
    )


# ----------------------------------------------------------------------
def _connectivity(
    hypergraph: Hypergraph, group_members: Sequence[Sequence[int]]
) -> Dict[Tuple[int, int], float]:
    """Pairwise block connectivity: capacity of nets touching both blocks."""
    block_of: Dict[int, int] = {}
    for index, members in enumerate(group_members):
        for v in members:
            block_of[v] = index
    weights: Dict[Tuple[int, int], float] = {}
    for net_id, pins in enumerate(hypergraph.nets()):
        touched = sorted({block_of[v] for v in pins})
        capacity = hypergraph.net_capacity(net_id)
        for i in range(len(touched)):
            for j in range(i + 1, len(touched)):
                key = (touched[i], touched[j])
                weights[key] = weights.get(key, 0.0) + capacity
    return weights


def _match_pairs(
    hypergraph: Hypergraph,
    group_members: Sequence[Sequence[int]],
    capacity: float,
) -> List[List[int]]:
    """Pair blocks by maximum-weight matching under the size capacity."""
    import networkx as nx

    count = len(group_members)
    if count % 2:
        raise PartitionError("pair matching needs an even block count")
    sizes = [hypergraph.total_size(m) for m in group_members]
    weights = _connectivity(hypergraph, group_members)
    graph = nx.Graph()
    graph.add_nodes_from(range(count))
    for i in range(count):
        for j in range(i + 1, count):
            if sizes[i] + sizes[j] > capacity + 1e-9:
                continue
            # Small positive floor keeps zero-connectivity pairs matchable
            # so a perfect matching exists.
            graph.add_edge(i, j, weight=weights.get((i, j), 0.0) + 1e-6)
    matching = nx.max_weight_matching(graph, maxcardinality=True)
    matched = sorted(sorted(pair) for pair in matching)
    used = {i for pair in matched for i in pair}
    leftovers = [i for i in range(count) if i not in used]
    if leftovers:
        # Capacity pruning can strand blocks; pair leftovers greedily.
        while len(leftovers) >= 2:
            matched.append([leftovers.pop(0), leftovers.pop(0)])
        if leftovers:
            raise PartitionError(
                f"block {leftovers[0]} cannot be paired under capacity "
                f"{capacity:g}"
            )
    return [list(pair) for pair in matched]


def _greedy_groups(
    hypergraph: Hypergraph,
    group_members: Sequence[Sequence[int]],
    k: int,
    capacity: float,
) -> List[List[int]]:
    """Greedy grouping for K_l > 2: repeatedly merge the heaviest pair."""
    sizes = [hypergraph.total_size(m) for m in group_members]
    weights = _connectivity(hypergraph, group_members)
    groups: List[List[int]] = [[i] for i in range(len(group_members))]
    group_size = list(sizes)
    import math

    target_groups = math.ceil(len(group_members) / k)
    while len(groups) > target_groups:
        best = None
        best_weight = -1.0
        for a in range(len(groups)):
            for b in range(a + 1, len(groups)):
                if len(groups[a]) + len(groups[b]) > k:
                    continue
                if group_size[a] + group_size[b] > capacity + 1e-9:
                    continue
                weight = sum(
                    weights.get((min(i, j), max(i, j)), 0.0)
                    for i in groups[a]
                    for j in groups[b]
                )
                if weight > best_weight:
                    best_weight = weight
                    best = (a, b)
        if best is None:
            raise PartitionError(
                f"cannot reach {target_groups} groups of <= {k} blocks "
                f"within capacity {capacity:g}"
            )
        a, b = best
        groups[a].extend(groups[b])
        group_size[a] += group_size[b]
        del groups[b]
        del group_size[b]
    return groups
