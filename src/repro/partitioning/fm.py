"""Fiduccia–Mattheyses bipartitioning on hypergraphs.

The classic iterative-improvement bipartitioner: repeatedly move the
highest-gain unlocked node across the cut (respecting size bounds on side
0), lock it, and at the end of the pass roll back to the best prefix.
Gains use the standard FM rules — moving ``v`` from side A to side B
uncuts every net whose A-count is 1 and cuts every net whose B-count
is 0, weighted by net capacity.

Used by RFM (min-cut carving) and by GFM's bottom-level multiway
partitioning.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.algorithms.heap import IndexedHeap
from repro.errors import PartitionError
from repro.hypergraph.hypergraph import Hypergraph


@dataclass
class FMConfig:
    """FM tuning knobs.

    ``max_passes`` bounds the outer repeat-until-no-improvement loop;
    ``stall_limit`` aborts a pass after that many consecutive moves
    without improving the pass best (0 disables early abort).
    ``init`` selects the initial partition of :func:`fm_bipartition`:
    ``'random'`` is the era-faithful choice (the original FM and the
    DAC'96 baselines start from random partitions); ``'bfs'`` grows a
    connected seed region first (an hMETIS-era improvement, kept for the
    ablation benches).  ``restarts`` runs that many independent
    init+refine attempts and keeps the best cut (best-of-k FM, standard
    practice in the 1990s literature).
    """

    max_passes: int = 10
    stall_limit: int = 0
    seed: int = 0
    init: str = "random"
    restarts: int = 3

    def __post_init__(self) -> None:
        if self.init not in ("random", "bfs"):
            raise ValueError(f"unknown init style {self.init!r}")
        if self.restarts < 1:
            raise ValueError("restarts must be at least 1")


def cut_capacity(hypergraph: Hypergraph, sides: Sequence[int]) -> float:
    """Total capacity of nets with pins on both sides."""
    total = 0.0
    for net_id, pins in enumerate(hypergraph.nets()):
        first = sides[pins[0]]
        if any(sides[v] != first for v in pins[1:]):
            total += hypergraph.net_capacity(net_id)
    return total


def fm_refine(
    hypergraph: Hypergraph,
    sides: List[int],
    min_size0: float,
    max_size0: float,
    config: Optional[FMConfig] = None,
) -> Tuple[List[int], float]:
    """Refine a bipartition in place; returns ``(sides, cut)``.

    ``sides[v]`` is 0 or 1; side 0's total node size is kept within
    ``[min_size0, max_size0]`` after every accepted move.
    """
    config = config or FMConfig()
    size0 = sum(
        hypergraph.node_size(v)
        for v in hypergraph.nodes()
        if sides[v] == 0
    )
    if not min_size0 - 1e-9 <= size0 <= max_size0 + 1e-9:
        raise PartitionError(
            f"initial side-0 size {size0:g} outside "
            f"[{min_size0:g}, {max_size0:g}]"
        )

    for _pass in range(config.max_passes):
        improvement = _fm_pass(
            hypergraph, sides, min_size0, max_size0, config
        )
        if improvement <= 1e-12:
            break
    return sides, cut_capacity(hypergraph, sides)


def _fm_pass(
    hypergraph: Hypergraph,
    sides: List[int],
    min_size0: float,
    max_size0: float,
    config: FMConfig,
) -> float:
    """One FM pass with rollback; returns the realised gain (>= 0)."""
    n = hypergraph.num_nodes
    counts = _side_counts(hypergraph, sides)
    locked = [False] * n
    size0 = sum(
        hypergraph.node_size(v) for v in hypergraph.nodes() if sides[v] == 0
    )
    # Transient-imbalance allowance: with a tight window (e.g. an exact
    # bisection, LB == UB) no single move stays in bounds, so FM could
    # never swap nodes.  Moves may overshoot by one maximum node size;
    # only prefixes whose balance is strictly feasible are kept.
    relax = max(hypergraph.node_size(v) for v in hypergraph.nodes())

    heap = IndexedHeap()
    for v in range(n):
        heap.push(v, -_gain(hypergraph, sides, counts, v))

    moves: List[int] = []
    cumulative = 0.0
    best_cumulative = 0.0
    best_prefix = 0
    stall = 0
    deferred: List[Tuple[int, float]] = []

    while heap:
        node, neg_gain = heap.pop()
        node = int(node)
        if locked[node]:
            continue
        # Lazy revalidation: stored priorities may be stale (gains can
        # rise or fall after neighbours move); re-queue when optimistic.
        actual = -_gain(hypergraph, sides, counts, node)
        if actual > neg_gain + 1e-12:
            heap.push(node, actual)
            continue
        neg_gain = actual
        node_size = hypergraph.node_size(node)
        new_size0 = size0 - node_size if sides[node] == 0 else size0 + node_size
        if not min_size0 - relax - 1e-9 <= new_size0 <= max_size0 + relax + 1e-9:
            deferred.append((node, neg_gain))
            # Re-queue once the balance changes; to avoid livelock, only
            # re-add deferred nodes after an actual move (below).
            continue
        gain = -neg_gain
        _apply_move(hypergraph, sides, counts, node)
        size0 = new_size0
        locked[node] = True
        moves.append(node)
        cumulative += gain
        feasible_here = min_size0 - 1e-9 <= size0 <= max_size0 + 1e-9
        if feasible_here and cumulative > best_cumulative + 1e-12:
            best_cumulative = cumulative
            best_prefix = len(moves)
            stall = 0
        else:
            stall += 1
            if config.stall_limit and stall >= config.stall_limit:
                break
        # Refresh gains of unlocked neighbours (nets touched by the move).
        touched = set()
        for net_id in hypergraph.incident_nets(node):
            for u in hypergraph.net(net_id):
                if not locked[u]:
                    touched.add(u)
        for u in touched:
            # push() lowers the stored priority when the new gain is
            # better; worsened gains are caught by pop-time revalidation.
            heap.push(u, -_gain(hypergraph, sides, counts, u))
        for deferred_node, _old in deferred:
            if not locked[deferred_node] and deferred_node not in heap:
                heap.push(
                    deferred_node,
                    -_gain(hypergraph, sides, counts, deferred_node),
                )
        deferred.clear()

    # Roll back moves after the best prefix.
    for node in reversed(moves[best_prefix:]):
        _apply_move(hypergraph, sides, counts, node)
    return best_cumulative


def fm_bipartition(
    hypergraph: Hypergraph,
    min_size0: float,
    max_size0: float,
    rng: Optional[random.Random] = None,
    config: Optional[FMConfig] = None,
    seed_node: Optional[int] = None,
) -> Tuple[List[int], float]:
    """Construct and refine a bipartition with side-0 size in bounds.

    The initial side 0 is either a random node subset of about the window
    midpoint size (``config.init == 'random'``, the default and the
    era-faithful behaviour of the DAC'96 baselines) or a BFS-style region
    grown from ``seed_node`` (``'bfs'``); FM refinement follows.
    ``config.restarts`` independent attempts are made and the best cut is
    returned.
    """
    config = config or FMConfig()
    rng = rng or random.Random(config.seed)
    n = hypergraph.num_nodes
    total = hypergraph.total_size()
    if max_size0 >= total:
        raise PartitionError(
            "side-0 upper bound swallows the whole netlist; nothing to cut"
        )
    target = min(max_size0, max(min_size0, (min_size0 + max_size0) / 2.0))

    best_sides: Optional[List[int]] = None
    best_cut = float("inf")
    for _attempt in range(config.restarts):
        if config.init == "random":
            sides = _random_initial_sides(
                hypergraph, target, max_size0, rng, seed_node
            )
        else:
            sides = _bfs_initial_sides(
                hypergraph, target, max_size0, rng, seed_node
            )
        size0 = sum(
            hypergraph.node_size(v)
            for v in hypergraph.nodes()
            if sides[v] == 0
        )
        if size0 < min_size0 - 1e-9:
            continue
        sides, cut = fm_refine(hypergraph, sides, min_size0, max_size0, config)
        if cut < best_cut:
            best_cut = cut
            best_sides = sides
    if best_sides is None:
        raise PartitionError(
            f"could not build an initial region of size >= {min_size0:g}"
        )
    return best_sides, best_cut


def _random_initial_sides(
    hypergraph: Hypergraph,
    target: float,
    max_size0: float,
    rng: random.Random,
    seed_node: Optional[int],
) -> List[int]:
    """A random node subset of about ``target`` total size as side 0."""
    n = hypergraph.num_nodes
    order = list(range(n))
    rng.shuffle(order)
    if seed_node is not None:
        order.remove(seed_node)
        order.insert(0, seed_node)
    sides = [1] * n
    size0 = 0.0
    for node in order:
        node_size = hypergraph.node_size(node)
        if size0 + node_size > max_size0:
            continue
        sides[node] = 0
        size0 += node_size
        if size0 >= target:
            break
    return sides


def _bfs_initial_sides(
    hypergraph: Hypergraph,
    target: float,
    max_size0: float,
    rng: random.Random,
    seed_node: Optional[int],
) -> List[int]:
    """A connected region grown from a seed as side 0 (modern seeding)."""
    n = hypergraph.num_nodes
    start = seed_node if seed_node is not None else rng.randrange(n)
    sides = [1] * n
    size0 = 0.0
    frontier = [start]
    visited = {start}
    while frontier and size0 < target:
        node = frontier.pop()
        if size0 + hypergraph.node_size(node) > max_size0:
            continue
        sides[node] = 0
        size0 += hypergraph.node_size(node)
        neighbors = []
        for net_id in hypergraph.incident_nets(node):
            for u in hypergraph.net(net_id):
                if u not in visited:
                    visited.add(u)
                    neighbors.append(u)
        rng.shuffle(neighbors)
        frontier.extend(neighbors)
        if not frontier:
            # Disconnected: jump to any unvisited node.
            rest = [v for v in range(n) if v not in visited]
            if rest:
                jump = rng.choice(rest)
                visited.add(jump)
                frontier.append(jump)
    return sides


# ----------------------------------------------------------------------
# Gain bookkeeping
# ----------------------------------------------------------------------
def _side_counts(
    hypergraph: Hypergraph, sides: Sequence[int]
) -> List[List[int]]:
    """Per-net pin counts on each side: ``counts[net] == [n0, n1]``."""
    counts = []
    for pins in hypergraph.nets():
        n0 = sum(1 for v in pins if sides[v] == 0)
        counts.append([n0, len(pins) - n0])
    return counts


def _gain(
    hypergraph: Hypergraph,
    sides: Sequence[int],
    counts: List[List[int]],
    node: int,
) -> float:
    """FM gain of moving ``node`` to the opposite side."""
    from_side = sides[node]
    to_side = 1 - from_side
    gain = 0.0
    for net_id in hypergraph.incident_nets(node):
        capacity = hypergraph.net_capacity(net_id)
        if counts[net_id][from_side] == 1:
            gain += capacity
        if counts[net_id][to_side] == 0:
            gain -= capacity
    return gain


def _apply_move(
    hypergraph: Hypergraph,
    sides: List[int],
    counts: List[List[int]],
    node: int,
) -> None:
    """Flip ``node``'s side and update net counts."""
    from_side = sides[node]
    to_side = 1 - from_side
    for net_id in hypergraph.incident_nets(node):
        counts[net_id][from_side] -= 1
        counts[net_id][to_side] += 1
    sides[node] = to_side
