"""Multilevel hypergraph bipartitioning (the hMETIS/KaHyPar paradigm).

A post-1997 comparator, implemented as the classic V-cycle:

1. **Coarsen** — repeatedly contract heavy-edge matchings (pairs of nodes
   sharing the largest net-capacity-over-size connectivity) until the
   hypergraph is small;
2. **Initial partition** — FM from several random starts on the coarsest
   hypergraph;
3. **Uncoarsen + refine** — project the bipartition back level by level,
   running FM refinement at each level.

Provided as the "modern baseline" extension: the paper predates the
multilevel revolution, and `bench_modern_multilevel` measures how far the
1997 algorithms are from it on the same instances.  The coarsening
machinery itself lives in :mod:`repro.partitioning.coarsening`, shared
with the FLOW V-cycle (:mod:`repro.partitioning.multilevel_flow`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import PartitionError
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioning.coarsening import (
    CoarseLevel,
    CoarseningConfig,
    coarsen,
    contract,
    heavy_edge_matching,
    project_assignment,
)
from repro.partitioning.fm import FMConfig, fm_bipartition, fm_refine

# Backwards-compatible aliases: the coarsener grew out of this module
# and tests/callers still import it under the old private names.
_CoarseLevel = CoarseLevel
_heavy_edge_matching = heavy_edge_matching
_contract = contract


@dataclass
class MultilevelConfig:
    """Coarsening and refinement knobs."""

    coarsest_size: int = 40
    max_levels: int = 12
    fm: Optional[FMConfig] = None
    seed: int = 0


def multilevel_bipartition(
    hypergraph: Hypergraph,
    min_size0: float,
    max_size0: float,
    config: Optional[MultilevelConfig] = None,
) -> Tuple[List[int], float]:
    """Multilevel balanced min-cut bipartition; returns (sides, cut)."""
    config = config or MultilevelConfig()
    rng = random.Random(config.seed)
    fm_config = config.fm or FMConfig(seed=config.seed, restarts=4)
    if max_size0 >= hypergraph.total_size():
        raise PartitionError("side-0 bound swallows the whole netlist")

    # Coarsening phase (shared heavy-edge matcher, no cluster-size cap —
    # the historical greedy behaviour of this baseline).
    levels: List[CoarseLevel] = coarsen(
        hypergraph,
        rng,
        CoarseningConfig(
            coarsest_size=config.coarsest_size,
            max_levels=config.max_levels,
            max_cluster_size=None,
        ),
    )
    current = levels[-1].hypergraph if levels else hypergraph

    # Initial partition on the coarsest level.
    sides, _cut = fm_bipartition(
        current, min_size0, max_size0, rng=rng, config=fm_config
    )

    # Uncoarsening + refinement: coarse_of of levels[i] maps nodes of
    # chain[i] onto chain[i+1].
    chain = [hypergraph] + [level.hypergraph for level in levels]
    for index in range(len(levels) - 1, -1, -1):
        fine_h = chain[index]
        fine_sides = project_assignment(levels[index].coarse_of, sides)
        fine_sides, _cut = fm_refine(
            fine_h, fine_sides, min_size0, max_size0, fm_config
        )
        sides = fine_sides

    from repro.partitioning.fm import cut_capacity

    return sides, cut_capacity(hypergraph, sides)
