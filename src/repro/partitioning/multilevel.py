"""Multilevel hypergraph bipartitioning (the hMETIS/KaHyPar paradigm).

A post-1997 comparator, implemented as the classic V-cycle:

1. **Coarsen** — repeatedly contract heavy-edge matchings (pairs of nodes
   sharing the largest net-capacity-over-size connectivity) until the
   hypergraph is small;
2. **Initial partition** — FM from several random starts on the coarsest
   hypergraph;
3. **Uncoarsen + refine** — project the bipartition back level by level,
   running FM refinement at each level.

Provided as the "modern baseline" extension: the paper predates the
multilevel revolution, and `bench_modern_multilevel` measures how far the
1997 algorithms are from it on the same instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import PartitionError
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioning.fm import FMConfig, fm_bipartition, fm_refine


@dataclass
class MultilevelConfig:
    """Coarsening and refinement knobs."""

    coarsest_size: int = 40
    max_levels: int = 12
    fm: Optional[FMConfig] = None
    seed: int = 0


@dataclass
class _CoarseLevel:
    """One coarsening step: the coarse hypergraph and the node mapping."""

    hypergraph: Hypergraph
    coarse_of: List[int]  # fine node -> coarse node


def _heavy_edge_matching(
    hypergraph: Hypergraph, rng: random.Random
) -> List[int]:
    """Match nodes by heaviest connectivity; returns fine->coarse ids."""
    n = hypergraph.num_nodes
    connectivity: Dict[Tuple[int, int], float] = {}
    for net_id, pins in enumerate(hypergraph.nets()):
        if len(pins) > 6:
            continue  # big nets carry little pairwise signal
        weight = hypergraph.net_capacity(net_id) / (len(pins) - 1)
        for i in range(len(pins)):
            for j in range(i + 1, len(pins)):
                key = (pins[i], pins[j])
                connectivity[key] = connectivity.get(key, 0.0) + weight

    order = list(range(n))
    rng.shuffle(order)
    matched = [-1] * n
    for v in order:
        if matched[v] != -1:
            continue
        best_partner = -1
        best_weight = 0.0
        for net_id in hypergraph.incident_nets(v):
            for u in hypergraph.net(net_id):
                if u == v or matched[u] != -1:
                    continue
                key = (v, u) if v < u else (u, v)
                weight = connectivity.get(key, 0.0)
                if weight > best_weight:
                    best_weight = weight
                    best_partner = u
        if best_partner != -1:
            matched[v] = best_partner
            matched[best_partner] = v
        else:
            matched[v] = v  # stays single

    coarse_of = [-1] * n
    next_id = 0
    for v in range(n):
        if coarse_of[v] != -1:
            continue
        partner = matched[v]
        coarse_of[v] = next_id
        if partner != v and partner != -1:
            coarse_of[partner] = next_id
        next_id += 1
    return coarse_of


def _contract(hypergraph: Hypergraph, coarse_of: List[int]) -> Hypergraph:
    """The coarse hypergraph induced by a node mapping."""
    num_coarse = max(coarse_of) + 1
    sizes = [0.0] * num_coarse
    for v in range(hypergraph.num_nodes):
        sizes[coarse_of[v]] += hypergraph.node_size(v)
    net_map: Dict[Tuple[int, ...], float] = {}
    for net_id, pins in enumerate(hypergraph.nets()):
        coarse_pins = tuple(sorted({coarse_of[v] for v in pins}))
        if len(coarse_pins) < 2:
            continue
        net_map[coarse_pins] = (
            net_map.get(coarse_pins, 0.0) + hypergraph.net_capacity(net_id)
        )
    nets = sorted(net_map)
    return Hypergraph(
        num_nodes=num_coarse,
        nets=nets,
        node_sizes=sizes,
        net_capacities=[net_map[net] for net in nets],
        name=(hypergraph.name + "~" if hypergraph.name else "coarse"),
    )


def multilevel_bipartition(
    hypergraph: Hypergraph,
    min_size0: float,
    max_size0: float,
    config: Optional[MultilevelConfig] = None,
) -> Tuple[List[int], float]:
    """Multilevel balanced min-cut bipartition; returns (sides, cut)."""
    config = config or MultilevelConfig()
    rng = random.Random(config.seed)
    fm_config = config.fm or FMConfig(seed=config.seed, restarts=4)
    if max_size0 >= hypergraph.total_size():
        raise PartitionError("side-0 bound swallows the whole netlist")

    # Coarsening phase.
    levels: List[_CoarseLevel] = []
    current = hypergraph
    for _level in range(config.max_levels):
        if current.num_nodes <= config.coarsest_size:
            break
        coarse_of = _heavy_edge_matching(current, rng)
        if max(coarse_of) + 1 >= current.num_nodes:  # no contraction
            break
        coarse = _contract(current, coarse_of)
        levels.append(_CoarseLevel(hypergraph=coarse, coarse_of=coarse_of))
        current = coarse

    # Initial partition on the coarsest level.
    sides, _cut = fm_bipartition(
        current, min_size0, max_size0, rng=rng, config=fm_config
    )

    # Uncoarsening + refinement: coarse_of of levels[i] maps nodes of
    # chain[i] onto chain[i+1].
    chain = [hypergraph] + [level.hypergraph for level in levels]
    for index in range(len(levels) - 1, -1, -1):
        fine_h = chain[index]
        coarse_of = levels[index].coarse_of
        fine_sides = [sides[coarse_of[v]] for v in range(fine_h.num_nodes)]
        fine_sides, _cut = fm_refine(
            fine_h, fine_sides, min_size0, max_size0, fm_config
        )
        sides = fine_sides

    from repro.partitioning.fm import cut_capacity

    return sides, cut_capacity(hypergraph, sides)
