"""RFM: top-down recursive FM min-cut constructive partitioning.

The RFM baseline of Kuo, Liu & Cheng (DAC'96) follows the same top-down
outer loop as the paper's Algorithm 3, but its ``find_cut`` runs an FM
min-cut bipartitioner directly on the (sub)hypergraph: it carves off a
block of size in ``[LB, UB]`` with minimum cut, level by level.  Each cut
is locally optimal at its own level, without the global spreading-metric
view — the contrast the paper's Table 2 measures.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.htp.hierarchy import HierarchySpec
from repro.htp.partition import PartitionTree
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioning.fm import FMConfig, fm_bipartition


def rfm_partition(
    hypergraph: Hypergraph,
    spec: HierarchySpec,
    rng: Optional[random.Random] = None,
    fm_config: Optional[FMConfig] = None,
) -> PartitionTree:
    """Run RFM; returns a frozen partition tree for ``spec``."""
    rng = rng or random.Random(0)
    tree = PartitionTree(
        num_nodes=hypergraph.num_nodes, num_levels=spec.num_levels
    )

    def carve(nodes: List[int], vertex: int, level: int) -> None:
        if level == 0:
            for node in nodes:
                tree.assign(node, vertex)
            return
        block_size = sum(hypergraph.node_size(v) for v in nodes)
        lower, upper = spec.child_bounds(level, block_size)
        remaining = list(nodes)
        remaining_size = block_size
        pieces: List[List[int]] = []
        while remaining:
            if remaining_size <= upper:
                pieces.append(remaining)
                break
            piece = _fm_find_cut(
                hypergraph, remaining, lower, upper, rng, fm_config
            )
            pieces.append(piece)
            piece_set = set(piece)
            remaining = [v for v in remaining if v not in piece_set]
            remaining_size -= sum(hypergraph.node_size(v) for v in piece)
        for piece in pieces:
            child = tree.add_vertex(level=level - 1, parent=vertex)
            carve(piece, child, level - 1)

    carve(list(hypergraph.nodes()), tree.root, spec.num_levels)
    return tree.freeze()


def _fm_find_cut(
    hypergraph: Hypergraph,
    candidates: List[int],
    lower: float,
    upper: float,
    rng: random.Random,
    fm_config: Optional[FMConfig],
) -> List[int]:
    """Carve a min-cut subset of size in ``[lower, upper]`` via FM."""
    sub, old_to_new = hypergraph.subhypergraph(candidates)
    new_to_old = {new: old for old, new in old_to_new.items()}
    sides, _cut = fm_bipartition(
        sub, lower, upper, rng=rng, config=fm_config
    )
    return sorted(
        new_to_old[v] for v in range(sub.num_nodes) if sides[v] == 0
    )
