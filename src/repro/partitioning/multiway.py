"""Multiway partitioning by recursive FM bisection.

Splits a netlist into ``num_parts`` blocks, each within a size capacity,
by recursively bisecting with the FM bipartitioner.  Used by GFM to build
its bottom-level multiway partition.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.errors import PartitionError
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioning.fm import FMConfig, fm_bipartition


def recursive_bisection(
    hypergraph: Hypergraph,
    num_parts: int,
    capacity: float,
    rng: Optional[random.Random] = None,
    config: Optional[FMConfig] = None,
    slack: float = 0.10,
) -> List[List[int]]:
    """Partition into ``num_parts`` blocks of size <= ``capacity``.

    ``num_parts`` must be a power of two (the experiments use full binary
    hierarchies).  Returns blocks as sorted global node-id lists.
    """
    if num_parts < 1 or num_parts & (num_parts - 1):
        raise PartitionError("num_parts must be a positive power of two")
    if hypergraph.total_size() > num_parts * capacity + 1e-9:
        raise PartitionError(
            f"total size {hypergraph.total_size():g} cannot fit in "
            f"{num_parts} blocks of capacity {capacity:g}"
        )
    rng = rng or random.Random(config.seed if config else 0)

    def split(nodes: List[int], parts: int) -> List[List[int]]:
        if parts == 1:
            return [sorted(nodes)]
        sub, old_to_new = hypergraph.subhypergraph(nodes)
        new_to_old = {new: old for old, new in old_to_new.items()}
        total = sub.total_size()
        half = parts // 2
        # Side 0 takes `half` of the parts; it must fit them and leave a
        # feasible residue for the other half.
        min0 = max(0.0, total - half * capacity)
        max0 = min(half * capacity, total)
        balanced = total / 2.0
        window = slack * total / 2.0
        # Keep the floor/ceil of the balanced point inside the window so
        # unit-size netlists always have an achievable region size.
        lower = max(min0, min(balanced - window, math.floor(balanced)))
        upper = min(max0, max(balanced + window, math.ceil(balanced)))
        if lower > upper:
            lower, upper = min0, max0
        sides, _cut = fm_bipartition(sub, lower, upper, rng=rng, config=config)
        side0 = [new_to_old[v] for v in range(sub.num_nodes) if sides[v] == 0]
        side1 = [new_to_old[v] for v in range(sub.num_nodes) if sides[v] == 1]
        if not side0 or not side1:
            raise PartitionError("bisection produced an empty side")
        return split(side0, half) + split(side1, parts - half)

    blocks = split(list(hypergraph.nodes()), num_parts)
    oversize = [i for i, b in enumerate(blocks)
                if hypergraph.total_size(b) > capacity + 1e-9]
    if oversize:
        raise PartitionError(
            f"recursive bisection left oversized blocks: {oversize}"
        )
    return blocks
