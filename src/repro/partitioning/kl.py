"""Kernighan–Lin pair-swap bipartitioning.

The ancestor of FM: instead of single-node moves, KL swaps node *pairs*
across the cut, which preserves exact balance by construction — useful
when the size window is a single point and as a historical baseline for
the ablation benches.  This implementation works on hypergraphs (a net's
contribution to the cut is its capacity when it has pins on both sides)
with the classic pass structure: greedily pick the best swap, lock both
nodes, repeat, then roll back to the best prefix.

Complexity is O(passes * n^2 * degree) in this direct form, so it is
intended for blocks up to a few hundred nodes (exactly the sub-block
sizes the recursive constructions produce).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PartitionError
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioning.fm import cut_capacity


@dataclass
class KLConfig:
    """Pass bound and seed for :func:`kl_bipartition`."""

    max_passes: int = 8
    seed: int = 0


def _external_internal(
    hypergraph: Hypergraph,
    sides: Sequence[int],
    counts: List[List[int]],
    node: int,
) -> float:
    """KL's D-value: external minus internal connection of ``node``.

    For hypergraphs we use the FM-style approximation: a net counts as
    external when the node's side holds only this pin (moving the node
    would uncut it) and internal when the other side has no pin (moving
    would cut it).
    """
    d_value = 0.0
    side = sides[node]
    for net_id in hypergraph.incident_nets(node):
        capacity = hypergraph.net_capacity(net_id)
        if counts[net_id][side] == 1:
            d_value += capacity
        if counts[net_id][1 - side] == 0:
            d_value -= capacity
    return d_value


def _swap_gain(
    hypergraph: Hypergraph,
    sides: Sequence[int],
    counts: List[List[int]],
    a: int,
    b: int,
    d_values: Dict[int, float],
) -> float:
    """Gain of swapping ``a`` (side 0) with ``b`` (side 1)."""
    shared = 0.0
    a_nets = set(hypergraph.incident_nets(a))
    for net_id in hypergraph.incident_nets(b):
        if net_id in a_nets:
            shared += hypergraph.net_capacity(net_id)
    return d_values[a] + d_values[b] - 2.0 * shared


def kl_bipartition(
    hypergraph: Hypergraph,
    sides: Optional[List[int]] = None,
    rng: Optional[random.Random] = None,
    config: Optional[KLConfig] = None,
) -> Tuple[List[int], float]:
    """Refine (or create) an exactly balanced bipartition with KL swaps.

    ``sides`` must put half the nodes (rounded down) on side 0; when
    omitted a random balanced split is generated.  Returns
    ``(sides, cut_capacity)``.
    """
    config = config or KLConfig()
    rng = rng or random.Random(config.seed)
    n = hypergraph.num_nodes
    if n < 2:
        raise PartitionError("KL needs at least two nodes")
    if sides is None:
        order = list(range(n))
        rng.shuffle(order)
        sides = [0] * n
        for v in order[n // 2:]:
            sides[v] = 1
    else:
        sides = list(sides)
        if any(s not in (0, 1) for s in sides):
            raise PartitionError("sides must be 0/1")

    for _pass in range(config.max_passes):
        improvement = _kl_pass(hypergraph, sides)
        if improvement <= 1e-12:
            break
    return sides, cut_capacity(hypergraph, sides)


def _kl_pass(hypergraph: Hypergraph, sides: List[int]) -> float:
    """One KL pass (greedy swap sequence + rollback); returns the gain."""
    counts = _side_counts(hypergraph, sides)
    locked = [False] * hypergraph.num_nodes
    d_values = {
        v: _external_internal(hypergraph, sides, counts, v)
        for v in hypergraph.nodes()
    }

    swaps: List[Tuple[int, int]] = []
    cumulative = 0.0
    best_cumulative = 0.0
    best_prefix = 0

    while True:
        side0 = [v for v in hypergraph.nodes() if sides[v] == 0 and not locked[v]]
        side1 = [v for v in hypergraph.nodes() if sides[v] == 1 and not locked[v]]
        if not side0 or not side1:
            break
        best_pair = None
        best_gain = -float("inf")
        for a in side0:
            for b in side1:
                gain = _swap_gain(hypergraph, sides, counts, a, b, d_values)
                if gain > best_gain:
                    best_gain = gain
                    best_pair = (a, b)
        assert best_pair is not None
        a, b = best_pair
        _apply_swap(hypergraph, sides, counts, a, b)
        locked[a] = locked[b] = True
        swaps.append((a, b))
        cumulative += best_gain
        if cumulative > best_cumulative + 1e-12:
            best_cumulative = cumulative
            best_prefix = len(swaps)
        # Refresh D-values of unlocked neighbours of both nodes.
        touched = set()
        for node in (a, b):
            for net_id in hypergraph.incident_nets(node):
                for u in hypergraph.net(net_id):
                    if not locked[u]:
                        touched.add(u)
        for u in touched:
            d_values[u] = _external_internal(hypergraph, sides, counts, u)

    for a, b in reversed(swaps[best_prefix:]):
        _apply_swap(hypergraph, sides, counts, a, b)
    return best_cumulative


def _side_counts(
    hypergraph: Hypergraph, sides: Sequence[int]
) -> List[List[int]]:
    counts = []
    for pins in hypergraph.nets():
        n0 = sum(1 for v in pins if sides[v] == 0)
        counts.append([n0, len(pins) - n0])
    return counts


def _apply_swap(
    hypergraph: Hypergraph,
    sides: List[int],
    counts: List[List[int]],
    a: int,
    b: int,
) -> None:
    for node in (a, b):
        from_side = sides[node]
        for net_id in hypergraph.incident_nets(node):
            counts[net_id][from_side] -= 1
            counts[net_id][1 - from_side] += 1
        sides[node] = 1 - from_side
