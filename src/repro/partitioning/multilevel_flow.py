"""Multilevel FLOW: the V-cycle that scales the 1997 algorithm.

Flat FLOW (:mod:`repro.core.flow_htp`) solves a spreading-metric LP per
iteration, which is super-linear in the netlist; past ~10k nodes the
wall-clock budget runs out long before the cut converges.  This module
wraps the exact min-cut machinery in the multilevel paradigm of Heuer,
Sanders and Schlag ("Network Flow-Based Refinement for Multilevel
Hypergraph Partitioning"):

1. **Coarsen** — heavy-edge matchings with a *cluster-size cap* derived
   from the level-0 capacity ``C_0`` (:mod:`repro.partitioning.coarsening`)
   until the instance is small enough for the flat solver;
2. **Coarsest solve** — run FLOW itself on the coarse instance.  Size and
   cut capacity are exactly preserved by contraction, so the same
   :class:`~repro.htp.hierarchy.HierarchySpec` applies unchanged and the
   coarse cost *is* the projected fine cost;
3. **Uncoarsen + corridor refinement** — project the assignment level by
   level and, at each level, grow BFS *corridors* around the most-cut
   leaf pairs, solve an exact s-t min cut on the Lawler expansion of the
   corridor sub-hypergraph (:mod:`repro.algorithms.maxflow`), and accept
   the induced batch move only if the exact Equation-(1) cost delta is
   negative.  Tiny corridors additionally try a global Stoer–Wagner split
   (:mod:`repro.algorithms.mincut`) as a second candidate.

The refinement is feasibility-safe by construction: a corridor side is
never grown beyond the capacity slack of the *opposite* leaf's ancestor
chain, so any cut of the corridor yields a partition that still satisfies
every ``C_l``.  One node per side is always pinned as an anchor, so
leaves cannot drain empty.  Every step iterates in sorted order from a
seeded RNG: results are bit-identical across runs and across
``--workers`` counts (the parallel metric engine is itself bit-identical
to the serial one).

:func:`multilevel_fm_htp` is the apples-to-apples comparator — the same
V-cycle with RFM as the coarsest solver and pairwise FM refinement — used
by ``benchmarks/bench_multilevel.py`` for the quality/time tables in
docs/benchmarks.md.  See docs/multilevel.md for the full design story.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.algorithms.maxflow import FlowNetwork
from repro.algorithms.mincut import stoer_wagner_min_cut
from repro.core.flow_htp import FlowHTPConfig, FlowHTPResult, flow_htp
from repro.core.parallel import ParallelConfig
from repro.core.perf import PerfCounters
from repro.core.spreading_metric import ENGINES, SpreadingMetricConfig
from repro.errors import PartitionError, SolverAborted
from repro.htp.cost import total_cost
from repro.htp.hierarchy import HierarchySpec
from repro.htp.partition import PartitionTree
from repro.hypergraph.graph import Graph
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioning.coarsening import (
    CoarseLevel,
    CoarseningConfig,
    coarsen,
    project_assignment,
)
from repro.partitioning.fm import FMConfig
from repro.partitioning.rfm import rfm_partition

_EPS = 1e-9
_INF = float("inf")


@dataclass
class MultilevelFlowConfig:
    """Knobs of the V-cycle (see docs/multilevel.md for the full story).

    Attributes
    ----------
    coarsest_size:
        Stop coarsening at this many nodes; ``None`` picks
        ``max(64, 4 * leaf slots)`` from the spec's branching.
    max_levels:
        Hard cap on coarsening steps.
    cluster_fraction:
        Cluster-size cap as a fraction of ``C_0`` — keeps coarse nodes
        placeable inside level-0 capacity windows.
    max_cluster_size:
        Absolute override of the cap (wins over ``cluster_fraction``).
    corridor_hops:
        BFS rings grown around the boundary seeds of a leaf pair.
    corridor_cap:
        Maximum corridor nodes per side (the slack cap may stop earlier).
    max_pairs_per_level:
        Refine only the most-cut leaf pairs at each uncoarsening level.
    refine_passes:
        Sweeps over the pair list per level; a sweep with no accepted
        move ends the level early.
    stoer_wagner_max:
        Corridors at most this large also try a global min-cut split.
    refiner:
        ``'flow'`` (corridor max-flow), ``'fm'`` (pairwise FM — the
        comparator), or ``'none'``.
    coarse_solver:
        ``'flow'`` (:func:`repro.core.flow_htp.flow_htp`) or ``'rfm'``.
    engine:
        Metric engine for the coarsest-level FLOW solve.
    workers:
        Worker processes when ``engine == 'parallel'``.
    seed:
        Master seed; the whole V-cycle is a pure function of it.
    flow:
        Full override of the coarsest-level solver configuration.
    """

    coarsest_size: Optional[int] = None
    max_levels: int = 24
    cluster_fraction: float = 0.05
    max_cluster_size: Optional[float] = None
    corridor_hops: int = 2
    corridor_cap: int = 200
    max_pairs_per_level: int = 32
    refine_passes: int = 3
    stoer_wagner_max: int = 48
    refiner: str = "flow"
    coarse_solver: str = "flow"
    engine: str = "scipy"
    workers: Optional[int] = None
    seed: int = 0
    flow: Optional[FlowHTPConfig] = None

    def __post_init__(self) -> None:
        if self.refiner not in ("flow", "fm", "none"):
            raise PartitionError(f"unknown refiner {self.refiner!r}")
        if self.coarse_solver not in ("flow", "rfm"):
            raise PartitionError(
                f"unknown coarse solver {self.coarse_solver!r}"
            )
        if self.engine not in ENGINES:
            raise PartitionError(f"unknown metric engine {self.engine!r}")


def multilevel_flow_htp(
    hypergraph: Hypergraph,
    spec: HierarchySpec,
    config: Optional[MultilevelFlowConfig] = None,
    abort_check: Optional[Callable[[], object]] = None,
) -> FlowHTPResult:
    """Run the multilevel FLOW V-cycle; returns a flat-FLOW-shaped result.

    The result is a regular :class:`~repro.core.flow_htp.FlowHTPResult`
    (the service, cache and CLI consume it unchanged):
    ``iteration_costs`` carries the coarsest-level iteration costs —
    which, by cut preservation, equal the projected fine costs before
    refinement — with the final refined cost appended;
    ``metric_objectives``/``metric_results`` come from the coarse solve
    (empty for the RFM comparator); ``perf`` aggregates the coarse
    solver's counters with the V-cycle's own phase times (``coarsen``,
    ``coarse_solve``, ``refine``) and corridor ``cut_evals``.

    ``abort_check`` follows the flat solver's contract: polled between
    phases and refinement levels, a truthy return raises
    :class:`~repro.errors.SolverAborted`.
    """
    config = config or MultilevelFlowConfig()
    started = time.perf_counter()
    counters = PerfCounters()
    rng = random.Random(config.seed)

    def poll() -> None:
        if abort_check is not None:
            reason = abort_check()
            if reason:
                raise SolverAborted(str(reason))

    # --- Coarsen -----------------------------------------------------
    cap = config.max_cluster_size
    if cap is None:
        min_size = min(
            (hypergraph.node_size(v) for v in range(hypergraph.num_nodes)),
            default=1.0,
        )
        cap = max(config.cluster_fraction * spec.capacity(0), 2.0 * min_size)
    coarsest_size = config.coarsest_size
    if coarsest_size is None:
        leaf_slots = 1
        for branch in spec.branching:
            leaf_slots *= branch
        coarsest_size = max(64, 4 * leaf_slots)

    phase_start = time.perf_counter()
    levels: List[CoarseLevel] = coarsen(
        hypergraph,
        rng,
        CoarseningConfig(
            coarsest_size=coarsest_size,
            max_levels=config.max_levels,
            max_cluster_size=cap,
        ),
    )
    counters.add_phase("coarsen", time.perf_counter() - phase_start)
    poll()

    # --- Coarsest-level solve ---------------------------------------
    # Clumpy coarse node sizes can make a capacity window unreachable
    # (e.g. a width-zero ``[138, 138]`` window with all-even sizes), so
    # the solve runs a robustness ladder: try the coarsest level, and on
    # PartitionError pop to the next-finer level — the input itself, at
    # the bottom, has the original granularity.
    chain_h = [hypergraph] + [level.hypergraph for level in levels]
    phase_start = time.perf_counter()
    coarse_result: Optional[FlowHTPResult] = None
    coarse_tree: Optional[PartitionTree] = None
    solved_at = 0
    for index in range(len(chain_h) - 1, -1, -1):
        current = chain_h[index]
        try:
            if config.coarse_solver == "flow":
                flow_config = config.flow or _coarse_flow_config(config)
                try:
                    coarse_result = flow_htp(
                        current, spec, flow_config, abort_check=abort_check
                    )
                    coarse_tree = coarse_result.partition
                except PartitionError as exc:
                    # RFM's recursive carving sometimes succeeds where
                    # FLOW's construction windows are infeasible.
                    counters.record_degradation(
                        "coarse_flow_to_rfm", exc, site="multilevel"
                    )
                    coarse_tree = _coarse_rfm(current, spec, config)
                else:
                    # Portfolio guard (the multilevel-standard move —
                    # KaHyPar keeps the best of many initial
                    # partitioners): the coarse instance is tiny, so
                    # also price the cheap RFM tree and keep the
                    # better start for uncoarsening.
                    try:
                        rfm_tree = _coarse_rfm(current, spec, config)
                    except PartitionError:
                        rfm_tree = None
                    if rfm_tree is not None and total_cost(
                        current, rfm_tree, spec
                    ) < total_cost(current, coarse_tree, spec):
                        coarse_tree = rfm_tree
            else:
                coarse_tree = _coarse_rfm(current, spec, config)
            solved_at = index
            break
        except PartitionError as exc:
            if index == 0:
                raise
            counters.record_degradation(
                "coarse_pop_level", exc, site="multilevel"
            )
    assert coarse_tree is not None
    counters.add_phase("coarse_solve", time.perf_counter() - phase_start)
    poll()

    # --- Uncoarsen + refine -----------------------------------------
    chains = {
        leaf: list(coarse_tree.ancestor_chain(leaf))
        for leaf in coarse_tree.leaves()
    }
    assignment = [
        coarse_tree.leaf_of(v) for v in range(chain_h[solved_at].num_nodes)
    ]

    phase_start = time.perf_counter()
    if solved_at > 0:
        for index in range(solved_at - 1, -1, -1):
            poll()
            assignment = project_assignment(
                levels[index].coarse_of, assignment
            )
            _refine(
                chain_h[index], spec, chains, assignment, config, counters
            )
    else:
        _refine(hypergraph, spec, chains, assignment, config, counters)
    counters.add_phase("refine", time.perf_counter() - phase_start)

    # --- Assemble the fine tree -------------------------------------
    doc = coarse_tree.to_dict()
    doc["num_nodes"] = hypergraph.num_nodes
    doc["leaf_of"] = list(assignment)
    tree = PartitionTree.from_dict(doc)
    cost = total_cost(hypergraph, tree, spec)

    iteration_costs: List[float] = []
    metric_objectives: List[float] = []
    metric_results: List[object] = []
    if coarse_result is not None:
        iteration_costs = list(coarse_result.iteration_costs)
        metric_objectives = list(coarse_result.metric_objectives)
        metric_results = list(coarse_result.metric_results)
        if coarse_result.perf is not None:
            counters.merge(coarse_result.perf)
    iteration_costs.append(cost)

    return FlowHTPResult(
        partition=tree,
        cost=cost,
        iteration_costs=iteration_costs,
        metric_objectives=metric_objectives,
        metric_results=metric_results,
        runtime_seconds=time.perf_counter() - started,
        perf=counters,
    )


def multilevel_fm_htp(
    hypergraph: Hypergraph,
    spec: HierarchySpec,
    config: Optional[MultilevelFlowConfig] = None,
    abort_check: Optional[Callable[[], object]] = None,
) -> FlowHTPResult:
    """The FM comparator: same V-cycle, RFM coarse solve, FM refinement."""
    config = config or MultilevelFlowConfig()
    config = replace(config, coarse_solver="rfm", refiner="fm")
    return multilevel_flow_htp(
        hypergraph, spec, config, abort_check=abort_check
    )


def _coarse_rfm(
    hypergraph: Hypergraph,
    spec: HierarchySpec,
    config: MultilevelFlowConfig,
) -> PartitionTree:
    """RFM at the coarsest level, with extra restarts for clumpy sizes."""
    return rfm_partition(
        hypergraph,
        spec,
        rng=random.Random(config.seed),
        fm_config=FMConfig(seed=config.seed, restarts=8),
    )


def _coarse_flow_config(config: MultilevelFlowConfig) -> FlowHTPConfig:
    """The flat solver's configuration for the coarsest level."""
    parallel = None
    if config.engine == "parallel" and config.workers is not None:
        parallel = ParallelConfig(workers=config.workers)
    return FlowHTPConfig(
        iterations=2,
        constructions_per_metric=4,
        seed=config.seed,
        metric=SpreadingMetricConfig(
            delta=0.05,
            max_rounds=200,
            engine=config.engine,
            seed=config.seed,
        ),
        parallel=parallel,
    )


# ----------------------------------------------------------------------
# Refinement
# ----------------------------------------------------------------------


def _refine(
    hypergraph: Hypergraph,
    spec: HierarchySpec,
    chains: Dict[int, List[int]],
    assignment: List[int],
    config: MultilevelFlowConfig,
    counters: PerfCounters,
) -> int:
    """Refine ``assignment`` in place at one level; returns moves applied."""
    if config.refiner == "none":
        return 0
    sizes: Dict[int, float] = {}
    leaf_count: Dict[int, int] = {}
    for v in range(hypergraph.num_nodes):
        size = hypergraph.node_size(v)
        leaf = assignment[v]
        leaf_count[leaf] = leaf_count.get(leaf, 0) + 1
        for vertex in chains[leaf]:
            sizes[vertex] = sizes.get(vertex, 0.0) + size

    total_moves = 0
    for _sweep in range(config.refine_passes):
        pairs = _cut_pairs(hypergraph, assignment)
        ranked = sorted(
            pairs.items(), key=lambda item: (-item[1][0], item[0])
        )[: config.max_pairs_per_level]
        sweep_moves = 0
        for (leaf_a, leaf_b), (_cut, seeds) in ranked:
            moves = _refine_pair(
                hypergraph,
                spec,
                chains,
                assignment,
                sizes,
                leaf_count,
                leaf_a,
                leaf_b,
                seeds,
                config,
                counters,
            )
            sweep_moves += moves
        total_moves += sweep_moves
        if sweep_moves == 0:
            break
    return total_moves


def _cut_pairs(
    hypergraph: Hypergraph, assignment: List[int]
) -> Dict[Tuple[int, int], Tuple[float, List[int]]]:
    """Cut capacity and boundary nodes per adjacent leaf pair."""
    cut: Dict[Tuple[int, int], float] = {}
    boundary: Dict[Tuple[int, int], Set[int]] = {}
    for net_id, pins in enumerate(hypergraph.nets()):
        leaves = sorted({assignment[p] for p in pins})
        if len(leaves) < 2:
            continue
        capacity = hypergraph.net_capacity(net_id)
        for i in range(len(leaves)):
            for j in range(i + 1, len(leaves)):
                key = (leaves[i], leaves[j])
                cut[key] = cut.get(key, 0.0) + capacity
                nodes = boundary.setdefault(key, set())
                for p in pins:
                    if assignment[p] == key[0] or assignment[p] == key[1]:
                        nodes.add(p)
    return {
        key: (cut[key], sorted(boundary[key])) for key in sorted(cut)
    }


def _chain_slack(
    spec: HierarchySpec,
    sizes: Dict[int, float],
    chain: List[int],
    lca_level: int,
) -> float:
    """Headroom for inflow into a leaf's ancestor chain below the LCA."""
    slack = _INF
    for level in range(lca_level):
        slack = min(
            slack, spec.capacity(level) - sizes.get(chain[level], 0.0)
        )
    return max(0.0, slack)


def _grow_corridor(
    hypergraph: Hypergraph,
    assignment: List[int],
    leaf_a: int,
    leaf_b: int,
    seeds: List[int],
    slack_a: float,
    slack_b: float,
    config: MultilevelFlowConfig,
) -> Tuple[List[int], List[int]]:
    """BFS the refinement corridor around the pair boundary.

    A node on leaf ``a``'s side joins the corridor only while the running
    corridor-``a`` size stays within ``slack_b`` (the headroom of ``b``'s
    chain) — so *any* cut of the corridor is balance-feasible — and
    symmetrically for ``b``.  Rejected nodes are not expanded.
    """
    corridor_a: List[int] = []
    corridor_b: List[int] = []
    size_a = size_b = 0.0
    visited: Set[int] = set()
    frontier = sorted(set(seeds))
    for _hop in range(config.corridor_hops + 1):
        if not frontier:
            break
        next_frontier: Set[int] = set()
        for v in frontier:
            if v in visited:
                continue
            visited.add(v)
            size = hypergraph.node_size(v)
            if assignment[v] == leaf_a:
                if (
                    len(corridor_a) >= config.corridor_cap
                    or size_a + size > slack_b + _EPS
                ):
                    continue
                corridor_a.append(v)
                size_a += size
            else:
                if (
                    len(corridor_b) >= config.corridor_cap
                    or size_b + size > slack_a + _EPS
                ):
                    continue
                corridor_b.append(v)
                size_b += size
            for net_id in hypergraph.incident_nets(v):
                for u in hypergraph.net(net_id):
                    if u not in visited and (
                        assignment[u] == leaf_a or assignment[u] == leaf_b
                    ):
                        next_frontier.add(u)
        frontier = sorted(next_frontier)
    return corridor_a, corridor_b


def _corridor_cut_moves(
    hypergraph: Hypergraph,
    assignment: List[int],
    leaf_a: int,
    leaf_b: int,
    corridor: List[int],
    counters: PerfCounters,
) -> Dict[int, int]:
    """Exact s-t min cut on the Lawler expansion of the corridor.

    Nets touching the corridor become two-node gadgets ``e1 -> e2`` of
    capacity ``c(e)``; corridor pins attach with infinite arcs, fixed
    pins collapse into the terminals (``s`` for leaf ``a``, ``t`` for
    leaf ``b``), pins in other leaves do not constrain this pair.  The
    min cut side of ``s`` keeps leaf ``a``; the rest moves to ``b``.
    """
    index = {v: i for i, v in enumerate(sorted(corridor))}
    n = len(index)
    source, sink = n, n + 1
    net_ids = sorted(
        {
            net_id
            for v in corridor
            for net_id in hypergraph.incident_nets(v)
        }
    )
    network = FlowNetwork(n + 2 + 2 * len(net_ids))
    for k, net_id in enumerate(net_ids):
        e1 = n + 2 + 2 * k
        e2 = e1 + 1
        network.add_edge(e1, e2, hypergraph.net_capacity(net_id))
        endpoints: Set[int] = set()
        for p in hypergraph.net(net_id):
            if p in index:
                endpoints.add(index[p])
            elif assignment[p] == leaf_a:
                endpoints.add(source)
            elif assignment[p] == leaf_b:
                endpoints.add(sink)
        for x in sorted(endpoints):
            network.add_edge(x, e1, _INF)
            network.add_edge(e2, x, _INF)
    network.max_flow(source, sink)
    counters.cut_evals += 1
    side = network.min_cut_side(source)
    moves: Dict[int, int] = {}
    for v in corridor:
        target = leaf_a if index[v] in side else leaf_b
        if target != assignment[v]:
            moves[v] = target
    return moves


def _stoer_wagner_moves(
    hypergraph: Hypergraph,
    assignment: List[int],
    leaf_a: int,
    leaf_b: int,
    corridor: List[int],
    counters: PerfCounters,
) -> List[Dict[int, int]]:
    """Global-min-cut candidates for a tiny corridor (both orientations).

    Clique-expands the corridor-internal nets into a graph and splits it
    with Stoer–Wagner; since the split is terminal-free, both ways of
    mapping the two groups onto the leaves are returned as candidates.
    """
    ordered = sorted(corridor)
    index = {v: i for i, v in enumerate(ordered)}
    edges: Dict[Tuple[int, int], float] = {}
    for net_id in sorted(
        {n for v in corridor for n in hypergraph.incident_nets(v)}
    ):
        pins = [p for p in hypergraph.net(net_id) if p in index]
        if len(pins) < 2:
            continue
        weight = hypergraph.net_capacity(net_id) / (len(pins) - 1)
        for i in range(len(pins)):
            for j in range(i + 1, len(pins)):
                key = (index[pins[i]], index[pins[j]])
                edges[key] = edges.get(key, 0.0) + weight
    if not edges:
        return []
    graph = Graph(
        num_nodes=len(ordered),
        edges=[(u, v, w) for (u, v), w in sorted(edges.items())],
    )
    _weight, one_side = stoer_wagner_min_cut(graph)
    counters.cut_evals += 1
    candidates: List[Dict[int, int]] = []
    for side_leaf, other_leaf in ((leaf_a, leaf_b), (leaf_b, leaf_a)):
        moves: Dict[int, int] = {}
        for v in ordered:
            target = side_leaf if index[v] in one_side else other_leaf
            if target != assignment[v]:
                moves[v] = target
        if moves:
            candidates.append(moves)
    return candidates


def _fm_pair_moves(
    hypergraph: Hypergraph,
    assignment: List[int],
    leaf_a: int,
    leaf_b: int,
    corridor: List[int],
    slack_a: float,
    slack_b: float,
    config: MultilevelFlowConfig,
) -> Dict[int, int]:
    """FM-style sweep over the corridor (the comparator refiner).

    Single greedy pass ordered by pairwise cut gain over nets internal to
    the pair, honouring the same slack budgets as the flow refiner.
    """
    corridor_set = set(corridor)
    sides = {v: 0 if assignment[v] == leaf_a else 1 for v in corridor}
    moved_to_b = moved_to_a = 0.0
    moves: Dict[int, int] = {}
    for v in sorted(corridor):
        gain = 0.0
        for net_id in hypergraph.incident_nets(v):
            pins = hypergraph.net(net_id)
            capacity = hypergraph.net_capacity(net_id)
            same = other = external = 0
            for p in pins:
                if p == v:
                    continue
                if p in corridor_set:
                    if sides[p] == sides[v]:
                        same += 1
                    else:
                        other += 1
                elif assignment[p] == (leaf_a if sides[v] == 0 else leaf_b):
                    same += 1
                elif assignment[p] == (leaf_b if sides[v] == 0 else leaf_a):
                    other += 1
                else:
                    external += 1
            if same == 0 and other > 0:
                gain += capacity
            elif other == 0 and same > 0:
                gain -= capacity
        if gain <= 0:
            continue
        size = hypergraph.node_size(v)
        if sides[v] == 0:
            if moved_to_b + size > slack_b + _EPS:
                continue
            moved_to_b += size
            sides[v] = 1
            moves[v] = leaf_b
        else:
            if moved_to_a + size > slack_a + _EPS:
                continue
            moved_to_a += size
            sides[v] = 0
            moves[v] = leaf_a
    return moves


def _moves_delta(
    hypergraph: Hypergraph,
    spec: HierarchySpec,
    chains: Dict[int, List[int]],
    assignment: List[int],
    moves: Dict[int, int],
) -> float:
    """Exact Equation-(1) cost delta of a batch move (span convention:
    0 when a net is internal to one block)."""
    affected = sorted(
        {
            net_id
            for v in moves
            for net_id in hypergraph.incident_nets(v)
        }
    )
    delta = 0.0
    for net_id in affected:
        pins = hypergraph.net(net_id)
        capacity = hypergraph.net_capacity(net_id)
        for level in range(spec.num_levels):
            old_blocks = {chains[assignment[p]][level] for p in pins}
            new_blocks = {
                chains[moves.get(p, assignment[p])][level] for p in pins
            }
            old_span = 0 if len(old_blocks) <= 1 else len(old_blocks)
            new_span = 0 if len(new_blocks) <= 1 else len(new_blocks)
            if new_span != old_span:
                delta += (
                    capacity * spec.weight(level) * (new_span - old_span)
                )
    return delta


def _moves_feasible(
    hypergraph: Hypergraph,
    assignment: List[int],
    moves: Dict[int, int],
    leaf_a: int,
    slack_a: float,
    slack_b: float,
) -> bool:
    """Whether a batch move respects both chains' slack budgets."""
    into_a = into_b = 0.0
    for v, target in moves.items():
        size = hypergraph.node_size(v)
        if target == leaf_a:
            into_a += size
        else:
            into_b += size
    return into_a <= slack_a + _EPS and into_b <= slack_b + _EPS


def _refine_pair(
    hypergraph: Hypergraph,
    spec: HierarchySpec,
    chains: Dict[int, List[int]],
    assignment: List[int],
    sizes: Dict[int, float],
    leaf_count: Dict[int, int],
    leaf_a: int,
    leaf_b: int,
    seeds: List[int],
    config: MultilevelFlowConfig,
    counters: PerfCounters,
) -> int:
    """Refine one leaf pair; applies the best negative-delta candidate."""
    chain_a, chain_b = chains[leaf_a], chains[leaf_b]
    lca_level = next(
        level
        for level in range(len(chain_a))
        if chain_a[level] == chain_b[level]
    )
    if lca_level == 0:
        return 0
    slack_a = _chain_slack(spec, sizes, chain_a, lca_level)
    slack_b = _chain_slack(spec, sizes, chain_b, lca_level)
    # Earlier pairs may have moved seed nodes elsewhere.
    seeds = [
        v for v in seeds if assignment[v] == leaf_a or assignment[v] == leaf_b
    ]
    if not seeds:
        return 0
    corridor_a, corridor_b = _grow_corridor(
        hypergraph,
        assignment,
        leaf_a,
        leaf_b,
        seeds,
        slack_a,
        slack_b,
        config,
    )
    # Pin one anchor per side so a leaf can never drain empty.
    if corridor_a and len(corridor_a) >= leaf_count.get(leaf_a, 0):
        corridor_a.remove(min(corridor_a))
    if corridor_b and len(corridor_b) >= leaf_count.get(leaf_b, 0):
        corridor_b.remove(min(corridor_b))
    corridor = corridor_a + corridor_b
    if not corridor:
        return 0

    candidates: List[Dict[int, int]] = []
    if config.refiner == "flow":
        candidates.append(
            _corridor_cut_moves(
                hypergraph, assignment, leaf_a, leaf_b, corridor, counters
            )
        )
        if 2 <= len(corridor) <= config.stoer_wagner_max:
            candidates.extend(
                _stoer_wagner_moves(
                    hypergraph,
                    assignment,
                    leaf_a,
                    leaf_b,
                    corridor,
                    counters,
                )
            )
    # The FM sweep is cheap and exact-gated like every other candidate,
    # so the flow refiner tries it too — it sometimes finds pairwise
    # gains the corridor cut (which prices the pair cut, not the full
    # Equation-(1) objective) leaves on the table.
    candidates.append(
        _fm_pair_moves(
            hypergraph,
            assignment,
            leaf_a,
            leaf_b,
            corridor,
            slack_a,
            slack_b,
            config,
        )
    )

    best_moves: Optional[Dict[int, int]] = None
    best_delta = -_EPS
    for moves in candidates:
        if not moves:
            continue
        if not _moves_feasible(
            hypergraph, assignment, moves, leaf_a, slack_a, slack_b
        ):
            continue
        delta = _moves_delta(hypergraph, spec, chains, assignment, moves)
        if delta < best_delta:
            best_delta = delta
            best_moves = moves
    if best_moves is None:
        return 0

    for v in sorted(best_moves):
        target = best_moves[v]
        size = hypergraph.node_size(v)
        old = assignment[v]
        for vertex in chains[old]:
            sizes[vertex] = sizes.get(vertex, 0.0) - size
        for vertex in chains[target]:
            sizes[vertex] = sizes.get(vertex, 0.0) + size
        leaf_count[old] = leaf_count.get(old, 0) - 1
        leaf_count[target] = leaf_count.get(target, 0) + 1
        assignment[v] = target
    return len(best_moves)
