"""Shared coarsening substrate for multilevel partitioners.

One coarsening step contracts a *heavy-edge matching*: pairs of nodes
whose shared nets carry the most capacity per pin are merged, node sizes
accumulate, nets are re-expressed over the coarse ids (dropping nets that
collapse to a single pin) and parallel coarse nets merge by summing their
capacities.  Repeating the step yields a chain of levels whose total node
size — and whose cut structure under projection — is exactly preserved,
which is what makes the V-cycle sound:

* **size preservation** — every coarse node's size is the sum of the fine
  sizes it absorbed, so a :class:`~repro.htp.hierarchy.HierarchySpec`
  stated in absolute sizes is valid at every level;
* **cut preservation** — a fine assignment obtained by projecting a
  coarse assignment through ``coarse_of`` cuts exactly the nets whose
  coarse images are cut, with equal capacity (`tests/test_multilevel.py`
  and the Hypothesis suite in `tests/test_multilevel_flow.py` pin both).

The FM-only bipartitioner (:mod:`repro.partitioning.multilevel`) and the
FLOW V-cycle (:mod:`repro.partitioning.multilevel_flow`) both build on
this module; the optional ``max_cluster_size`` cap is what the V-cycle
adds — it stops clusters outgrowing the granularity the coarsest-level
capacity windows can place (see docs/multilevel.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hypergraph.hypergraph import Hypergraph

#: Nets with more pins than this are ignored by the matcher: a k-pin net
#: spreads its capacity over k-1 partners and carries little pairwise
#: signal (the classic heavy-edge rationale).
MATCHING_MAX_NET_SIZE = 6


@dataclass
class CoarseLevel:
    """One coarsening step: the coarse hypergraph and the node mapping.

    ``coarse_of[v]`` is the coarse node absorbing fine node ``v``; the
    mapping is onto ``range(hypergraph.num_nodes)``.
    """

    hypergraph: Hypergraph
    coarse_of: List[int]


@dataclass
class CoarseningConfig:
    """Stop conditions of the coarsening loop.

    Attributes
    ----------
    coarsest_size:
        Stop once a level has at most this many nodes.
    max_levels:
        Hard cap on coarsening steps.
    max_cluster_size:
        Optional cap on a coarse node's accumulated size; ``None``
        matches greedily (the FM bipartitioner's historical behaviour).
        Multilevel FLOW sets it from the level-0 capacity so the
        coarsest instance stays placeable under the hierarchy spec.
    """

    coarsest_size: int = 40
    max_levels: int = 12
    max_cluster_size: Optional[float] = None


def heavy_edge_matching(
    hypergraph: Hypergraph,
    rng: random.Random,
    max_cluster_size: Optional[float] = None,
) -> List[int]:
    """Match nodes by heaviest connectivity; returns fine->coarse ids.

    Nodes are visited in a seeded random order; each unmatched node pairs
    with its unmatched neighbour of maximum summed ``capacity/(pins-1)``
    connectivity (ties broken by visit order, so the result is a pure
    function of ``rng``'s state).  With ``max_cluster_size`` set, pairs
    whose combined size would exceed the cap stay separate.
    """
    n = hypergraph.num_nodes
    connectivity: Dict[Tuple[int, int], float] = {}
    for net_id, pins in enumerate(hypergraph.nets()):
        if len(pins) > MATCHING_MAX_NET_SIZE:
            continue  # big nets carry little pairwise signal
        weight = hypergraph.net_capacity(net_id) / (len(pins) - 1)
        for i in range(len(pins)):
            for j in range(i + 1, len(pins)):
                key = (pins[i], pins[j])
                connectivity[key] = connectivity.get(key, 0.0) + weight

    order = list(range(n))
    rng.shuffle(order)
    matched = [-1] * n
    for v in order:
        if matched[v] != -1:
            continue
        best_partner = -1
        best_weight = 0.0
        for net_id in hypergraph.incident_nets(v):
            for u in hypergraph.net(net_id):
                if u == v or matched[u] != -1:
                    continue
                if (
                    max_cluster_size is not None
                    and hypergraph.node_size(v) + hypergraph.node_size(u)
                    > max_cluster_size
                ):
                    continue
                key = (v, u) if v < u else (u, v)
                weight = connectivity.get(key, 0.0)
                if weight > best_weight:
                    best_weight = weight
                    best_partner = u
        if best_partner != -1:
            matched[v] = best_partner
            matched[best_partner] = v
        else:
            matched[v] = v  # stays single

    coarse_of = [-1] * n
    next_id = 0
    for v in range(n):
        if coarse_of[v] != -1:
            continue
        partner = matched[v]
        coarse_of[v] = next_id
        if partner != v and partner != -1:
            coarse_of[partner] = next_id
        next_id += 1
    return coarse_of


def contract(hypergraph: Hypergraph, coarse_of: List[int]) -> Hypergraph:
    """The coarse hypergraph induced by a node mapping.

    Node sizes accumulate per cluster; nets map to the sorted set of
    their pins' coarse images, single-pin images are dropped (the net
    became internal) and identical coarse nets merge by summing their
    capacities — so any projected assignment cuts the same capacity at
    both levels.
    """
    num_coarse = max(coarse_of) + 1
    sizes = [0.0] * num_coarse
    for v in range(hypergraph.num_nodes):
        sizes[coarse_of[v]] += hypergraph.node_size(v)
    net_map: Dict[Tuple[int, ...], float] = {}
    for net_id, pins in enumerate(hypergraph.nets()):
        coarse_pins = tuple(sorted({coarse_of[v] for v in pins}))
        if len(coarse_pins) < 2:
            continue
        net_map[coarse_pins] = (
            net_map.get(coarse_pins, 0.0) + hypergraph.net_capacity(net_id)
        )
    nets = sorted(net_map)
    return Hypergraph(
        num_nodes=num_coarse,
        nets=nets,
        node_sizes=sizes,
        net_capacities=[net_map[net] for net in nets],
        name=(hypergraph.name + "~" if hypergraph.name else "coarse"),
    )


def coarsen(
    hypergraph: Hypergraph,
    rng: random.Random,
    config: Optional[CoarseningConfig] = None,
) -> List[CoarseLevel]:
    """Run the coarsening loop; returns the chain of levels, finest first.

    ``levels[i].coarse_of`` maps the nodes of level ``i``'s *fine* side
    (the input for ``i == 0``, else ``levels[i-1].hypergraph``) onto
    ``levels[i].hypergraph``.  The loop stops at ``coarsest_size`` nodes,
    after ``max_levels`` steps, or when a matching contracts nothing.
    """
    config = config or CoarseningConfig()
    levels: List[CoarseLevel] = []
    current = hypergraph
    for _level in range(config.max_levels):
        if current.num_nodes <= config.coarsest_size:
            break
        coarse_of = heavy_edge_matching(
            current, rng, max_cluster_size=config.max_cluster_size
        )
        if max(coarse_of) + 1 >= current.num_nodes:  # no contraction
            break
        coarse = contract(current, coarse_of)
        levels.append(CoarseLevel(hypergraph=coarse, coarse_of=coarse_of))
        current = coarse
    return levels


def project_assignment(
    coarse_of: List[int], assignment: List[int]
) -> List[int]:
    """Pull a per-coarse-node assignment back to the fine nodes."""
    return [assignment[coarse_of[v]] for v in range(len(coarse_of))]
