"""Random feasible initial partitions (testing and FM baselines)."""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import InfeasibleError
from repro.htp.hierarchy import HierarchySpec
from repro.htp.partition import PartitionTree
from repro.hypergraph.hypergraph import Hypergraph


def full_tree_shape(spec: HierarchySpec, num_nodes: int) -> PartitionTree:
    """An unpopulated full tree: every vertex has exactly ``K_l`` children."""
    tree = PartitionTree(num_nodes=num_nodes, num_levels=spec.num_levels)
    frontier = [tree.root]
    for level in range(spec.num_levels - 1, -1, -1):
        k = spec.branch_bound(level + 1)
        frontier = [
            tree.add_vertex(level=level, parent=parent)
            for parent in frontier
            for _child in range(k)
        ]
    return tree


def random_partition(
    hypergraph: Hypergraph,
    spec: HierarchySpec,
    rng: Optional[random.Random] = None,
) -> PartitionTree:
    """A random feasible partition over the full tree shape.

    Nodes are shuffled and first-fit packed into leaves, checking the size
    bound at every ancestor level.  Raises :class:`InfeasibleError` when
    packing fails (pathological size distributions).
    """
    rng = rng or random.Random(0)
    tree = full_tree_shape(spec, hypergraph.num_nodes)
    leaves = tree.leaves()
    chains = {leaf: tree.ancestor_chain(leaf) for leaf in leaves}
    block_size = {v: 0.0 for v in range(tree.num_vertices)}

    order = list(hypergraph.nodes())
    rng.shuffle(order)
    rotated = list(leaves)
    for node in order:
        size = hypergraph.node_size(node)
        placed = False
        rng.shuffle(rotated)
        for leaf in rotated:
            chain = chains[leaf]
            if all(
                block_size[vertex] + size <= spec.capacity(level) + 1e-9
                for level, vertex in enumerate(chain)
            ):
                tree.assign(node, leaf)
                for vertex in chain:
                    block_size[vertex] += size
                placed = True
                break
        if not placed:
            raise InfeasibleError(
                f"random packing failed at node {node} (size {size:g})"
            )
    return tree.freeze()
