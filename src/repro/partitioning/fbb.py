"""Flow-based min-cut balanced bipartitioning (FBB).

The max-flow min-cut school of circuit partitioning the paper's
introduction builds on (Yang & Wong's FBB): model the netlist as a flow
network whose minimum s-t cut counts exactly the cut *nets*, then repair
the balance by collapsing the too-small side into its terminal and
recomputing, until the cut side lands in the size window.

Net model: each net ``e`` becomes a pair of bridge nodes ``n1 -> n2``
with arc capacity ``c(e)``; every pin ``v`` gets infinite-capacity arcs
``v -> n1`` and ``n2 -> v``.  Any s-t cut then severs exactly the bridge
arcs of nets with pins on both sides, so min cut = min net cut.

Used as another constructive baseline and as an alternative ``find_cut``
engine in the ablation benches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.algorithms.maxflow import FlowNetwork
from repro.errors import PartitionError
from repro.hypergraph.hypergraph import Hypergraph

_INF = 1e18


@dataclass
class FBBResult:
    """Outcome of :func:`fbb_bipartition`.

    ``side0`` is the source-side node list (within the size window),
    ``cut_capacity`` the capacity of nets crossing the bipartition, and
    ``flow_rounds`` how many max-flow computations were needed.
    """

    side0: List[int]
    cut_capacity: float
    flow_rounds: int


def _build_network(
    hypergraph: Hypergraph,
    merged_s: Set[int],
    merged_t: Set[int],
) -> Tuple[FlowNetwork, int, int]:
    """The FBB flow network with collapsed terminal groups.

    Layout: 0 = super-source, 1 = super-sink, then one node per free
    netlist node, then two bridge nodes per net.
    """
    n = hypergraph.num_nodes
    node_index = {}
    next_index = 2
    for v in range(n):
        if v in merged_s:
            node_index[v] = 0
        elif v in merged_t:
            node_index[v] = 1
        else:
            node_index[v] = next_index
            next_index += 1
    bridge_base = next_index
    network = FlowNetwork(bridge_base + 2 * hypergraph.num_nets)
    for net_id, pins in enumerate(hypergraph.nets()):
        n1 = bridge_base + 2 * net_id
        n2 = n1 + 1
        network.add_edge(n1, n2, hypergraph.net_capacity(net_id))
        for v in pins:
            index = node_index[v]
            network.add_edge(index, n1, _INF)
            network.add_edge(n2, index, _INF)
    return network, 0, 1


def fbb_bipartition(
    hypergraph: Hypergraph,
    min_size0: float,
    max_size0: float,
    seed_s: Optional[int] = None,
    seed_t: Optional[int] = None,
    rng: Optional[random.Random] = None,
    max_rounds: Optional[int] = None,
) -> FBBResult:
    """Balanced min-net-cut bipartition by repeated max-flow.

    ``side0`` grows from ``seed_s`` (random if omitted); the complement
    holds ``seed_t``.  After each max-flow, if the source side is smaller
    than ``min_size0`` it is collapsed into the source together with one
    boundary node (the FBB repair move); symmetrically for an oversized
    source side.  Terminates when the side lands in the window or the
    round budget is exhausted (then raises :class:`PartitionError`).
    """
    rng = rng or random.Random(0)
    n = hypergraph.num_nodes
    if n < 2:
        raise PartitionError("FBB needs at least two nodes")
    total = hypergraph.total_size()
    if max_size0 >= total:
        raise PartitionError("side-0 bound swallows the whole netlist")
    if seed_s is None or seed_t is None:
        candidates = list(range(n))
        rng.shuffle(candidates)
        seed_s = candidates[0] if seed_s is None else seed_s
        seed_t = next(v for v in candidates if v != seed_s) \
            if seed_t is None else seed_t
    if seed_s == seed_t:
        raise PartitionError("source and sink seeds must differ")

    merged_s: Set[int] = {seed_s}
    merged_t: Set[int] = {seed_t}
    rounds = 0
    budget = max_rounds if max_rounds is not None else 2 * n

    while rounds < budget:
        rounds += 1
        network, source, sink = _build_network(hypergraph, merged_s, merged_t)
        network.max_flow(source, sink)
        reachable = network.min_cut_side(source)
        # Real nodes on the source side of the min cut.
        node_index = {}
        next_index = 2
        for v in range(n):
            if v in merged_s:
                node_index[v] = 0
            elif v in merged_t:
                node_index[v] = 1
            else:
                node_index[v] = next_index
                next_index += 1
        side0 = {
            v
            for v in range(n)
            if node_index[v] == 0 or node_index[v] in reachable
        }
        size0 = hypergraph.total_size(side0)

        if min_size0 - 1e-9 <= size0 <= max_size0 + 1e-9:
            cut = hypergraph.cut_capacity(side0)
            return FBBResult(
                side0=sorted(side0), cut_capacity=cut, flow_rounds=rounds
            )
        if size0 < min_size0:
            # Collapse the whole side into the source plus one boundary
            # node from across the cut (FBB's repair move).
            merged_s = set(side0)
            extra = _boundary_node(hypergraph, side0, exclude=merged_t, rng=rng)
            if extra is None:
                break
            merged_s.add(extra)
        else:
            complement = set(range(n)) - side0
            merged_t = set(complement)
            extra = _boundary_node(
                hypergraph, complement, exclude=merged_s, rng=rng
            )
            if extra is None:
                break
            merged_t.add(extra)
        if merged_s & merged_t:
            break
    raise PartitionError(
        f"FBB could not reach the window [{min_size0:g}, {max_size0:g}] "
        f"in {rounds} flow rounds"
    )


def _boundary_node(
    hypergraph: Hypergraph,
    side: Set[int],
    exclude: Set[int],
    rng: random.Random,
) -> Optional[int]:
    """A node just outside ``side`` (not excluded), random among nearest."""
    candidates = set()
    for v in side:
        for net_id in hypergraph.incident_nets(v):
            for u in hypergraph.net(net_id):
                if u not in side and u not in exclude:
                    candidates.add(u)
    if not candidates:
        remaining = set(hypergraph.nodes()) - side - exclude
        if not remaining:
            return None
        return rng.choice(sorted(remaining))
    return rng.choice(sorted(candidates))
