"""repro — reproduction of Kuo & Cheng, "A Network Flow Approach for
Hierarchical Tree Partitioning" (DAC 1997).

Public API quick tour::

    from repro import (
        Hypergraph, binary_hierarchy, flow_htp, FlowHTPConfig,
        gfm_partition, rfm_partition, htp_fm_improve, total_cost,
    )

    netlist = ...                        # a Hypergraph
    spec = binary_hierarchy(netlist.total_size(), height=4)
    result = flow_htp(netlist, spec)     # the paper's FLOW algorithm
    print(result.cost)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
reproduced tables and figures.
"""

from repro.errors import (
    ConvergenceError,
    HierarchyError,
    HypergraphError,
    InfeasibleError,
    PartitionError,
    ReproError,
)
from repro.hypergraph import (
    Graph,
    Hypergraph,
    clique_expansion,
    cycle_expansion,
    figure2_graph,
    figure2_hypergraph,
    iscas85_surrogate,
    planted_hierarchy_hypergraph,
    random_hypergraph,
    star_expansion,
    to_graph,
)
from repro.htp import (
    HierarchySpec,
    IncrementalCost,
    PartitionTree,
    binary_hierarchy,
    check_partition,
    net_cost,
    net_span,
    total_cost,
)
from repro.core import (
    FlowHTPConfig,
    FlowHTPResult,
    LPResult,
    ParallelConfig,
    SpreadingMetricConfig,
    SpreadingMetricResult,
    SpreadingOracle,
    compute_spreading_metric,
    construct_partition,
    find_cut,
    flow_htp,
    solve_spreading_lp,
    spreading_bound,
)
from repro.partitioning import (
    FMConfig,
    HTPFMConfig,
    fm_bipartition,
    fm_refine,
    gfm_partition,
    htp_fm_improve,
    random_partition,
    recursive_bisection,
    rfm_partition,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "HypergraphError",
    "HierarchyError",
    "InfeasibleError",
    "PartitionError",
    "ConvergenceError",
    "Hypergraph",
    "Graph",
    "clique_expansion",
    "cycle_expansion",
    "star_expansion",
    "to_graph",
    "figure2_graph",
    "figure2_hypergraph",
    "iscas85_surrogate",
    "planted_hierarchy_hypergraph",
    "random_hypergraph",
    "HierarchySpec",
    "binary_hierarchy",
    "PartitionTree",
    "IncrementalCost",
    "net_cost",
    "net_span",
    "total_cost",
    "check_partition",
    "spreading_bound",
    "SpreadingOracle",
    "SpreadingMetricConfig",
    "SpreadingMetricResult",
    "compute_spreading_metric",
    "construct_partition",
    "find_cut",
    "FlowHTPConfig",
    "FlowHTPResult",
    "flow_htp",
    "ParallelConfig",
    "LPResult",
    "solve_spreading_lp",
    "FMConfig",
    "fm_bipartition",
    "fm_refine",
    "recursive_bisection",
    "gfm_partition",
    "rfm_partition",
    "HTPFMConfig",
    "htp_fm_improve",
    "random_partition",
    "__version__",
]
