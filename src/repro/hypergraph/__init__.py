"""Hypergraph (netlist) and graph substrate.

This package models circuits the way the paper does: a netlist is a
hypergraph ``H = (V, E)`` whose nodes carry sizes ``s(v)`` and whose nets
(hyperedges) carry capacities ``c(e)``.  Weighted graphs (used by the
spreading-metric machinery) live in :mod:`repro.hypergraph.graph`, and the
net models that turn a netlist into a graph live in
:mod:`repro.hypergraph.expansion`.
"""

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.graph import Graph
from repro.hypergraph.expansion import (
    clique_expansion,
    cycle_expansion,
    star_expansion,
    to_graph,
)
from repro.hypergraph.bench_format import read_bench, write_bench
from repro.hypergraph.generators import (
    datapath_hypergraph,
    figure2_graph,
    figure2_hypergraph,
    grid_hypergraph,
    iscas85_surrogate,
    ISCAS85_SIZES,
    multiplier_array_hypergraph,
    planted_hierarchy_hypergraph,
    random_hypergraph,
)

__all__ = [
    "Hypergraph",
    "Graph",
    "clique_expansion",
    "cycle_expansion",
    "star_expansion",
    "to_graph",
    "read_bench",
    "write_bench",
    "datapath_hypergraph",
    "figure2_graph",
    "figure2_hypergraph",
    "grid_hypergraph",
    "iscas85_surrogate",
    "ISCAS85_SIZES",
    "multiplier_array_hypergraph",
    "planted_hierarchy_hypergraph",
    "random_hypergraph",
]
