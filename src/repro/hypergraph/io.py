"""Netlist I/O: hMETIS ``.hgr`` format and a JSON container.

The hMETIS format is the lingua franca of circuit-partitioning tools:

* first line: ``<#nets> <#nodes> [fmt]`` where ``fmt`` is 1 (net weights),
  10 (node weights) or 11 (both);
* one line per net: ``[weight] pin pin ...`` with 1-based node ids;
* if node weights are present, one trailing line per node.

Comment lines starting with ``%`` are ignored.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from repro.errors import HypergraphError
from repro.hypergraph.hypergraph import Hypergraph

PathLike = Union[str, Path]


def write_hgr(hypergraph: Hypergraph, path: PathLike) -> None:
    """Write ``hypergraph`` in hMETIS format (weights included when non-unit)."""
    has_net_weights = any(c != 1.0 for c in hypergraph.net_capacities())
    has_node_weights = any(s != 1.0 for s in hypergraph.node_sizes())
    fmt = (1 if has_net_weights else 0) + (10 if has_node_weights else 0)
    lines: List[str] = []
    header = f"{hypergraph.num_nets} {hypergraph.num_nodes}"
    if fmt:
        header += f" {fmt}"
    lines.append(header)
    for net_id, pins in enumerate(hypergraph.nets()):
        parts: List[str] = []
        if has_net_weights:
            parts.append(_format_weight(hypergraph.net_capacity(net_id)))
        parts.extend(str(v + 1) for v in pins)
        lines.append(" ".join(parts))
    if has_node_weights:
        for v in hypergraph.nodes():
            lines.append(_format_weight(hypergraph.node_size(v)))
    Path(path).write_text("\n".join(lines) + "\n")


def read_hgr(path: PathLike, name: str = "") -> Hypergraph:
    """Read an hMETIS-format netlist."""
    raw_lines = Path(path).read_text().splitlines()
    lines = [ln.strip() for ln in raw_lines if ln.strip() and not ln.startswith("%")]
    if not lines:
        raise HypergraphError(f"{path}: empty hMETIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise HypergraphError(f"{path}: malformed header {lines[0]!r}")
    num_nets, num_nodes = int(header[0]), int(header[1])
    fmt = int(header[2]) if len(header) > 2 else 0
    has_net_weights = fmt in (1, 11)
    has_node_weights = fmt in (10, 11)
    expected = 1 + num_nets + (num_nodes if has_node_weights else 0)
    if len(lines) < expected:
        raise HypergraphError(
            f"{path}: expected {expected} non-comment lines, got {len(lines)}"
        )
    nets: List[List[int]] = []
    capacities: List[float] = []
    for line in lines[1 : 1 + num_nets]:
        tokens = line.split()
        if has_net_weights:
            capacities.append(float(tokens[0]))
            tokens = tokens[1:]
        nets.append([int(tok) - 1 for tok in tokens])
    sizes = None
    if has_node_weights:
        sizes = [float(lines[1 + num_nets + v]) for v in range(num_nodes)]
    return Hypergraph(
        num_nodes=num_nodes,
        nets=nets,
        node_sizes=sizes,
        net_capacities=capacities if has_net_weights else None,
        name=name or Path(path).stem,
    )


def write_json(hypergraph: Hypergraph, path: PathLike) -> None:
    """Write the netlist as a self-describing JSON document."""
    doc = {
        "name": hypergraph.name,
        "num_nodes": hypergraph.num_nodes,
        "node_sizes": list(hypergraph.node_sizes()),
        "node_names": [hypergraph.node_name(v) for v in hypergraph.nodes()],
        "nets": [list(pins) for pins in hypergraph.nets()],
        "net_capacities": list(hypergraph.net_capacities()),
    }
    Path(path).write_text(json.dumps(doc, indent=1))


def read_json(path: PathLike) -> Hypergraph:
    """Read a netlist written by :func:`write_json`."""
    doc = json.loads(Path(path).read_text())
    try:
        return Hypergraph(
            num_nodes=doc["num_nodes"],
            nets=doc["nets"],
            node_sizes=doc.get("node_sizes"),
            net_capacities=doc.get("net_capacities"),
            node_names=doc.get("node_names"),
            name=doc.get("name", ""),
        )
    except KeyError as exc:
        raise HypergraphError(f"{path}: missing field {exc}") from exc


def _format_weight(value: float) -> str:
    """Render a weight as an int when it is integral (hMETIS style)."""
    return str(int(value)) if float(value).is_integer() else repr(value)
