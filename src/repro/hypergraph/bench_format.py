"""ISCAS ``.bench`` netlist format.

The ISCAS85 circuits the paper evaluates on are distributed as
``.bench`` files::

    # comment
    INPUT(G1)
    OUTPUT(G22)
    G10 = NAND(G1, G3)
    G22 = NOT(G10)

Reading builds a :class:`Hypergraph` with one node per gate or primary
input and one net per *signal*: the driver plus every gate that reads it
(single-fanout-to-nowhere signals produce no net).  Writing emits a
``.bench`` file from a netlist whose nets are interpreted as
driver-plus-loads (the first pin of each net is taken as the driver);
round-tripping a parsed file reproduces the connectivity exactly.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.errors import HypergraphError
from repro.hypergraph.hypergraph import Hypergraph

PathLike = Union[str, Path]

_GATE_RE = re.compile(
    r"^(?P<out>[\w.\[\]]+)\s*=\s*(?P<func>\w+)\s*\((?P<ins>[^)]*)\)\s*$"
)
_IO_RE = re.compile(r"^(?P<kind>INPUT|OUTPUT)\s*\((?P<sig>[\w.\[\]]+)\)\s*$")

#: Gate functions accepted when parsing (anything else raises).
KNOWN_FUNCTIONS = {
    "AND",
    "NAND",
    "OR",
    "NOR",
    "XOR",
    "XNOR",
    "NOT",
    "BUF",
    "BUFF",
    "DFF",
}


def read_bench(path: PathLike, name: str = "") -> Hypergraph:
    """Parse a ``.bench`` file into a netlist.

    Nodes are primary inputs and gates; nets connect each signal's driver
    to its readers.  Gate functions are validated against
    :data:`KNOWN_FUNCTIONS` but otherwise ignored (partitioning does not
    care about logic).
    """
    text = Path(path).read_text()
    inputs: List[str] = []
    outputs: List[str] = []
    gates: List[Tuple[str, str, List[str]]] = []  # (out, func, ins)
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            if io_match.group("kind") == "INPUT":
                inputs.append(io_match.group("sig"))
            else:
                outputs.append(io_match.group("sig"))
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            func = gate_match.group("func").upper()
            if func not in KNOWN_FUNCTIONS:
                raise HypergraphError(
                    f"{path}:{line_number}: unknown gate function {func!r}"
                )
            ins = [
                token.strip()
                for token in gate_match.group("ins").split(",")
                if token.strip()
            ]
            if not ins:
                raise HypergraphError(
                    f"{path}:{line_number}: gate with no inputs"
                )
            gates.append((gate_match.group("out"), func, ins))
            continue
        raise HypergraphError(f"{path}:{line_number}: cannot parse {raw!r}")

    if not inputs and not gates:
        raise HypergraphError(f"{path}: no inputs or gates found")

    # Node ids: primary inputs first, then gates, in file order.
    node_of: Dict[str, int] = {}
    node_names: List[str] = []
    for signal in inputs:
        if signal in node_of:
            raise HypergraphError(f"{path}: duplicate INPUT({signal})")
        node_of[signal] = len(node_names)
        node_names.append(signal)
    for out, _func, _ins in gates:
        if out in node_of:
            raise HypergraphError(f"{path}: signal {out} driven twice")
        node_of[out] = len(node_names)
        node_names.append(out)

    # Nets: driver + readers per signal.
    readers: Dict[str, List[int]] = {}
    for out, _func, ins in gates:
        for signal in ins:
            if signal not in node_of:
                raise HypergraphError(
                    f"{path}: gate {out} reads undriven signal {signal}"
                )
            readers.setdefault(signal, []).append(node_of[out])
    nets: List[Tuple[int, ...]] = []
    for signal, loads in readers.items():
        pins = sorted({node_of[signal], *loads})
        if len(pins) >= 2:
            nets.append(tuple(pins))
    nets.sort()
    return Hypergraph(
        num_nodes=len(node_names),
        nets=nets,
        node_names=node_names,
        name=name or Path(path).stem,
    )


def write_bench(hypergraph: Hypergraph, path: PathLike) -> None:
    """Write a netlist as a ``.bench`` file.

    Nodes without any net where they appear as the first pin become
    primary inputs; every other node becomes a pseudo-gate whose inputs
    are the drivers of the nets it loads.  Logic functions are emitted as
    ``NAND`` (partition-equivalent placeholder); nodes driving nothing
    are declared as OUTPUTs so the file is well-formed.
    """
    driver_of_net: List[int] = [pins[0] for pins in hypergraph.nets()]
    inputs_of_node: Dict[int, List[str]] = {}
    for net_id, pins in enumerate(hypergraph.nets()):
        driver = driver_of_net[net_id]
        for v in pins:
            if v != driver:
                inputs_of_node.setdefault(v, []).append(
                    hypergraph.node_name(driver)
                )
    lines: List[str] = [f"# generated by repro: {hypergraph.name or 'netlist'}"]
    gate_nodes = sorted(inputs_of_node)
    input_nodes = [v for v in hypergraph.nodes() if v not in inputs_of_node]
    for v in input_nodes:
        lines.append(f"INPUT({hypergraph.node_name(v)})")
    driven = {driver_of_net[e] for e in range(hypergraph.num_nets)}
    for v in hypergraph.nodes():
        if v not in driven and v in inputs_of_node:
            lines.append(f"OUTPUT({hypergraph.node_name(v)})")
    for v in gate_nodes:
        ins = ", ".join(inputs_of_node[v])
        lines.append(f"{hypergraph.node_name(v)} = NAND({ins})")
    Path(path).write_text("\n".join(lines) + "\n")
