"""Weighted undirected graphs with node sizes and edge capacities.

The spreading-metric machinery (Algorithm 2 / 3 of the paper) operates on a
graph ``G = (V, E)`` whose edges carry capacities ``c(e)`` and, during the
flow computation, mutable lengths ``d(e)`` and flows ``f(e)``.  The class
keeps a CSR (compressed sparse row) cache so that the fast
``scipy.sparse.csgraph`` Dijkstra path can mutate edge weights in place.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import HypergraphError


class Graph:
    """An undirected multigraph with sized nodes and capacitated edges.

    Parallel edges are merged at construction time by summing capacities —
    this matches how a clique expansion accumulates weight between a node
    pair covered by several nets.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``0..num_nodes-1``.
    edges:
        Iterable of ``(u, v)`` or ``(u, v, capacity)`` tuples, ``u != v``.
    node_sizes:
        Optional node sizes (default unit).
    name:
        Optional label.
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Sequence[float]],
        node_sizes: Optional[Sequence[float]] = None,
        name: str = "",
    ) -> None:
        if num_nodes <= 0:
            raise HypergraphError("a graph needs at least one node")
        self._num_nodes = int(num_nodes)
        self.name = name

        merged: Dict[Tuple[int, int], float] = {}
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                cap = 1.0
            else:
                u, v, cap = edge  # type: ignore[misc]
            u, v = int(u), int(v)
            if u == v:
                raise HypergraphError(f"self-loop ({u},{v}) not allowed")
            if not (0 <= u < self._num_nodes and 0 <= v < self._num_nodes):
                raise HypergraphError(f"edge ({u},{v}) out of range")
            cap = float(cap)
            if cap <= 0:
                raise HypergraphError("edge capacities must be positive")
            key = (u, v) if u < v else (v, u)
            merged[key] = merged.get(key, 0.0) + cap

        self._edges: List[Tuple[int, int]] = sorted(merged)
        self._capacities = np.array(
            [merged[key] for key in self._edges], dtype=float
        )

        if node_sizes is None:
            self._node_sizes = np.ones(self._num_nodes, dtype=float)
        else:
            self._node_sizes = np.asarray(node_sizes, dtype=float)
            if self._node_sizes.shape != (self._num_nodes,):
                raise HypergraphError("node_sizes length != num_nodes")
            if np.any(self._node_sizes <= 0):
                raise HypergraphError("node sizes must be positive")

        # Adjacency: node -> list of (neighbor, edge_id)
        adjacency: List[List[Tuple[int, int]]] = [
            [] for _ in range(self._num_nodes)
        ]
        for edge_id, (u, v) in enumerate(self._edges):
            adjacency[u].append((v, edge_id))
            adjacency[v].append((u, edge_id))
        self._adjacency: List[Tuple[Tuple[int, int], ...]] = [
            tuple(lst) for lst in adjacency
        ]

        self._csr_cache: Optional[Tuple[object, np.ndarray]] = None
        self._csr_weights_token = 0
        self._endpoints: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle without the derived caches.

        The CSR cache may be backed by ``multiprocessing.shared_memory``
        (the parallel engine installs shared views in place) and must not
        travel with the pickle; workers rebuild or re-attach their own.
        """
        state = self.__dict__.copy()
        state["_csr_cache"] = None
        state["_csr_weights_token"] = 0
        state["_endpoints"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of (merged) edges."""
        return len(self._edges)

    def nodes(self) -> range:
        """All node ids."""
        return range(self._num_nodes)

    def edges(self) -> List[Tuple[int, int]]:
        """All edges as sorted ``(u, v)`` pairs with ``u < v`` (do not mutate)."""
        return self._edges

    def edge(self, edge_id: int) -> Tuple[int, int]:
        """Endpoints of edge ``edge_id``."""
        return self._edges[edge_id]

    def capacity(self, edge_id: int) -> float:
        """Capacity ``c(e)`` of edge ``edge_id``."""
        return float(self._capacities[edge_id])

    def capacities(self) -> np.ndarray:
        """Capacity vector indexed by edge id (do not mutate)."""
        return self._capacities

    def node_size(self, v: int) -> float:
        """Size ``s(v)``."""
        return float(self._node_sizes[v])

    def node_sizes(self) -> np.ndarray:
        """Node-size vector (do not mutate)."""
        return self._node_sizes

    def total_size(self, subset: Optional[Iterable[int]] = None) -> float:
        """Total size of ``subset`` (whole node set if None)."""
        if subset is None:
            return float(self._node_sizes.sum())
        return float(sum(self._node_sizes[v] for v in subset))

    def neighbors(self, v: int) -> Tuple[Tuple[int, int], ...]:
        """Tuples ``(neighbor, edge_id)`` incident to ``v``."""
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        """Number of incident edges."""
        return len(self._adjacency[v])

    def edge_id(self, u: int, v: int) -> Optional[int]:
        """Edge id between ``u`` and ``v``, or None if absent."""
        for neighbor, edge_id in self._adjacency[u]:
            if neighbor == v:
                return edge_id
        return None

    def edge_endpoints(self) -> np.ndarray:
        """All edges as an ``(num_edges, 2)`` int array (do not mutate).

        Row ``e`` holds the endpoints ``(u, v)`` with ``u < v`` of edge
        ``e`` — the vectorised counterpart of :meth:`edge`, used by the
        batched spreading engine to test dirty edges against
        predecessor arrays without a Python loop.
        """
        if self._endpoints is None:
            self._endpoints = np.array(self._edges, dtype=np.int64).reshape(
                len(self._edges), 2
            )
        return self._endpoints

    # ------------------------------------------------------------------
    # CSR view for scipy.sparse.csgraph
    # ------------------------------------------------------------------
    def csr_structure(self) -> Tuple[object, np.ndarray]:
        """A CSR matrix of the graph plus the edge-id -> data-slot mapping.

        Returns ``(matrix, slots)`` where ``matrix`` is a
        ``scipy.sparse.csr_matrix`` whose ``data`` array can be mutated in
        place, and ``slots`` is an ``(num_edges, 2)`` integer array giving
        the two positions in ``matrix.data`` that hold each (undirected)
        edge's weight.  Weights are initialised to the edge capacities;
        callers overwrite them with metric lengths.
        """
        if self._csr_cache is None:
            from scipy.sparse import csr_matrix

            rows: List[int] = []
            cols: List[int] = []
            edge_of_entry: List[int] = []
            for edge_id, (u, v) in enumerate(self._edges):
                rows.append(u)
                cols.append(v)
                edge_of_entry.append(edge_id)
                rows.append(v)
                cols.append(u)
                edge_of_entry.append(edge_id)
            data = np.ones(len(rows), dtype=float)
            matrix = csr_matrix(
                (data, (np.array(rows), np.array(cols))),
                shape=(self._num_nodes, self._num_nodes),
            )
            # Map each edge to its two slots in matrix.data.  csr_matrix
            # construction sorts entries by (row, col); recover positions by
            # scanning the structure.
            slots = np.empty((len(self._edges), 2), dtype=np.int64)
            seen = np.zeros(len(self._edges), dtype=np.int64)
            indptr, indices = matrix.indptr, matrix.indices
            pair_to_edge = {
                pair: edge_id for edge_id, pair in enumerate(self._edges)
            }
            for row in range(self._num_nodes):
                for pos in range(indptr[row], indptr[row + 1]):
                    col = int(indices[pos])
                    key = (row, col) if row < col else (col, row)
                    edge_id = pair_to_edge[key]
                    slots[edge_id, seen[edge_id]] = pos
                    seen[edge_id] += 1
            self._csr_cache = (matrix, slots)
        matrix, slots = self._csr_cache
        return matrix, slots

    def adopt_csr_cache(self, matrix: object, slots: np.ndarray) -> None:
        """Install an externally built CSR cache (the worker attach path).

        ``matrix`` must be a ``scipy.sparse.csr_matrix`` of this graph's
        structure and ``slots`` the edge-id -> data-slot mapping of
        :meth:`csr_structure`.  Pool workers use this to point the graph
        at a ``multiprocessing.shared_memory``-backed ``data`` array so
        the coordinator's in-place weight patches are visible to every
        worker without any per-dispatch broadcast.
        """
        self._csr_cache = (matrix, np.asarray(slots, dtype=np.int64))

    @property
    def csr_weights_token(self) -> int:
        """Generation counter of the CSR ``data`` array.

        Incremented by every :meth:`set_csr_weights` /
        :meth:`update_csr_weights` write.  Callers that cache "my weights
        are installed" state (the spreading oracle) compare tokens to
        detect that another writer has clobbered the shared cache and a
        full re-install is needed.
        """
        return self._csr_weights_token

    def set_csr_weights(self, weights: np.ndarray) -> object:
        """Write per-edge ``weights`` into the cached CSR matrix and return it."""
        matrix, slots = self.csr_structure()
        data = matrix.data  # type: ignore[attr-defined]
        data[slots[:, 0]] = weights
        data[slots[:, 1]] = weights
        self._csr_weights_token += 1
        return matrix

    def update_csr_weights(self, edge_ids: np.ndarray, values: np.ndarray) -> object:
        """Overwrite the CSR weights of ``edge_ids`` only, in place.

        The incremental counterpart of :meth:`set_csr_weights`: after a
        flow injection touches ``k`` edges, only their ``2k`` data slots
        are rewritten instead of all ``2m`` — the per-injection cost of
        keeping the Dijkstra matrix current drops from O(m) to O(k).
        When the cached ``data`` array lives in shared memory (see
        :meth:`adopt_csr_cache`), these writes are exactly the dirty
        ``(edge_id, value)`` pairs the pool workers observe.

        Parameters
        ----------
        edge_ids : numpy.ndarray of int
            Edge ids whose weights changed.
        values : numpy.ndarray of float
            New weights, parallel to ``edge_ids``.

        Returns
        -------
        scipy.sparse.csr_matrix
            The cached matrix with the patched ``data`` array.  The
            weights token (:attr:`csr_weights_token`) is bumped so other
            cached-weight owners can detect the write.
        """
        matrix, slots = self.csr_structure()
        data = matrix.data  # type: ignore[attr-defined]
        touched = slots[edge_ids]
        data[touched[:, 0]] = values
        data[touched[:, 1]] = values
        self._csr_weights_token += 1
        return matrix

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[int]) -> Tuple["Graph", Dict[int, int]]:
        """Induced subgraph plus the old->new node-id mapping."""
        kept = sorted(set(int(v) for v in nodes))
        if not kept:
            raise HypergraphError("cannot induce a subgraph on no nodes")
        old_to_new = {old: new for new, old in enumerate(kept)}
        sub_edges = []
        for edge_id, (u, v) in enumerate(self._edges):
            if u in old_to_new and v in old_to_new:
                sub_edges.append(
                    (old_to_new[u], old_to_new[v], float(self._capacities[edge_id]))
                )
        sub = Graph(
            num_nodes=len(kept),
            edges=sub_edges,
            node_sizes=[float(self._node_sizes[v]) for v in kept],
            name=self.name + "#sub" if self.name else "",
        )
        return sub, old_to_new

    def to_networkx(self):  # pragma: no cover - convenience bridge
        """The graph as a :class:`networkx.Graph` (capacity as 'capacity')."""
        import networkx as nx

        nx_graph = nx.Graph()
        for v in range(self._num_nodes):
            nx_graph.add_node(v, size=float(self._node_sizes[v]))
        for edge_id, (u, v) in enumerate(self._edges):
            nx_graph.add_edge(u, v, capacity=float(self._capacities[edge_id]))
        return nx_graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "Graph"
        return f"<{label}: {self.num_nodes} nodes, {self.num_edges} edges>"
