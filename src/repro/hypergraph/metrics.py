"""Summary statistics of netlists and graphs (Table 1 support)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hypergraph.graph import Graph
from repro.hypergraph.hypergraph import Hypergraph


@dataclass(frozen=True)
class NetlistStats:
    """The size statistics reported in Table 1, plus a few extras."""

    name: str
    num_nodes: int
    num_nets: int
    num_pins: int
    total_size: float
    max_net_size: int
    avg_net_size: float
    max_degree: int
    avg_degree: float


def netlist_stats(hypergraph: Hypergraph) -> NetlistStats:
    """Compute :class:`NetlistStats` for a netlist."""
    net_sizes = [len(pins) for pins in hypergraph.nets()]
    degrees = [hypergraph.degree(v) for v in hypergraph.nodes()]
    return NetlistStats(
        name=hypergraph.name or "netlist",
        num_nodes=hypergraph.num_nodes,
        num_nets=hypergraph.num_nets,
        num_pins=hypergraph.num_pins,
        total_size=hypergraph.total_size(),
        max_net_size=max(net_sizes) if net_sizes else 0,
        avg_net_size=(sum(net_sizes) / len(net_sizes)) if net_sizes else 0.0,
        max_degree=max(degrees) if degrees else 0,
        avg_degree=(sum(degrees) / len(degrees)) if degrees else 0.0,
    )


def connected_components(graph: Graph) -> List[List[int]]:
    """Connected components of a graph (iterative DFS; no recursion limit)."""
    seen = [False] * graph.num_nodes
    components: List[List[int]] = []
    for start in graph.nodes():
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        component = []
        while stack:
            v = stack.pop()
            component.append(v)
            for neighbor, _edge_id in graph.neighbors(v):
                if not seen[neighbor]:
                    seen[neighbor] = True
                    stack.append(neighbor)
        components.append(sorted(component))
    return components


def is_connected(graph: Graph) -> bool:
    """True when the graph has a single connected component."""
    return len(connected_components(graph)) == 1
