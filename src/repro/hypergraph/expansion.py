"""Net models: turning a netlist (hypergraph) into a weighted graph.

The paper formulates the LP and the flow computation on graphs and notes the
algorithm "can be easily extended for the general HTP problem on
hypergraphs".  The standard way to do that in partitioning practice is a
*net model*: each net is replaced by a set of graph edges whose total
capacity approximates the net's contribution to any cut.

Three models are provided:

* ``clique`` — every pin pair gets an edge of capacity ``c(e) / (|e| - 1)``,
  the classic normalisation that makes any bipartition of the net cost at
  least ``c(e)``.  Quadratic in net size, so large nets fall back to the
  cycle model (threshold configurable).
* ``cycle`` — pins are connected in a random cycle with capacity ``c(e)``
  per edge; linear in net size.
* ``star`` — a virtual star-centre node of zero-ish size is added per net
  with spokes of capacity ``c(e)``; exact for cut counting but changes the
  node set, so it is used for analysis rather than partition construction.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.errors import HypergraphError
from repro.hypergraph.graph import Graph
from repro.hypergraph.hypergraph import Hypergraph

#: Nets with more pins than this use the cycle model inside clique expansion.
DEFAULT_CLIQUE_THRESHOLD = 8

#: Size given to virtual star-centre nodes (must be positive for the size
#: machinery; small enough not to disturb block size accounting noticeably).
STAR_CENTER_SIZE = 1e-9


def clique_expansion(
    hypergraph: Hypergraph,
    clique_threshold: int = DEFAULT_CLIQUE_THRESHOLD,
    rng: Optional[random.Random] = None,
) -> Graph:
    """Clique net model with a cycle fallback for large nets.

    Each net ``e`` with ``|e| <= clique_threshold`` contributes edges
    ``(u, v, c(e) / (|e| - 1))`` for every pin pair; larger nets contribute
    a random cycle over their pins with per-edge capacity ``c(e)``.
    Parallel contributions between the same node pair are merged by the
    :class:`Graph` constructor.
    """
    rng = rng or random.Random(0)
    edges: List[Tuple[int, int, float]] = []
    for net_id, pins in enumerate(hypergraph.nets()):
        cap = hypergraph.net_capacity(net_id)
        k = len(pins)
        if k <= clique_threshold:
            weight = cap / (k - 1)
            for i in range(k):
                for j in range(i + 1, k):
                    edges.append((pins[i], pins[j], weight))
        else:
            order = list(pins)
            rng.shuffle(order)
            for i in range(k):
                edges.append((order[i], order[(i + 1) % k], cap))
    return Graph(
        num_nodes=hypergraph.num_nodes,
        edges=edges,
        node_sizes=hypergraph.node_sizes(),
        name=hypergraph.name + "#clique" if hypergraph.name else "",
    )


def cycle_expansion(
    hypergraph: Hypergraph, rng: Optional[random.Random] = None
) -> Graph:
    """Pure cycle net model: every net becomes a random cycle over its pins."""
    rng = rng or random.Random(0)
    edges: List[Tuple[int, int, float]] = []
    for net_id, pins in enumerate(hypergraph.nets()):
        cap = hypergraph.net_capacity(net_id)
        k = len(pins)
        if k == 2:
            edges.append((pins[0], pins[1], cap))
            continue
        order = list(pins)
        rng.shuffle(order)
        for i in range(k):
            edges.append((order[i], order[(i + 1) % k], cap))
    return Graph(
        num_nodes=hypergraph.num_nodes,
        edges=edges,
        node_sizes=hypergraph.node_sizes(),
        name=hypergraph.name + "#cycle" if hypergraph.name else "",
    )


def star_expansion(hypergraph: Hypergraph) -> Tuple[Graph, List[int]]:
    """Star net model.

    Each net gets a virtual centre node (appended after the real nodes) and
    spokes of capacity ``c(e)``.  Returns the graph and the list of centre
    node ids (one per net, in net order).
    """
    num_real = hypergraph.num_nodes
    edges: List[Tuple[int, int, float]] = []
    centers: List[int] = []
    for net_id, pins in enumerate(hypergraph.nets()):
        center = num_real + net_id
        centers.append(center)
        cap = hypergraph.net_capacity(net_id)
        for v in pins:
            edges.append((v, center, cap))
    sizes = list(hypergraph.node_sizes()) + [STAR_CENTER_SIZE] * hypergraph.num_nets
    graph = Graph(
        num_nodes=num_real + hypergraph.num_nets,
        edges=edges,
        node_sizes=sizes,
        name=hypergraph.name + "#star" if hypergraph.name else "",
    )
    return graph, centers


def to_graph(
    hypergraph: Hypergraph,
    model: str = "clique",
    clique_threshold: int = DEFAULT_CLIQUE_THRESHOLD,
    rng: Optional[random.Random] = None,
) -> Graph:
    """Dispatch by net-model name (``clique`` | ``cycle``).

    The star model changes the node set, so it is deliberately not reachable
    from this convenience dispatcher; call :func:`star_expansion` directly
    when the centre bookkeeping is wanted.
    """
    if model == "clique":
        return clique_expansion(hypergraph, clique_threshold, rng)
    if model == "cycle":
        return cycle_expansion(hypergraph, rng)
    raise HypergraphError(f"unknown net model {model!r} (use 'clique' or 'cycle')")
