"""The hypergraph (netlist) model.

A :class:`Hypergraph` is the paper's ``H = (V, E)``: nodes ``0..n-1`` with
positive sizes ``s(v)`` and nets (hyperedges) that are node subsets of
cardinality at least 2 with positive capacities ``c(e)``.  The *pin count*
is the total cardinality of all nets — the ``#pins`` column of Table 1.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import HypergraphError


class Hypergraph:
    """An immutable-shape netlist with node sizes and net capacities.

    Parameters
    ----------
    num_nodes:
        Number of nodes; nodes are identified by integers ``0..num_nodes-1``.
    nets:
        Iterable of node-id collections.  Each net must contain at least two
        distinct nodes.  Duplicated pins within a net are collapsed.
    node_sizes:
        Optional per-node sizes ``s(v)`` (default: unit sizes).
    net_capacities:
        Optional per-net capacities ``c(e)`` (default: unit capacities).
    node_names:
        Optional human-readable node names (for I/O round-tripping).
    name:
        Optional instance name (e.g. ``"c2670"``).
    """

    def __init__(
        self,
        num_nodes: int,
        nets: Iterable[Sequence[int]],
        node_sizes: Optional[Sequence[float]] = None,
        net_capacities: Optional[Sequence[float]] = None,
        node_names: Optional[Sequence[str]] = None,
        name: str = "",
    ) -> None:
        if num_nodes <= 0:
            raise HypergraphError("a hypergraph needs at least one node")
        self._num_nodes = int(num_nodes)
        self.name = name

        self._nets: List[Tuple[int, ...]] = []
        for raw_net in nets:
            pins = tuple(sorted(set(int(v) for v in raw_net)))
            if len(pins) < 2:
                raise HypergraphError(
                    f"net {raw_net!r} has fewer than 2 distinct pins"
                )
            if pins[0] < 0 or pins[-1] >= self._num_nodes:
                raise HypergraphError(
                    f"net {raw_net!r} references a node outside 0..{num_nodes - 1}"
                )
            self._nets.append(pins)

        if node_sizes is None:
            self._node_sizes = [1.0] * self._num_nodes
        else:
            self._node_sizes = [float(s) for s in node_sizes]
            if len(self._node_sizes) != self._num_nodes:
                raise HypergraphError("node_sizes length != num_nodes")
            if any(s <= 0 for s in self._node_sizes):
                raise HypergraphError("node sizes must be positive")

        if net_capacities is None:
            self._net_capacities = [1.0] * len(self._nets)
        else:
            self._net_capacities = [float(c) for c in net_capacities]
            if len(self._net_capacities) != len(self._nets):
                raise HypergraphError("net_capacities length != number of nets")
            if any(c <= 0 for c in self._net_capacities):
                raise HypergraphError("net capacities must be positive")

        if node_names is None:
            self._node_names = [f"n{v}" for v in range(self._num_nodes)]
        else:
            self._node_names = [str(s) for s in node_names]
            if len(self._node_names) != self._num_nodes:
                raise HypergraphError("node_names length != num_nodes")

        # Incidence: node -> tuple of net ids, built once.
        incident: List[List[int]] = [[] for _ in range(self._num_nodes)]
        for net_id, pins in enumerate(self._nets):
            for v in pins:
                incident[v].append(net_id)
        self._incident: List[Tuple[int, ...]] = [tuple(lst) for lst in incident]

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|`` (the ``#nodes`` column of Table 1)."""
        return self._num_nodes

    @property
    def num_nets(self) -> int:
        """Number of nets ``|E|`` (the ``#nets`` column of Table 1)."""
        return len(self._nets)

    @property
    def num_pins(self) -> int:
        """Total pin count ``sum_e |e|`` (the ``#pins`` column of Table 1)."""
        return sum(len(pins) for pins in self._nets)

    def nodes(self) -> range:
        """All node ids."""
        return range(self._num_nodes)

    def net(self, net_id: int) -> Tuple[int, ...]:
        """The sorted pin tuple of net ``net_id``."""
        return self._nets[net_id]

    def nets(self) -> List[Tuple[int, ...]]:
        """All nets as a list of pin tuples (do not mutate)."""
        return self._nets

    def node_size(self, v: int) -> float:
        """Size ``s(v)`` of node ``v``."""
        return self._node_sizes[v]

    def node_sizes(self) -> List[float]:
        """All node sizes (do not mutate)."""
        return self._node_sizes

    def net_capacity(self, net_id: int) -> float:
        """Capacity ``c(e)`` of net ``net_id``."""
        return self._net_capacities[net_id]

    def net_capacities(self) -> List[float]:
        """All net capacities (do not mutate)."""
        return self._net_capacities

    def node_name(self, v: int) -> str:
        """Human-readable name of node ``v``."""
        return self._node_names[v]

    def incident_nets(self, v: int) -> Tuple[int, ...]:
        """Ids of nets containing node ``v``."""
        return self._incident[v]

    def degree(self, v: int) -> int:
        """Number of nets incident to ``v``."""
        return len(self._incident[v])

    def total_size(self, subset: Optional[Iterable[int]] = None) -> float:
        """Total node size ``s(V')`` of ``subset`` (whole node set if None)."""
        if subset is None:
            return sum(self._node_sizes)
        return sum(self._node_sizes[v] for v in subset)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def subhypergraph(
        self, nodes: Iterable[int]
    ) -> Tuple["Hypergraph", Dict[int, int]]:
        """The sub-netlist induced by ``nodes``.

        Nets are restricted to the kept pins; restricted nets with fewer
        than two pins are dropped (they can never be cut).  Returns the new
        hypergraph and the old-id -> new-id node mapping.
        """
        kept = sorted(set(int(v) for v in nodes))
        if not kept:
            raise HypergraphError("cannot induce a subhypergraph on no nodes")
        old_to_new = {old: new for new, old in enumerate(kept)}
        sub_nets: List[Tuple[int, ...]] = []
        sub_caps: List[float] = []
        for net_id, pins in enumerate(self._nets):
            restricted = [old_to_new[v] for v in pins if v in old_to_new]
            if len(restricted) >= 2:
                sub_nets.append(tuple(restricted))
                sub_caps.append(self._net_capacities[net_id])
        sub = Hypergraph(
            num_nodes=len(kept),
            nets=sub_nets,
            node_sizes=[self._node_sizes[v] for v in kept],
            net_capacities=sub_caps,
            node_names=[self._node_names[v] for v in kept],
            name=self.name + "#sub" if self.name else "",
        )
        return sub, old_to_new

    def cut_nets(self, side: Iterable[int]) -> List[int]:
        """Ids of nets with pins both inside and outside ``side``."""
        inside = set(side)
        cut = []
        for net_id, pins in enumerate(self._nets):
            count = sum(1 for v in pins if v in inside)
            if 0 < count < len(pins):
                cut.append(net_id)
        return cut

    def cut_capacity(self, side: Iterable[int]) -> float:
        """Total capacity of nets cut by the bipartition (side, rest)."""
        return sum(self._net_capacities[e] for e in self.cut_nets(side))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "Hypergraph"
        return (
            f"<{label}: {self.num_nodes} nodes, {self.num_nets} nets, "
            f"{self.num_pins} pins>"
        )
