"""Synthetic netlist generators.

The paper evaluates on five MCNC/ISCAS85 circuits (Table 1) that we do not
have offline, so :func:`iscas85_surrogate` builds synthetic stand-ins whose
node/net/pin counts match the published sizes and whose *structure* carries
the property that drives the paper's result shape:

* the four random-logic circuits (c1355, c2670, c3540, c7552) get a planted
  recursive cluster hierarchy — the structure a global spreading-metric
  method is designed to discover;
* c6288 (a 16x16 combinational multiplier) gets a regular 2-D
  multiplier-array structure with *no* cluster hierarchy — the known hard
  case for the paper's method (FLOW loses on c6288 in Table 2).

The module also provides the canonical Figure 2 instance (16 nodes,
30 edges) with its optimal partition, plus generic random/grid generators
used by tests and examples.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HypergraphError
from repro.hypergraph.graph import Graph
from repro.hypergraph.hypergraph import Hypergraph

#: Published (#nodes, #nets, #pins) of the ISCAS85 test cases of Table 1.
ISCAS85_SIZES: Dict[str, Tuple[int, int, int]] = {
    "c1355": (546, 579, 1417),
    "c2670": (1193, 1350, 3029),
    "c3540": (1669, 1719, 4184),
    "c6288": (2416, 2448, 7216),
    "c7552": (3512, 3719, 9099),
}

#: Net-size distribution matched to the ISCAS85 pins/nets ratio (~2.43).
_NET_SIZE_CHOICES: Sequence[int] = (2, 3, 4, 5)
_NET_SIZE_WEIGHTS: Sequence[float] = (0.70, 0.21, 0.06, 0.03)


# ----------------------------------------------------------------------
# Figure 2: the worked example of the paper
# ----------------------------------------------------------------------
def figure2_graph() -> Graph:
    """The 16-node, 30-edge graph of Figure 2 (unit sizes and capacities).

    Nodes 0..15 form four 4-cliques {0-3}, {4-7}, {8-11}, {12-15}.  Inside
    each level-1 block, the two cliques are joined by two edges (cut only at
    level 0, cost 2 each under ``C = (4, 8)``, ``w = (1, 2)``); the two
    level-1 blocks are joined by two edges (cut at levels 0 and 1, cost 6
    each).  Total edge count 4*6 + 4 + 2 = 30; optimal HTP cost
    4*2 + 2*6 = 20.
    """
    edges: List[Tuple[int, int]] = []
    for base in (0, 4, 8, 12):
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append((base + i, base + j))
    # Level-0-only cuts: two edges between cliques {0-3} and {4-7}, and two
    # between cliques {8-11} and {12-15}.
    edges += [(0, 4), (3, 7), (8, 12), (11, 15)]
    # Level-1 cuts: two edges between block {0-7} and block {8-15}.
    edges += [(1, 9), (6, 14)]
    return Graph(num_nodes=16, edges=edges, name="figure2")


def figure2_hypergraph() -> Hypergraph:
    """Figure 2 as a hypergraph (every edge is a 2-pin net)."""
    graph = figure2_graph()
    return Hypergraph(
        num_nodes=graph.num_nodes,
        nets=[(u, v) for u, v in graph.edges()],
        name="figure2",
    )


def figure2_optimal_blocks() -> List[List[int]]:
    """The four optimal level-0 blocks of the Figure 2 instance."""
    return [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15]]


# ----------------------------------------------------------------------
# Planted-hierarchy netlists (random-logic surrogates)
# ----------------------------------------------------------------------
def planted_hierarchy_hypergraph(
    num_nodes: int,
    num_nets: Optional[int] = None,
    height: int = 4,
    branching: int = 2,
    locality: Optional[Sequence[float]] = None,
    seed: int = 0,
    name: str = "",
    intra_span: Optional[int] = None,
) -> Hypergraph:
    """A netlist with a planted recursive cluster hierarchy.

    Nodes are assigned to the ``branching**height`` leaves of a complete
    tree.  Each net is anchored at a random driver node; its remaining pins
    are sampled from clusters at a tree distance drawn from ``locality``
    (index 0 = same leaf cluster, index ``h`` = clusters whose lowest common
    ancestor is ``h`` levels up).  Steeply decaying locality plants a strong
    hierarchy for partitioners to find.

    Parameters
    ----------
    num_nodes:
        Number of nodes (unit sizes).
    num_nets:
        Number of nets (default: ``round(1.06 * num_nodes)`` to match the
        ISCAS85 nets/nodes ratio).
    height, branching:
        Shape of the planted tree (default: binary of height 4, 16 leaves).
    locality:
        Probability of each tree distance 0..height (normalised internally).
        Default ``(0.75, 0.14, 0.06, 0.03, 0.02, ...)``.
    seed:
        Random seed (generation is deterministic given the seed).
    intra_span:
        When given, intra-cluster pins are drawn within ``±intra_span``
        index positions of the driver instead of uniformly over the
        cluster: clusters become sparse logic *chains* (the dominant
        texture of real combinational netlists, whose pins/net ratio is
        only ~2.4) rather than dense blobs.  None keeps blob clusters.
    """
    if num_nodes < branching**height:
        raise HypergraphError(
            f"need at least {branching ** height} nodes for a "
            f"{branching}-ary planted tree of height {height}"
        )
    rng = random.Random(seed)
    if num_nets is None:
        num_nets = round(1.06 * num_nodes)
    if locality is None:
        base = [0.75, 0.14, 0.06, 0.03]
        while len(base) < height + 1:
            base.append(base[-1] * 0.6)
        locality = base[: height + 1]
    weights = list(locality)
    total_weight = sum(weights)
    weights = [w / total_weight for w in weights]

    num_leaves = branching**height
    # Balanced node -> leaf-cluster assignment.
    cluster_of = [v * num_leaves // num_nodes for v in range(num_nodes)]
    members: List[List[int]] = [[] for _ in range(num_leaves)]
    for v, cluster in enumerate(cluster_of):
        members[cluster].append(v)

    def sample_cluster_at_distance(cluster: int, distance: int) -> int:
        """A leaf cluster whose LCA with ``cluster`` is ``distance`` levels up."""
        if distance == 0:
            return cluster
        block = branching**distance
        ancestor_base = (cluster // block) * block
        inner = branching ** (distance - 1)
        own_child = (cluster - ancestor_base) // inner
        other_children = [c for c in range(branching) if c != own_child]
        child = rng.choice(other_children)
        return ancestor_base + child * inner + rng.randrange(inner)

    position_in_cluster = {}
    for cluster_members in members:
        for position, v in enumerate(cluster_members):
            position_in_cluster[v] = position

    nets: List[Tuple[int, ...]] = []
    for net_index in range(num_nets):
        if net_index < num_nodes:
            driver = net_index  # every node drives one net first
        else:
            driver = rng.randrange(num_nodes)
        size = rng.choices(_NET_SIZE_CHOICES, weights=_NET_SIZE_WEIGHTS)[0]
        pins = {driver}
        guard = 0
        while len(pins) < size and guard < 50:
            guard += 1
            distance = rng.choices(range(len(weights)), weights=weights)[0]
            target_cluster = sample_cluster_at_distance(
                cluster_of[driver], distance
            )
            candidates = members[target_cluster]
            if not candidates:
                continue
            if distance == 0 and intra_span is not None:
                center = position_in_cluster[driver]
                offset = rng.randint(-intra_span, intra_span)
                position = max(0, min(len(candidates) - 1, center + offset))
                pins.add(candidates[position])
            else:
                pins.add(rng.choice(candidates))
        if len(pins) >= 2:
            nets.append(tuple(sorted(pins)))
    return Hypergraph(num_nodes=num_nodes, nets=nets, name=name or "planted")


# ----------------------------------------------------------------------
# Multiplier-array netlists (c6288 surrogate)
# ----------------------------------------------------------------------
def multiplier_array_hypergraph(
    num_nodes: int,
    width: int = 16,
    seed: int = 0,
    name: str = "",
) -> Hypergraph:
    """A regular 2-D array netlist shaped like a combinational multiplier.

    Cells are laid out in a ``rows x width`` array.  Each cell's output net
    feeds its right neighbour (carry) and the cell below (sum) — a 3-pin
    net — mirroring the carry-save adder array of c6288.  Operand
    distribution nets run along array diagonals.  The structure is
    deliberately regular with no cluster hierarchy.
    """
    if num_nodes < 2 * width:
        raise HypergraphError("multiplier array needs at least two rows")
    rng = random.Random(seed)
    rows = (num_nodes + width - 1) // width

    def cell(r: int, c: int) -> Optional[int]:
        v = r * width + c
        return v if v < num_nodes else None

    nets: List[Tuple[int, ...]] = []
    for r in range(rows):
        for c in range(width):
            source = cell(r, c)
            if source is None:
                continue
            pins = {source}
            right = cell(r, c + 1) if c + 1 < width else None
            below = cell(r + 1, c)
            if right is not None:
                pins.add(right)
            if below is not None:
                pins.add(below)
            if len(pins) >= 2:
                nets.append(tuple(sorted(pins)))
    # Operand-bit distribution nets along diagonals (multiplicand bits).
    for c in range(width):
        diagonal = [
            cell(r, (c + r) % width) for r in range(0, rows, max(1, rows // 3))
        ]
        pins_list = [p for p in diagonal if p is not None]
        if len(pins_list) >= 2:
            nets.append(tuple(sorted(set(pins_list))))
    rng.shuffle(nets)
    return Hypergraph(num_nodes=num_nodes, nets=nets, name=name or "multarray")


# ----------------------------------------------------------------------
# Bit-sliced datapath netlists
# ----------------------------------------------------------------------
def datapath_hypergraph(
    num_nodes: int,
    num_units: int = 16,
    width: int = 8,
    bus_fraction: float = 0.18,
    seed: int = 0,
    name: str = "",
) -> Hypergraph:
    """A bit-sliced datapath: functional units of slices joined by buses.

    Each of the ``num_units`` functional units holds a ``width``-wide
    grid of cells (bit-slices with carry chains), and inter-unit *bus*
    nets connect random cells of paired units, with counts decaying by
    the units' tree distance in a binary grouping (pair > quad > octave
    > global).  ``bus_fraction`` sets the bus share of the net budget.

    This is the structure the HTP problem is motivated by: the natural
    hierarchy (units, unit pairs, ...) conflicts with the cheap cuts a
    greedy min-cut method sees along the slice direction.
    """
    if num_nodes < num_units * 2:
        raise HypergraphError("need at least two cells per unit")
    rng = random.Random(seed)
    per_unit = num_nodes // num_units

    def unit_nodes(unit: int) -> List[int]:
        start = unit * per_unit
        end = (unit + 1) * per_unit if unit < num_units - 1 else num_nodes
        return list(range(start, end))

    nets: List[Tuple[int, ...]] = []
    for unit in range(num_units):
        members = unit_nodes(unit)
        count = len(members)
        for i, v in enumerate(members):
            if (i + 1) % width and i + 1 < count:
                nets.append((v, members[i + 1]))  # carry chain
            if i + width < count and rng.random() < 0.5:
                nets.append((v, members[i + width]))  # inter-slice
    num_buses = max(1, round(bus_fraction * len(nets)))
    for _bus in range(num_buses):
        unit = rng.randrange(num_units)
        draw = rng.random()
        if draw < 0.5:
            partner = unit ^ 1
        elif draw < 0.75:
            partner = (unit & ~3) | rng.randrange(4)
        elif draw < 0.9:
            partner = (unit & ~7) | rng.randrange(min(8, num_units))
        else:
            partner = rng.randrange(num_units)
        if partner == unit:
            partner = unit ^ 1
        partner %= num_units
        a = rng.choice(unit_nodes(unit))
        b = rng.choice(unit_nodes(partner))
        if a != b:
            nets.append(tuple(sorted((a, b))))
    return Hypergraph(num_nodes=num_nodes, nets=nets, name=name or "datapath")


# ----------------------------------------------------------------------
# Rent-rule large netlists (100k-1M node scaling instances)
# ----------------------------------------------------------------------
def rent_hypergraph(
    num_nodes: int,
    rent_exponent: float = 0.65,
    nets_per_node: float = 1.06,
    leaf_size: int = 32,
    seed: int = 0,
    name: str = "",
) -> Hypergraph:
    """A large netlist with Rent-rule boundary statistics.

    The node index range is bisected recursively down to ``leaf_size``
    blocks.  Each leaf block is a local logic chain (2-pin nets between
    consecutive cells, keeping every block internally connected); each
    internal block of size ``g`` receives cross nets between its two
    halves, with counts proportional to ``g**rent_exponent`` — Rent's
    rule ``T = t * g^p`` applied to the block tree, so boundary capacity
    decays geometrically with hierarchy depth exactly the way placed
    real netlists do.  The per-block counts are normalised so the total
    net count lands on ``nets_per_node * num_nodes`` (the ISCAS85
    nets/nodes ratio by default); every internal block keeps at least
    one cross net, so the whole netlist is connected.

    Generation is a pure function of the arguments: blocks are visited
    in deterministic preorder and all sampling comes from one seeded
    ``random.Random``.  Cost is O(num_nets) — practical to 1M nodes.

    Use :func:`rent_surrogate` for instances parameterised as scaled-up
    ISCAS85 circuits.
    """
    if num_nodes < 2:
        raise HypergraphError("rent netlist needs at least two nodes")
    if not 0.0 < rent_exponent < 1.0:
        raise HypergraphError("rent_exponent must be in (0, 1)")
    if leaf_size < 2:
        raise HypergraphError("leaf_size must be at least 2")
    rng = random.Random(seed)

    # Recursive bisection of [0, num_nodes): preorder lists of leaf
    # ranges and internal (lo, mid, hi) splits.
    leaves: List[Tuple[int, int]] = []
    internals: List[Tuple[int, int, int]] = []
    stack: List[Tuple[int, int]] = [(0, num_nodes)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo <= leaf_size:
            leaves.append((lo, hi))
            continue
        mid = lo + (hi - lo) // 2
        internals.append((lo, mid, hi))
        # Push right first so the left half is processed first (preorder).
        stack.append((mid, hi))
        stack.append((lo, mid))

    nets: List[Tuple[int, ...]] = []
    for lo, hi in leaves:
        for v in range(lo, hi - 1):
            nets.append((v, v + 1))

    # Rent budget: distribute the remaining net count over the internal
    # blocks proportionally to g^p, at least one cross net per block.
    target_nets = max(num_nodes, round(nets_per_node * num_nodes))
    cross_budget = max(len(internals), target_nets - len(nets))
    raw = [(hi - lo) ** rent_exponent for lo, _mid, hi in internals]
    raw_total = sum(raw) or 1.0
    for (lo, mid, hi), weight in zip(internals, raw):
        count = max(1, round(cross_budget * weight / raw_total))
        for _ in range(count):
            size = rng.choices((2, 3, 4), weights=(0.72, 0.20, 0.08))[0]
            pins = {rng.randrange(lo, mid), rng.randrange(mid, hi)}
            guard = 0
            while len(pins) < size and guard < 8:
                guard += 1
                pins.add(rng.randrange(lo, hi))
            nets.append(tuple(sorted(pins)))
    return Hypergraph(
        num_nodes=num_nodes, nets=nets, name=name or f"rent{num_nodes}"
    )


def rent_surrogate(
    circuit: str, factor: int = 10, seed: int = 0
) -> Hypergraph:
    """A Rent-rule netlist sized as ``factor`` copies of an ISCAS85 circuit.

    Node count and nets/nodes ratio come from the published Table 1
    sizes (:data:`ISCAS85_SIZES`); the structure is the recursive
    Rent-rule hierarchy of :func:`rent_hypergraph` — the scaled
    surrogates behind the multilevel scaling benchmarks
    (``benchmarks/bench_multilevel.py``).  ``rent_surrogate("c7552",
    30)`` is a ~105k-node instance named ``c7552x30``.
    """
    if circuit not in ISCAS85_SIZES:
        known = ", ".join(sorted(ISCAS85_SIZES))
        raise HypergraphError(f"unknown circuit {circuit!r} (known: {known})")
    if factor < 1:
        raise HypergraphError("factor must be at least 1")
    nodes, nets, _pins = ISCAS85_SIZES[circuit]
    return rent_hypergraph(
        nodes * factor,
        nets_per_node=nets / nodes,
        seed=seed,
        name=f"{circuit}x{factor}",
    )


# ----------------------------------------------------------------------
# Generic generators for tests and examples
# ----------------------------------------------------------------------
def random_hypergraph(
    num_nodes: int,
    num_nets: int,
    max_net_size: int = 4,
    seed: int = 0,
    name: str = "random",
) -> Hypergraph:
    """A uniformly random netlist (no planted structure).

    The union of all nets is forced to be connected by first threading a
    random spanning chain of 2-pin nets, so partitioning instances are
    non-degenerate.
    """
    if num_nets < num_nodes - 1:
        raise HypergraphError(
            "need at least num_nodes - 1 nets to keep the netlist connected"
        )
    rng = random.Random(seed)
    order = list(range(num_nodes))
    rng.shuffle(order)
    nets: List[Tuple[int, ...]] = [
        tuple(sorted((order[i], order[i + 1]))) for i in range(num_nodes - 1)
    ]
    while len(nets) < num_nets:
        size = rng.randint(2, max(2, max_net_size))
        pins = rng.sample(range(num_nodes), min(size, num_nodes))
        if len(pins) >= 2:
            nets.append(tuple(sorted(pins)))
    return Hypergraph(num_nodes=num_nodes, nets=nets, name=name)


def grid_hypergraph(rows: int, cols: int, name: str = "grid") -> Hypergraph:
    """A ``rows x cols`` grid of 2-pin nets (deterministic)."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise HypergraphError("grid needs at least two cells")
    nets: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                nets.append((v, v + 1))
            if r + 1 < rows:
                nets.append((v, v + cols))
    return Hypergraph(num_nodes=rows * cols, nets=nets, name=name)


# ----------------------------------------------------------------------
# ISCAS85 surrogates (Table 1)
# ----------------------------------------------------------------------
#: Chain-locality span of each random-logic surrogate.  c2670 and c7552
#: (the circuits where the paper reports FLOW's biggest wins) are the
#: most chain-like: long reconvergent cone/parity structure with sparse
#: cluster interiors that greedy local refinement reads poorly.
_SURROGATE_INTRA_SPAN: Dict[str, int] = {
    "c1355": 6,
    "c2670": 6,
    "c3540": 12,
    "c7552": 6,
}

#: Array width of the c6288 surrogate (a 2-D carry-save multiplier array;
#: near-square so the array has no cheap narrow dimension).
_C6288_WIDTH = 60


def iscas85_surrogate(
    circuit: str, seed: int = 0, scale: float = 1.0
) -> Hypergraph:
    """A synthetic surrogate for an ISCAS85 circuit of Table 1.

    ``scale`` < 1 shrinks the instance proportionally (useful for quick
    smoke runs); ``scale = 1`` matches the published node count exactly and
    the net/pin counts approximately.
    """
    if circuit not in ISCAS85_SIZES:
        known = ", ".join(sorted(ISCAS85_SIZES))
        raise HypergraphError(f"unknown circuit {circuit!r} (known: {known})")
    nodes, nets, _pins = ISCAS85_SIZES[circuit]
    num_nodes = max(32, round(nodes * scale))
    num_nets = max(num_nodes, round(nets * scale))
    if circuit == "c6288":
        width = max(4, round(_C6288_WIDTH * scale**0.5))
        return multiplier_array_hypergraph(
            num_nodes, width=width, seed=seed, name=circuit
        )
    return planted_hierarchy_hypergraph(
        num_nodes,
        num_nets=num_nets,
        seed=seed,
        name=circuit,
        intra_span=_SURROGATE_INTRA_SPAN[circuit],
    )
