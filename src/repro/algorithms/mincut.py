"""Stoer–Wagner global minimum cut.

A from-scratch implementation used as a cross-check for the flow-based
cuts and as an analysis tool (global min-cut of a netlist graph).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import HypergraphError
from repro.hypergraph.graph import Graph


def stoer_wagner_min_cut(
    graph: Graph, lengths: Optional[Sequence[float]] = None
) -> Tuple[float, List[int]]:
    """Global minimum cut ``(weight, one_side)`` of a connected graph.

    ``lengths`` overrides edge capacities as weights when given.  Raises
    :class:`HypergraphError` on graphs with fewer than two nodes.
    """
    n = graph.num_nodes
    if n < 2:
        raise HypergraphError("min cut needs at least two nodes")
    weights_src = graph.capacities() if lengths is None else lengths

    # Dense adjacency between supernodes; merged[i] lists original nodes.
    weight = [[0.0] * n for _ in range(n)]
    for edge_id, (u, v) in enumerate(graph.edges()):
        weight[u][v] += weights_src[edge_id]
        weight[v][u] += weights_src[edge_id]
    merged: List[List[int]] = [[v] for v in range(n)]
    active = list(range(n))

    best_value = math.inf
    best_side: List[int] = []

    while len(active) > 1:
        # Maximum-adjacency (minimum-cut-phase) ordering.
        in_a = {active[0]}
        order = [active[0]]
        attach = {v: weight[active[0]][v] for v in active if v != active[0]}
        while len(order) < len(active):
            next_node = max(attach, key=lambda v: attach[v])
            order.append(next_node)
            in_a.add(next_node)
            del attach[next_node]
            for v in attach:
                attach[v] += weight[next_node][v]
        s, t = order[-2], order[-1]
        cut_of_phase = sum(weight[t][v] for v in active if v != t)
        if cut_of_phase < best_value:
            best_value = cut_of_phase
            best_side = sorted(merged[t])
        # Merge t into s.
        merged[s].extend(merged[t])
        for v in active:
            if v not in (s, t):
                weight[s][v] += weight[t][v]
                weight[v][s] = weight[s][v]
        active.remove(t)

    return best_value, best_side
