"""Classic graph-algorithm substrate.

Everything the paper's algorithms lean on is implemented here from scratch:
an indexed priority queue, disjoint sets, Dijkstra (with a k-nearest
iterator used by Algorithm 2), Prim region growing, Kruskal spanning trees,
Dinic max-flow and min-cut routines (the network-flow duality substrate the
paper's Section 1 builds on).
"""

from repro.algorithms.heap import IndexedHeap
from repro.algorithms.union_find import UnionFind
from repro.algorithms.dijkstra import (
    dijkstra,
    dijkstra_expansion,
    shortest_path_tree,
)
from repro.algorithms.prim import prim_growth, prim_mst
from repro.algorithms.bfs import bfs_order, components
from repro.algorithms.spanning import kruskal_mst
from repro.algorithms.maxflow import dinic_max_flow, min_cut_partition
from repro.algorithms.mincut import stoer_wagner_min_cut

__all__ = [
    "IndexedHeap",
    "UnionFind",
    "dijkstra",
    "dijkstra_expansion",
    "shortest_path_tree",
    "prim_growth",
    "prim_mst",
    "bfs_order",
    "components",
    "kruskal_mst",
    "dinic_max_flow",
    "min_cut_partition",
    "stoer_wagner_min_cut",
]
