"""Dinic's max-flow and the induced s-t min-cut.

The paper's Section 1 frames the whole approach through the max-flow
min-cut duality ("network flow computations can uncover the hierarchical
structures of circuits").  This module provides that substrate: a
from-scratch Dinic implementation over the :class:`Graph` model, plus the
min-cut node partition read off the final residual network.
"""

from __future__ import annotations

import math
from collections import deque
from typing import List, Optional, Sequence, Set, Tuple


class FlowNetwork:
    """A directed residual network with paired forward/backward arcs."""

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self._heads: List[int] = []
        self._caps: List[float] = []
        self._adjacency: List[List[int]] = [[] for _ in range(num_nodes)]

    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add arc ``u -> v``; returns the arc id (its reverse is id ^ 1)."""
        arc_id = len(self._heads)
        self._heads.append(v)
        self._caps.append(float(capacity))
        self._adjacency[u].append(arc_id)
        self._heads.append(u)
        self._caps.append(0.0)
        self._adjacency[v].append(arc_id + 1)
        return arc_id

    def add_undirected_edge(self, u: int, v: int, capacity: float) -> int:
        """Add an undirected edge (capacity in both directions)."""
        arc_id = len(self._heads)
        self._heads.append(v)
        self._caps.append(float(capacity))
        self._adjacency[u].append(arc_id)
        self._heads.append(u)
        self._caps.append(float(capacity))
        self._adjacency[v].append(arc_id + 1)
        return arc_id

    # ------------------------------------------------------------------
    def max_flow(self, source: int, sink: int) -> float:
        """Run Dinic; the residual capacities are left in place."""
        if source == sink:
            raise ValueError("source and sink must differ")
        total = 0.0
        while True:
            level = self._bfs_levels(source, sink)
            if level[sink] < 0:
                return total
            iter_state = [0] * self.num_nodes
            while True:
                pushed = self._dfs_push(source, sink, math.inf, level, iter_state)
                if pushed <= 0:
                    break
                total += pushed

    def min_cut_side(self, source: int) -> Set[int]:
        """Source-side node set of the min cut (call after :meth:`max_flow`)."""
        side = {source}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for arc_id in self._adjacency[node]:
                if self._caps[arc_id] > 1e-12:
                    head = self._heads[arc_id]
                    if head not in side:
                        side.add(head)
                        queue.append(head)
        return side

    # ------------------------------------------------------------------
    def _bfs_levels(self, source: int, sink: int) -> List[int]:
        level = [-1] * self.num_nodes
        level[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for arc_id in self._adjacency[node]:
                head = self._heads[arc_id]
                if self._caps[arc_id] > 1e-12 and level[head] < 0:
                    level[head] = level[node] + 1
                    queue.append(head)
        return level

    def _dfs_push(
        self,
        node: int,
        sink: int,
        limit: float,
        level: List[int],
        iter_state: List[int],
    ) -> float:
        if node == sink:
            return limit
        adjacency = self._adjacency[node]
        while iter_state[node] < len(adjacency):
            arc_id = adjacency[iter_state[node]]
            head = self._heads[arc_id]
            if self._caps[arc_id] > 1e-12 and level[head] == level[node] + 1:
                pushed = self._dfs_push(
                    head,
                    sink,
                    min(limit, self._caps[arc_id]),
                    level,
                    iter_state,
                )
                if pushed > 0:
                    self._caps[arc_id] -= pushed
                    self._caps[arc_id ^ 1] += pushed
                    return pushed
            iter_state[node] += 1
        return 0.0


def dinic_max_flow(
    graph,
    source: int,
    sink: int,
    lengths: Optional[Sequence[float]] = None,
) -> Tuple[float, Set[int]]:
    """Max-flow value and source-side min-cut of an undirected graph.

    ``lengths`` overrides edge capacities when given (used to cut on the
    spreading metric instead of raw capacities).
    """
    capacities = graph.capacities() if lengths is None else lengths
    network = FlowNetwork(graph.num_nodes)
    for edge_id, (u, v) in enumerate(graph.edges()):
        network.add_undirected_edge(u, v, capacities[edge_id])
    value = network.max_flow(source, sink)
    return value, network.min_cut_side(source)


def min_cut_partition(
    graph,
    source: int,
    sink: int,
    lengths: Optional[Sequence[float]] = None,
) -> Tuple[float, List[int], List[int]]:
    """s-t min cut as ``(value, source_side, sink_side)`` sorted node lists."""
    value, side = dinic_max_flow(graph, source, sink, lengths)
    source_side = sorted(side)
    sink_side = sorted(set(graph.nodes()) - side)
    return value, source_side, sink_side
