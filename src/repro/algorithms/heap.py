"""An indexed binary min-heap with decrease-key.

Dijkstra and Prim both want a priority queue keyed by node id whose
priorities can be lowered in place.  ``heapq`` cannot do that without lazy
deletion; this structure supports ``push``, ``pop``, ``decrease`` and
membership tests in the classic O(log n) bounds.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple


class IndexedHeap:
    """Binary min-heap over hashable items with updatable priorities."""

    def __init__(self) -> None:
        self._items: List[Hashable] = []
        self._priorities: List[float] = []
        self._position: Dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._position

    def priority(self, item: Hashable) -> float:
        """Current priority of ``item`` (KeyError if absent)."""
        return self._priorities[self._position[item]]

    def push(self, item: Hashable, priority: float) -> None:
        """Insert ``item``; if present, behave like :meth:`decrease`."""
        if item in self._position:
            self.decrease(item, priority)
            return
        self._items.append(item)
        self._priorities.append(priority)
        self._position[item] = len(self._items) - 1
        self._sift_up(len(self._items) - 1)

    def decrease(self, item: Hashable, priority: float) -> bool:
        """Lower ``item``'s priority; no-op (returns False) if not lower."""
        index = self._position[item]
        if priority >= self._priorities[index]:
            return False
        self._priorities[index] = priority
        self._sift_up(index)
        return True

    def pop(self) -> Tuple[Hashable, float]:
        """Remove and return the ``(item, priority)`` with least priority."""
        if not self._items:
            raise IndexError("pop from empty IndexedHeap")
        top_item = self._items[0]
        top_priority = self._priorities[0]
        last_index = len(self._items) - 1
        self._swap(0, last_index)
        self._items.pop()
        self._priorities.pop()
        del self._position[top_item]
        if self._items:
            self._sift_down(0)
        return top_item, top_priority

    def peek(self) -> Optional[Tuple[Hashable, float]]:
        """The minimum ``(item, priority)`` without removing it."""
        if not self._items:
            return None
        return self._items[0], self._priorities[0]

    # ------------------------------------------------------------------
    def _swap(self, i: int, j: int) -> None:
        self._items[i], self._items[j] = self._items[j], self._items[i]
        self._priorities[i], self._priorities[j] = (
            self._priorities[j],
            self._priorities[i],
        )
        self._position[self._items[i]] = i
        self._position[self._items[j]] = j

    def _sift_up(self, index: int) -> None:
        while index > 0:
            parent = (index - 1) // 2
            if self._priorities[index] < self._priorities[parent]:
                self._swap(index, parent)
                index = parent
            else:
                break

    def _sift_down(self, index: int) -> None:
        size = len(self._items)
        while True:
            left = 2 * index + 1
            right = left + 1
            smallest = index
            if left < size and self._priorities[left] < self._priorities[smallest]:
                smallest = left
            if right < size and self._priorities[right] < self._priorities[smallest]:
                smallest = right
            if smallest == index:
                return
            self._swap(index, smallest)
            index = smallest
