"""Kruskal minimum spanning forest (cross-check for Prim)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.algorithms.union_find import UnionFind
from repro.hypergraph.graph import Graph


def kruskal_mst(
    graph: Graph, lengths: Optional[Sequence[float]] = None
) -> List[int]:
    """Edge ids of a minimum spanning forest under ``lengths``.

    Defaults to the graph's capacities as weights when ``lengths`` is None.
    """
    weights = graph.capacities() if lengths is None else lengths
    order = sorted(range(graph.num_edges), key=lambda e: weights[e])
    dsu = UnionFind(graph.num_nodes)
    tree_edges: List[int] = []
    for edge_id in order:
        u, v = graph.edge(edge_id)
        if dsu.union(u, v):
            tree_edges.append(edge_id)
            if dsu.num_sets == 1:
                break
    return tree_edges
