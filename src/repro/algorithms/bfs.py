"""Breadth-first search utilities."""

from __future__ import annotations

from collections import deque
from typing import List

from repro.hypergraph.graph import Graph


def bfs_order(graph: Graph, source: int) -> List[int]:
    """Nodes reachable from ``source`` in BFS order."""
    seen = [False] * graph.num_nodes
    seen[source] = True
    order = [source]
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor, _edge_id in graph.neighbors(node):
            if not seen[neighbor]:
                seen[neighbor] = True
                order.append(neighbor)
                queue.append(neighbor)
    return order


def components(graph: Graph) -> List[List[int]]:
    """Connected components, each sorted, ordered by smallest member."""
    seen = [False] * graph.num_nodes
    result: List[List[int]] = []
    for start in graph.nodes():
        if seen[start]:
            continue
        component = bfs_order(graph, start)
        for v in component:
            seen[v] = True
        result.append(sorted(component))
    return result
