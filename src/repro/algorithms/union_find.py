"""Disjoint-set union with path compression and union by size."""

from __future__ import annotations

from typing import List


class UnionFind:
    """Classic DSU over ``0..n-1``."""

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))
        self._size = [1] * n
        self._num_sets = n

    @property
    def num_sets(self) -> int:
        """Current number of disjoint sets."""
        return self._num_sets

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with path compression)."""
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of ``x`` and ``y``; False if already merged."""
        root_x, root_y = self.find(x), self.find(y)
        if root_x == root_y:
            return False
        if self._size[root_x] < self._size[root_y]:
            root_x, root_y = root_y, root_x
        self._parent[root_y] = root_x
        self._size[root_x] += self._size[root_y]
        self._num_sets -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        """True when ``x`` and ``y`` are in the same set."""
        return self.find(x) == self.find(y)

    def set_size(self, x: int) -> int:
        """Number of elements in ``x``'s set."""
        return self._size[self.find(x)]

    def sets(self) -> List[List[int]]:
        """All sets as sorted lists, ordered by representative."""
        groups = {}
        for x in range(len(self._parent)):
            groups.setdefault(self.find(x), []).append(x)
        return [sorted(groups[r]) for r in sorted(groups)]
