"""Prim's algorithm: minimum spanning trees and region growing.

``find_cut`` (Algorithm 3) grows a region from a seed node, always
attaching the node with minimum metric distance to the region — exactly
Prim's attachment rule.  :func:`prim_growth` exposes that growth order;
:func:`prim_mst` is the classic spanning-tree variant.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.algorithms.heap import IndexedHeap
from repro.hypergraph.graph import Graph

#: Yielded by :func:`prim_growth`: (node, attachment_cost, attachment_edge).
#: Seeds have cost inf and edge -1 (a fresh-component jump).
GrowthStep = Tuple[int, float, int]


def prim_growth(
    graph: Graph,
    seeds: Iterable[int],
    lengths: Sequence[float],
    restart_order: Optional[Iterable[int]] = None,
) -> Iterator[GrowthStep]:
    """Grow a region from ``seeds`` by minimum attachment cost.

    Yields every node of the graph exactly once.  When the frontier
    empties before all nodes are covered (disconnected graph), growth
    restarts from the next unvisited node of ``restart_order`` (node-id
    order by default); such jump nodes are yielded with cost ``inf``.
    """
    visited = [False] * graph.num_nodes
    heap = IndexedHeap()
    attach_edge = {}
    for seed in seeds:
        if not visited[seed] and seed not in heap:
            heap.push(seed, -math.inf)  # ensure seeds pop first
            attach_edge[seed] = -1
    restarts = iter(
        restart_order if restart_order is not None else range(graph.num_nodes)
    )
    yielded = 0
    while yielded < graph.num_nodes:
        if not heap:
            jump = next(
                (v for v in restarts if not visited[v]),
                None,
            )
            if jump is None:
                # restart_order was partial; fall back to node-id scan
                jump = next(v for v in range(graph.num_nodes) if not visited[v])
            heap.push(jump, -math.inf)
            attach_edge[jump] = -1
        node, cost = heap.pop()
        node = int(node)
        if visited[node]:
            continue
        visited[node] = True
        yielded += 1
        yield node, (math.inf if cost == -math.inf else cost), attach_edge[node]
        for neighbor, edge_id in graph.neighbors(node):
            if visited[neighbor]:
                continue
            weight = lengths[edge_id]
            if neighbor not in heap or weight < heap.priority(neighbor):
                heap.push(neighbor, weight)
                attach_edge[neighbor] = edge_id


def prim_mst(
    graph: Graph, lengths: Optional[Sequence[float]] = None
) -> List[int]:
    """Edge ids of a minimum spanning forest under ``lengths``.

    Defaults to the graph's capacities as weights when ``lengths`` is None.
    """
    weights = graph.capacities() if lengths is None else lengths
    tree_edges: List[int] = []
    for _node, cost, edge_id in prim_growth(graph, [0], weights):
        if edge_id >= 0 and not math.isinf(cost):
            tree_edges.append(edge_id)
    return tree_edges
