"""Dijkstra shortest paths with a k-nearest expansion iterator.

Algorithm 2 of the paper grows shortest-path trees ``S(v, k)`` for
``k = 1, 2, ...`` and stops at the first ``k`` whose spreading constraint is
violated.  :func:`dijkstra_expansion` supports exactly that access pattern:
it yields settled nodes one at a time, in nondecreasing distance order,
together with the tree edge that attached them — so the caller can stop the
search as early as it likes.

Edge lengths are supplied externally (indexed by edge id) because the
spreading metric mutates them between runs.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.algorithms.heap import IndexedHeap
from repro.hypergraph.graph import Graph

#: Yielded by :func:`dijkstra_expansion`: (node, distance, tree_edge_id,
#: predecessor).  The source has tree_edge_id = -1 and predecessor = -1.
ExpansionStep = Tuple[int, float, int, int]


def dijkstra_expansion(
    graph: Graph,
    source: int,
    lengths: Sequence[float],
) -> Iterator[ExpansionStep]:
    """Yield nodes in nondecreasing shortest-path distance from ``source``.

    Each step is ``(node, dist, tree_edge_id, predecessor)`` where
    ``tree_edge_id`` is the edge through which the node was settled (-1 for
    the source).  Unreachable nodes are never yielded.
    """
    dist: List[float] = [math.inf] * graph.num_nodes
    pred_edge: List[int] = [-1] * graph.num_nodes
    pred_node: List[int] = [-1] * graph.num_nodes
    settled = [False] * graph.num_nodes
    heap = IndexedHeap()
    dist[source] = 0.0
    heap.push(source, 0.0)
    while heap:
        node, node_dist = heap.pop()
        node = int(node)
        settled[node] = True
        yield node, node_dist, pred_edge[node], pred_node[node]
        for neighbor, edge_id in graph.neighbors(node):
            if settled[neighbor]:
                continue
            candidate = node_dist + lengths[edge_id]
            if candidate < dist[neighbor]:
                dist[neighbor] = candidate
                pred_edge[neighbor] = edge_id
                pred_node[neighbor] = node
                heap.push(neighbor, candidate)


def dijkstra(
    graph: Graph,
    source: int,
    lengths: Sequence[float],
) -> Tuple[List[float], List[int], List[int]]:
    """Full single-source shortest paths.

    Returns ``(dist, pred_node, pred_edge)`` lists indexed by node id;
    unreachable nodes have ``dist = inf`` and predecessors -1.
    """
    dist: List[float] = [math.inf] * graph.num_nodes
    pred_node: List[int] = [-1] * graph.num_nodes
    pred_edge: List[int] = [-1] * graph.num_nodes
    for node, node_dist, edge_id, parent in dijkstra_expansion(
        graph, source, lengths
    ):
        dist[node] = node_dist
        pred_node[node] = parent
        pred_edge[node] = edge_id
    return dist, pred_node, pred_edge


def shortest_path_tree(
    graph: Graph,
    source: int,
    lengths: Sequence[float],
    k: Optional[int] = None,
) -> Tuple[List[int], List[float], List[int]]:
    """The shortest-path tree ``S(source, k)`` of the paper.

    Returns ``(nodes, dists, tree_edges)``: the ``k`` nearest reachable
    nodes (all reachable nodes if ``k`` is None) in settle order, their
    distances, and the ``len(nodes) - 1`` tree edge ids connecting them.
    """
    nodes: List[int] = []
    dists: List[float] = []
    tree_edges: List[int] = []
    for node, node_dist, edge_id, _parent in dijkstra_expansion(
        graph, source, lengths
    ):
        nodes.append(node)
        dists.append(node_dist)
        if edge_id >= 0:
            tree_edges.append(edge_id)
        if k is not None and len(nodes) >= k:
            break
    return nodes, dists, tree_edges
