"""Batched spreading engine: bit-identity against the serial reference.

The batched oracle (`violations_for_batch` / `batch_check`) and the
batched round loop (`engine='scipy'`) are pure performance work — every
test here pins them to the serial path's exact output: same violations,
same ``tree_edges``, same floats, same rng trajectory.
"""

import random

import numpy as np
import pytest

from repro.core.constraints import SpreadingOracle
from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.perf import PerfCounters
from repro.core.spreading_metric import (
    SpreadingMetricConfig,
    compute_spreading_metric,
)
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.generators import (
    iscas85_surrogate,
    planted_hierarchy_hypergraph,
)
from repro.hypergraph.graph import Graph


def _assert_same_verdicts(oracle, sources, mode):
    serial = [oracle.violation_for(v, mode) for v in sources]
    batched = oracle.violations_for_batch(sources, mode)
    assert len(serial) == len(batched)
    for expected, got in zip(serial, batched):
        assert expected == got  # covers k, nodes, tree_edges, lhs, rhs


@pytest.mark.parametrize("model", ["clique", "cycle"])
@pytest.mark.parametrize("mode", ["first", "max"])
def test_batched_oracle_matches_serial(model, mode):
    netlist = planted_hierarchy_hypergraph(96, seed=2)
    graph = to_graph(netlist, model=model, rng=random.Random(2))
    spec = binary_hierarchy(graph.total_size(), height=3)
    oracle = SpreadingOracle(graph, spec)
    rng = np.random.default_rng(11)
    for scale in (0.005, 0.02, 0.2):
        lengths = rng.uniform(0.0, scale, graph.num_edges)
        lengths[rng.integers(0, graph.num_edges, 10)] = 0.0  # floor path
        oracle.set_lengths(lengths)
        _assert_same_verdicts(oracle, list(graph.nodes()), mode)


@pytest.mark.parametrize("mode", ["first", "max"])
def test_batched_oracle_non_unit_sizes(mode):
    rng = np.random.default_rng(5)
    n = 64
    edges = [(i, (i + 1) % n, 1.0) for i in range(n)]
    for _ in range(90):
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u != v:
            edges.append((u, v, float(rng.uniform(0.5, 2.0))))
    graph = Graph(n, edges, node_sizes=rng.uniform(0.5, 2.5, n))
    spec = binary_hierarchy(graph.total_size(), height=3)
    oracle = SpreadingOracle(graph, spec)
    for scale in (0.01, 0.08):
        oracle.set_lengths(rng.uniform(0.0, scale, graph.num_edges))
        _assert_same_verdicts(oracle, list(range(n)), mode)


def test_update_lengths_equals_set_lengths():
    netlist = planted_hierarchy_hypergraph(64, seed=0)
    graph = to_graph(netlist)
    spec = binary_hierarchy(graph.total_size(), height=3)
    rng = np.random.default_rng(9)
    lengths = rng.uniform(0.0, 0.05, graph.num_edges)

    incremental = SpreadingOracle(graph, spec)
    incremental.set_lengths(lengths)
    version_before = incremental.version

    reference = SpreadingOracle(graph, spec)

    for _ in range(10):
        dirty = rng.integers(0, graph.num_edges, 7)
        lengths[dirty] += rng.uniform(0.01, 0.1, dirty.size)
        incremental.update_lengths(dirty, lengths[dirty])
        reference.set_lengths(lengths)
        # Both oracles share the graph's CSR cache; interleaving their
        # queries exercises the weights-token clobber guard too.
        for source in range(0, graph.num_nodes, 5):
            assert incremental.violation_for(source) == reference.violation_for(
                source
            )
        assert np.array_equal(incremental.lengths(), reference.lengths())
    assert incremental.version == version_before + 10


@pytest.mark.parametrize(
    "metric_kwargs",
    [
        {},
        {"node_sample": 0.5, "seed": 3},
        {"alpha": 0.5, "delta": 0.1, "epsilon": 0.05},
    ],
)
def test_batched_metric_identical_to_serial(metric_kwargs):
    netlist = iscas85_surrogate("c1355", scale=0.5)
    graph = to_graph(netlist)
    spec = binary_hierarchy(graph.total_size(), height=4)

    serial = compute_spreading_metric(
        graph, spec, SpreadingMetricConfig(engine="scipy-serial", **metric_kwargs)
    )
    batched = compute_spreading_metric(
        graph, spec, SpreadingMetricConfig(engine="scipy", **metric_kwargs)
    )

    assert np.array_equal(serial.lengths, batched.lengths)
    assert np.array_equal(serial.flows, batched.flows)
    assert serial.objective == batched.objective
    assert serial.injections == batched.injections
    assert serial.rounds == batched.rounds
    assert serial.satisfied == batched.satisfied


def test_flow_htp_unchanged_by_engine_swap():
    """The engine swap must not move FLOW results for a fixed seed."""
    netlist = planted_hierarchy_hypergraph(128, seed=1)
    spec = binary_hierarchy(netlist.total_size(), height=3)

    results = {}
    for engine in ("scipy-serial", "scipy"):
        config = FlowHTPConfig(
            iterations=2,
            constructions_per_metric=2,
            seed=7,
            metric=SpreadingMetricConfig(engine=engine),
        )
        results[engine] = flow_htp(netlist, spec, config)

    serial, batched = results["scipy-serial"], results["scipy"]
    assert serial.cost == batched.cost
    assert serial.iteration_costs == batched.iteration_costs
    assert serial.metric_objectives == batched.metric_objectives
    assert [
        serial.partition.leaf_of(v) for v in range(netlist.num_nodes)
    ] == [batched.partition.leaf_of(v) for v in range(netlist.num_nodes)]


def test_perf_counters_populated():
    netlist = planted_hierarchy_hypergraph(96, seed=4)
    spec = binary_hierarchy(netlist.total_size(), height=3)
    result = flow_htp(netlist, spec, FlowHTPConfig(iterations=1, seed=0))
    perf = result.perf
    assert perf is not None
    assert perf.dijkstra_calls > 0
    assert perf.dijkstra_sources >= perf.dijkstra_calls
    assert perf.nodes_settled > 0
    assert perf.cut_evals > 0
    assert set(perf.phase_seconds) == {"metric", "construct"}
    assert all(seconds >= 0 for seconds in perf.phase_seconds.values())
    summary = perf.summary()
    assert "dijkstra" in summary and "cut evals" in summary

    merged = PerfCounters()
    merged.merge(perf)
    merged.merge(perf)
    assert merged.dijkstra_calls == 2 * perf.dijkstra_calls
    assert merged.as_dict()["phase_seconds"]["metric"] == pytest.approx(
        2 * perf.phase_seconds["metric"]
    )
