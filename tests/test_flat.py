"""Unit tests for flat views and classic partition metrics."""

import pytest

from repro.htp.flat import blocks_at_level, flat_metrics, level_profile


class TestBlocksAtLevel:
    def test_leaves(self, fig2_optimal_partition):
        blocks = blocks_at_level(fig2_optimal_partition, 0)
        assert sorted(map(tuple, blocks.values())) == [
            (0, 1, 2, 3),
            (4, 5, 6, 7),
            (8, 9, 10, 11),
            (12, 13, 14, 15),
        ]

    def test_level1(self, fig2_optimal_partition):
        blocks = blocks_at_level(fig2_optimal_partition, 1)
        assert sorted(map(tuple, blocks.values())) == [
            tuple(range(8)),
            tuple(range(8, 16)),
        ]

    def test_root(self, fig2_optimal_partition):
        blocks = blocks_at_level(fig2_optimal_partition, 2)
        assert list(blocks.values()) == [list(range(16))]


class TestFlatMetrics:
    def test_level0(self, fig2_hypergraph, fig2_optimal_partition):
        metrics = flat_metrics(fig2_hypergraph, fig2_optimal_partition, 0)
        # six cut edges at level 0 (four within blocks, two across)
        assert metrics.cut_nets == 6
        assert metrics.cut_capacity == 6.0
        assert metrics.num_blocks == 4
        # all cut nets are 2-pin spanning exactly 2 blocks
        assert metrics.soed == 12.0
        assert metrics.k_minus_1 == 6.0

    def test_level1(self, fig2_hypergraph, fig2_optimal_partition):
        metrics = flat_metrics(fig2_hypergraph, fig2_optimal_partition, 1)
        assert metrics.cut_nets == 2
        assert metrics.num_blocks == 2

    def test_profile_lengths(self, fig2_hypergraph, fig2_optimal_partition):
        profile = level_profile(fig2_hypergraph, fig2_optimal_partition)
        assert len(profile) == 2
        assert profile[0].cut_nets >= profile[1].cut_nets

    def test_k_minus_1_below_soed(
        self, fig2_hypergraph, fig2_optimal_partition
    ):
        for metrics in level_profile(fig2_hypergraph, fig2_optimal_partition):
            assert metrics.k_minus_1 <= metrics.soed
