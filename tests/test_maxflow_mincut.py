"""Unit tests for Dinic max-flow and Stoer-Wagner min-cut."""

import random

import pytest

from repro.algorithms.maxflow import FlowNetwork, dinic_max_flow, min_cut_partition
from repro.algorithms.mincut import stoer_wagner_min_cut
from repro.errors import HypergraphError
from repro.hypergraph import Graph
from repro.hypergraph.generators import figure2_graph


class TestDinic:
    def test_simple_path(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 5.0)
        net.add_edge(1, 2, 3.0)
        assert net.max_flow(0, 2) == pytest.approx(3.0)

    def test_parallel_paths(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 2.0)
        net.add_edge(1, 3, 2.0)
        net.add_edge(0, 2, 3.0)
        net.add_edge(2, 3, 1.0)
        assert net.max_flow(0, 3) == pytest.approx(3.0)

    def test_source_equals_sink_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.max_flow(0, 0)

    def test_min_cut_side_after_flow(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 10.0)
        net.add_edge(1, 2, 1.0)  # bottleneck
        net.add_edge(2, 3, 10.0)
        assert net.max_flow(0, 3) == pytest.approx(1.0)
        assert net.min_cut_side(0) == {0, 1}

    def test_undirected_bridge(self):
        g = Graph(4, edges=[(0, 1, 4.0), (1, 2, 2.0), (2, 3, 4.0)])
        value, side = dinic_max_flow(g, 0, 3)
        assert value == pytest.approx(2.0)
        assert side == {0, 1}

    def test_figure2_cross_block_flow(self):
        # Between the two level-1 blocks there are exactly 2 unit edges.
        g = figure2_graph()
        value, source_side, sink_side = min_cut_partition(g, 0, 15)
        assert value == pytest.approx(2.0)
        assert set(source_side) == set(range(8))
        assert set(sink_side) == set(range(8, 16))

    def test_max_flow_min_cut_duality_random(self):
        rng = random.Random(5)
        edges = []
        n = 12
        for _ in range(30):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.append((u, v, rng.uniform(0.5, 2.0)))
        edges.append((0, 1, 1.0))  # keep s-side connected to something
        g = Graph(n, edges=edges)
        value, side = dinic_max_flow(g, 0, n - 1)
        if value == 0:
            return  # disconnected instance
        # Duality: flow value equals the capacity crossing the found cut.
        crossing = sum(
            g.capacity(e)
            for e, (u, v) in enumerate(g.edges())
            if (u in side) != (v in side)
        )
        assert value == pytest.approx(crossing)


class TestStoerWagner:
    def test_bridge_graph(self):
        g = Graph(4, edges=[(0, 1, 5.0), (1, 2, 1.0), (2, 3, 5.0)])
        value, side = stoer_wagner_min_cut(g)
        assert value == pytest.approx(1.0)
        assert sorted(side) in ([0, 1], [2, 3])

    def test_figure2_global_cut(self):
        value, side = stoer_wagner_min_cut(figure2_graph())
        assert value == pytest.approx(2.0)
        assert sorted(side) in ([0, 1, 2, 3, 4, 5, 6, 7], [8, 9, 10, 11, 12, 13, 14, 15])

    def test_single_node_rejected(self):
        with pytest.raises(HypergraphError):
            stoer_wagner_min_cut(Graph(1, edges=[]))

    def test_matches_networkx(self):
        import networkx as nx

        rng = random.Random(17)
        edges = []
        n = 10
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < 0.5:
                    edges.append((u, v, rng.uniform(0.5, 3.0)))
        g = Graph(n, edges=edges)
        # ensure connectivity
        for u in range(n - 1):
            if g.edge_id(u, u + 1) is None:
                edges.append((u, u + 1, 0.7))
        g = Graph(n, edges=edges)
        nxg = g.to_networkx()
        expected, _parts = nx.stoer_wagner(nxg, weight="capacity")
        value, _side = stoer_wagner_min_cut(g)
        assert value == pytest.approx(expected)
