"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.htp.hierarchy import HierarchySpec, binary_hierarchy, figure2_hierarchy
from repro.hypergraph.expansion import to_graph
from repro.hypergraph.generators import (
    figure2_graph,
    figure2_hypergraph,
    figure2_optimal_blocks,
    grid_hypergraph,
    planted_hierarchy_hypergraph,
    random_hypergraph,
)
from repro.htp.partition import PartitionTree


@pytest.fixture
def fig2_graph():
    """The 16-node, 30-edge graph of Figure 2."""
    return figure2_graph()


@pytest.fixture
def fig2_hypergraph():
    """Figure 2 as a netlist of 2-pin nets."""
    return figure2_hypergraph()


@pytest.fixture
def fig2_spec():
    """The Figure 2 hierarchy: C=(4,8,16), w=(1,2)."""
    return figure2_hierarchy()


@pytest.fixture
def fig2_optimal_partition():
    """The optimal Figure 2 partition (cost 20)."""
    blocks = figure2_optimal_blocks()
    nested = [[blocks[0], blocks[1]], [blocks[2], blocks[3]]]
    return PartitionTree.from_nested(nested, 16)


@pytest.fixture
def small_planted():
    """A 64-node planted-hierarchy netlist (height 2, 4 leaf clusters)."""
    return planted_hierarchy_hypergraph(64, height=2, seed=7, name="p64")


@pytest.fixture
def small_planted_spec(small_planted):
    """Binary hierarchy of height 2 for the 64-node netlist."""
    return binary_hierarchy(small_planted.total_size(), height=2)


@pytest.fixture
def medium_planted():
    """A 128-node planted-hierarchy netlist (height 3, 8 leaf clusters)."""
    return planted_hierarchy_hypergraph(128, height=3, seed=3, name="p128")


@pytest.fixture
def medium_planted_spec(medium_planted):
    """Binary hierarchy of height 3 for the 128-node netlist."""
    return binary_hierarchy(medium_planted.total_size(), height=3)


@pytest.fixture
def rng():
    """A deterministic Random instance."""
    return random.Random(12345)
