"""The multilevel FLOW V-cycle: invariants, determinism, wiring.

Three layers of guarantees:

* **Coarsening invariants** (Hypothesis) — contraction preserves total
  node weight, maps every net onto its pins' coarse images (net
  membership), and preserves cut capacity under projection.  These are
  the facts that make a :class:`HierarchySpec` stated in absolute sizes
  valid at every level of the V-cycle.
* **Determinism** — ``multilevel-flow`` is bit-identical across runs for
  a fixed seed, and across ``workers`` counts (the parallel metric
  engine is bit-identical to the serial one by contract).
* **Wiring** — the CLI engine flag and the service ``JobSpec`` path both
  reach the V-cycle and return valid, serializable results.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.htp.cost import total_cost
from repro.htp.hierarchy import binary_hierarchy
from repro.htp.validate import partition_violations
from repro.hypergraph import io as hio
from repro.hypergraph.generators import rent_hypergraph, rent_surrogate
from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioning.coarsening import (
    CoarseningConfig,
    coarsen,
    contract,
    heavy_edge_matching,
    project_assignment,
)
from repro.partitioning.fm import cut_capacity
from repro.partitioning.multilevel_flow import (
    MultilevelFlowConfig,
    multilevel_flow_htp,
    multilevel_fm_htp,
)
from repro.service.jobs import JobSpec, run_spec


@st.composite
def netlists(draw):
    """Connected netlists with 8..24 nodes, varied sizes and capacities."""
    n = draw(st.integers(min_value=8, max_value=24))
    seed = draw(st.integers(0, 2**16))
    rng = random.Random(seed)
    nets = [(i, i + 1) for i in range(n - 1)]
    for _ in range(draw(st.integers(0, 10))):
        size = rng.randint(2, min(5, n))
        nets.append(tuple(rng.sample(range(n), size)))
    node_sizes = [float(rng.randint(1, 3)) for _ in range(n)]
    net_capacities = [float(rng.randint(1, 4)) for _ in nets]
    return Hypergraph(
        n, nets=nets, node_sizes=node_sizes, net_capacities=net_capacities
    )


class TestCoarseningInvariants:
    @given(netlists(), st.integers(0, 1000))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_contraction_preserves_total_weight(self, h, seed):
        coarse_of = heavy_edge_matching(h, random.Random(seed))
        coarse = contract(h, coarse_of)
        assert coarse.total_size() == pytest.approx(h.total_size())
        # Each coarse node's size is the sum of the fine sizes it absorbed.
        for cv in range(coarse.num_nodes):
            absorbed = sum(
                h.node_size(v)
                for v in range(h.num_nodes)
                if coarse_of[v] == cv
            )
            assert coarse.node_size(cv) == pytest.approx(absorbed)

    @given(netlists(), st.integers(0, 1000))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_contraction_preserves_net_membership(self, h, seed):
        """Every fine net maps onto one coarse net (or became internal),
        and total net capacity is conserved up to internalized nets."""
        coarse_of = heavy_edge_matching(h, random.Random(seed))
        coarse = contract(h, coarse_of)
        coarse_nets = {
            pins: net_id for net_id, pins in enumerate(coarse.nets())
        }
        internal = 0.0
        mapped = {}
        for net_id, pins in enumerate(h.nets()):
            image = tuple(sorted({coarse_of[v] for v in pins}))
            if len(image) < 2:
                internal += h.net_capacity(net_id)
                continue
            assert image in coarse_nets, (
                f"net {net_id} image {image} missing from the coarse nets"
            )
            mapped[image] = mapped.get(image, 0.0) + h.net_capacity(net_id)
        # Parallel fine nets merge by summing capacities, exactly.
        for image, capacity in mapped.items():
            assert coarse.net_capacity(
                coarse_nets[image]
            ) == pytest.approx(capacity)
        total_fine = sum(
            h.net_capacity(i) for i in range(h.num_nets)
        )
        total_coarse = sum(
            coarse.net_capacity(i) for i in range(coarse.num_nets)
        )
        assert total_coarse == pytest.approx(total_fine - internal)

    @given(netlists(), st.integers(0, 1000), st.integers(0, 1000))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_projection_preserves_cut(self, h, seed, part_seed):
        """A projected assignment cuts exactly the capacity the coarse
        assignment cuts — the soundness of uncoarsening."""
        coarse_of = heavy_edge_matching(h, random.Random(seed))
        coarse = contract(h, coarse_of)
        rng = random.Random(part_seed)
        coarse_sides = [rng.randint(0, 1) for _ in range(coarse.num_nodes)]
        fine_sides = project_assignment(coarse_of, coarse_sides)
        assert cut_capacity(coarse, coarse_sides) == pytest.approx(
            cut_capacity(h, fine_sides)
        )

    @given(netlists(), st.integers(0, 1000))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_coarsen_chain_respects_cluster_cap(self, h, seed):
        cap = 2.5 * max(h.node_size(v) for v in range(h.num_nodes))
        levels = coarsen(
            h,
            random.Random(seed),
            CoarseningConfig(
                coarsest_size=2, max_levels=8, max_cluster_size=cap
            ),
        )
        for level in levels:
            coarse = level.hypergraph
            for v in range(coarse.num_nodes):
                # A merge is only taken when the combined size fits the
                # cap, so no cluster can exceed it (single oversized
                # input nodes would be the only exception; the strategy
                # has none).
                assert coarse.node_size(v) <= cap + 1e-9


class TestVCycle:
    def setup_method(self):
        self.h = rent_hypergraph(600, seed=2)
        self.spec = binary_hierarchy(self.h.total_size(), height=3)

    def test_valid_partition_and_cost(self):
        result = multilevel_flow_htp(
            self.h, self.spec, MultilevelFlowConfig(seed=3)
        )
        assert partition_violations(self.h, result.partition, self.spec) == []
        assert result.cost == pytest.approx(
            total_cost(self.h, result.partition, self.spec)
        )
        # iteration_costs ends with the final refined cost.
        assert result.iteration_costs[-1] == pytest.approx(result.cost)

    def test_fm_comparator_valid(self):
        result = multilevel_fm_htp(
            self.h, self.spec, MultilevelFlowConfig(seed=3)
        )
        assert partition_violations(self.h, result.partition, self.spec) == []

    def test_deterministic_across_runs(self):
        a = multilevel_flow_htp(
            self.h, self.spec, MultilevelFlowConfig(seed=5)
        )
        b = multilevel_flow_htp(
            self.h, self.spec, MultilevelFlowConfig(seed=5)
        )
        assert a.cost == b.cost
        assert a.partition.to_dict() == b.partition.to_dict()

    def test_deterministic_across_worker_counts(self):
        results = [
            multilevel_flow_htp(
                self.h,
                self.spec,
                MultilevelFlowConfig(
                    seed=5, engine="parallel", workers=workers
                ),
            )
            for workers in (1, 2)
        ]
        assert results[0].cost == results[1].cost
        assert (
            results[0].partition.to_dict() == results[1].partition.to_dict()
        )

    def test_serial_engine_matches_parallel(self):
        serial = multilevel_flow_htp(
            self.h, self.spec, MultilevelFlowConfig(seed=5)
        )
        parallel = multilevel_flow_htp(
            self.h,
            self.spec,
            MultilevelFlowConfig(seed=5, engine="parallel", workers=2),
        )
        assert serial.partition.to_dict() == parallel.partition.to_dict()

    def test_result_round_trips_through_dict(self):
        from repro.core.flow_htp import FlowHTPResult

        result = multilevel_flow_htp(
            self.h, self.spec, MultilevelFlowConfig(seed=3)
        )
        back = FlowHTPResult.from_dict(result.to_dict())
        assert back.cost == result.cost
        assert back.partition.to_dict() == result.partition.to_dict()

    def test_flat_fallback_on_tiny_instance(self):
        """An instance already below the coarsest size runs flat but
        still returns a valid partition."""
        tiny = rent_hypergraph(80, seed=4)
        spec = binary_hierarchy(tiny.total_size(), height=2)
        result = multilevel_flow_htp(tiny, spec, MultilevelFlowConfig(seed=1))
        assert partition_violations(tiny, result.partition, spec) == []

    def test_rejects_bad_knobs(self):
        from repro.errors import PartitionError

        with pytest.raises(PartitionError):
            MultilevelFlowConfig(refiner="annealing")
        with pytest.raises(PartitionError):
            MultilevelFlowConfig(coarse_solver="hmetis")
        with pytest.raises(PartitionError):
            MultilevelFlowConfig(engine="cuda")


class TestGenerators:
    def test_rent_hypergraph_deterministic(self):
        a = rent_hypergraph(500, seed=9)
        b = rent_hypergraph(500, seed=9)
        assert a.nets() == b.nets()
        assert a.net_capacities() == b.net_capacities()
        assert rent_hypergraph(500, seed=10).nets() != a.nets()

    def test_rent_hypergraph_shape(self):
        h = rent_hypergraph(2000, seed=1)
        assert h.num_nodes == 2000
        assert h.num_nets >= 2000  # ~1.06 nets per node
        assert h.total_size() == pytest.approx(2000.0)

    def test_rent_surrogate_scales_iscas(self):
        h = rent_surrogate("c1355", factor=3, seed=0)
        assert h.name == "c1355x3"
        assert h.num_nodes == 3 * 546  # 3x the c1355 surrogate node count

    def test_rent_hypergraph_rejects_bad_args(self):
        from repro.errors import HypergraphError

        with pytest.raises(HypergraphError):
            rent_hypergraph(1)
        with pytest.raises(HypergraphError):
            rent_hypergraph(100, rent_exponent=1.5)
        with pytest.raises(HypergraphError):
            rent_hypergraph(100, leaf_size=1)


class TestWiring:
    def test_cli_partition_multilevel_flow(self, tmp_path, capsys):
        path = tmp_path / "rent.hgr"
        assert (
            main(
                [
                    "generate",
                    str(path),
                    "--kind",
                    "rent",
                    "--nodes",
                    "400",
                    "--seed",
                    "2",
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "partition",
                    str(path),
                    "--engine",
                    "multilevel-flow",
                    "--height",
                    "3",
                    "--seed",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "multilevel-FLOW cost:" in out
        assert "WARNING" not in out

    def test_cli_rejects_checkpoint_dir(self, tmp_path, capsys):
        path = tmp_path / "rent.hgr"
        hio.write_hgr(rent_hypergraph(100, seed=1), path)
        code = main(
            [
                "partition",
                str(path),
                "--engine",
                "multilevel-flow",
                "--checkpoint-dir",
                str(tmp_path / "ckpt"),
            ]
        )
        assert code == 2

    def test_jobspec_round_trip(self):
        h = rent_hypergraph(300, seed=6)
        spec = JobSpec.from_parts(
            h,
            binary_hierarchy(h.total_size(), height=3),
            {"engine": "multilevel-flow", "seed": 2, "refine_passes": 2},
        )
        result = run_spec(spec)
        assert partition_violations(
            h, result.partition, spec.build_hierarchy()
        ) == []
        # The config participates in the canonical hash.
        other = JobSpec.from_parts(
            h,
            binary_hierarchy(h.total_size(), height=3),
            {"engine": "multilevel-flow", "seed": 2, "refine_passes": 3},
        )
        assert spec.canonical_hash() != other.canonical_hash()

    def test_jobspec_rejects_unknown_engine(self):
        from repro.errors import ServiceError

        h = rent_hypergraph(50, seed=0)
        with pytest.raises(ServiceError):
            JobSpec.from_parts(
                h,
                binary_hierarchy(h.total_size(), height=2),
                {"engine": "multilevel"},
            )

    def test_abort_check_honoured(self):
        from repro.errors import SolverAborted

        h = rent_hypergraph(600, seed=2)
        spec = binary_hierarchy(h.total_size(), height=3)
        with pytest.raises(SolverAborted):
            multilevel_flow_htp(
                h,
                spec,
                MultilevelFlowConfig(seed=1),
                abort_check=lambda: "deadline",
            )
