"""Figure 2 end-to-end reproduction: the paper's worked example.

The paper's Figure 2 shows a 16-node, 30-edge graph optimally partitioned
into the hierarchy C = (4, 8), w = (1, 2): cut edges get induced spreading
metric values d(e) = cost(e) of exactly 2 (level-0 cuts) and 6 (level-1
cuts).  These tests pin down every claim the figure makes.
"""

import pytest

from repro.core.flow_htp import FlowHTPConfig, flow_htp
from repro.core.lp import solve_spreading_lp, verify_metric_feasibility
from repro.htp.cost import induced_metric, net_cost, total_cost
from repro.hypergraph.generators import figure2_optimal_blocks


class TestInstanceShape:
    def test_graph_has_16_nodes_30_edges(self, fig2_graph):
        assert fig2_graph.num_nodes == 16
        assert fig2_graph.num_edges == 30

    def test_unit_sizes_and_capacities(self, fig2_graph):
        assert all(fig2_graph.node_size(v) == 1.0 for v in fig2_graph.nodes())
        assert all(
            fig2_graph.capacity(e) == 1.0 for e in range(fig2_graph.num_edges)
        )

    def test_hierarchy_parameters(self, fig2_spec):
        assert fig2_spec.capacities == (4.0, 8.0, 16.0)
        assert fig2_spec.weights == (1.0, 2.0)


class TestOptimalPartition:
    def test_cost_is_20(self, fig2_hypergraph, fig2_optimal_partition, fig2_spec):
        assert total_cost(
            fig2_hypergraph, fig2_optimal_partition, fig2_spec
        ) == pytest.approx(20.0)

    def test_cut_edge_costs_are_2_and_6(
        self, fig2_hypergraph, fig2_optimal_partition, fig2_spec
    ):
        costs = sorted(
            net_cost(fig2_hypergraph, fig2_optimal_partition, fig2_spec, e)
            for e in range(fig2_hypergraph.num_nets)
        )
        # 24 internal edges at 0, four level-0 cuts at 2, two level-1 at 6
        assert costs == [0.0] * 24 + [2.0] * 4 + [6.0] * 2

    def test_induced_metric_is_lp_feasible(
        self,
        fig2_hypergraph,
        fig2_optimal_partition,
        fig2_spec,
        fig2_graph,
    ):
        metric = induced_metric(
            fig2_hypergraph, fig2_optimal_partition, fig2_spec
        )
        feasible, violation = verify_metric_feasibility(
            fig2_graph, fig2_spec, metric
        )
        assert feasible, violation


class TestLPBoundMatches:
    def test_lp_optimum_equals_partition_cost(self, fig2_graph, fig2_spec):
        # On this instance the LP relaxation is tight: bound == 20.
        result = solve_spreading_lp(fig2_graph, fig2_spec)
        assert result.converged
        assert result.lower_bound == pytest.approx(20.0, abs=1e-4)


class TestFlowRecovers:
    def test_flow_attains_the_optimum(
        self, fig2_hypergraph, fig2_spec, fig2_graph
    ):
        result = flow_htp(
            fig2_hypergraph,
            fig2_spec,
            FlowHTPConfig(
                iterations=2, constructions_per_metric=4, seed=1
            ),
            graph=fig2_graph,
        )
        assert result.cost == pytest.approx(20.0)
        # and the recovered blocks are the planted ones
        blocks = sorted(
            tuple(b) for b in result.partition.leaf_blocks().values()
        )
        expected = sorted(tuple(b) for b in figure2_optimal_blocks())
        assert blocks == expected
