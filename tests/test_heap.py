"""Unit tests for the indexed binary heap."""

import random

import pytest

from repro.algorithms.heap import IndexedHeap


class TestBasics:
    def test_push_pop_order(self):
        heap = IndexedHeap()
        heap.push("a", 3.0)
        heap.push("b", 1.0)
        heap.push("c", 2.0)
        assert heap.pop() == ("b", 1.0)
        assert heap.pop() == ("c", 2.0)
        assert heap.pop() == ("a", 3.0)

    def test_len_and_contains(self):
        heap = IndexedHeap()
        assert len(heap) == 0
        heap.push(7, 1.0)
        assert len(heap) == 1
        assert 7 in heap
        assert 8 not in heap
        heap.pop()
        assert 7 not in heap

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedHeap().pop()

    def test_peek(self):
        heap = IndexedHeap()
        assert heap.peek() is None
        heap.push(1, 5.0)
        heap.push(2, 3.0)
        assert heap.peek() == (2, 3.0)
        assert len(heap) == 2  # peek does not remove


class TestDecrease:
    def test_decrease_moves_item_up(self):
        heap = IndexedHeap()
        heap.push("x", 10.0)
        heap.push("y", 5.0)
        assert heap.decrease("x", 1.0)
        assert heap.pop() == ("x", 1.0)

    def test_decrease_with_higher_priority_is_noop(self):
        heap = IndexedHeap()
        heap.push("x", 1.0)
        assert not heap.decrease("x", 5.0)
        assert heap.priority("x") == 1.0

    def test_push_existing_item_decreases(self):
        heap = IndexedHeap()
        heap.push("x", 5.0)
        heap.push("x", 2.0)
        assert len(heap) == 1
        assert heap.priority("x") == 2.0
        heap.push("x", 9.0)  # no-op
        assert heap.priority("x") == 2.0

    def test_priority_of_missing_raises(self):
        with pytest.raises(KeyError):
            IndexedHeap().priority("nope")


class TestRandomised:
    def test_heap_sort_matches_sorted(self):
        rng = random.Random(42)
        items = [(i, rng.random()) for i in range(300)]
        heap = IndexedHeap()
        for key, priority in items:
            heap.push(key, priority)
        popped = []
        while heap:
            popped.append(heap.pop()[1])
        assert popped == sorted(popped)

    def test_interleaved_decreases(self):
        rng = random.Random(7)
        heap = IndexedHeap()
        truth = {}
        for i in range(200):
            priority = rng.random()
            heap.push(i, priority)
            truth[i] = priority
        for _ in range(400):
            key = rng.randrange(200)
            if key in heap:
                new_priority = truth[key] * rng.random()
                if heap.decrease(key, new_priority):
                    truth[key] = new_priority
        popped = []
        while heap:
            key, priority = heap.pop()
            assert priority == pytest.approx(truth[key])
            popped.append(priority)
        assert popped == sorted(popped)
