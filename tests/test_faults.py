"""Unit tests for the fault-injection DSL (``repro.core.faults``)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.faults import (
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    FaultTolerance,
    InjectedFault,
    trip,
)


class TestFaultPlanParsing:
    def test_single_spec_round_trips(self):
        plan = FaultPlan.parse("fail:task@dispatch=0,task=1")
        assert len(plan.specs) == 1
        spec = plan.specs[0]
        assert spec.kind == "fail"
        assert spec.site == "task"
        assert dict(spec.where) == {"dispatch": 0, "task": 1}
        assert plan.describe() == "fail:task@dispatch=0,task=1"
        assert FaultPlan.parse(plan.describe()) == plan

    def test_multi_spec_plan(self):
        plan = FaultPlan.parse(
            "fail:task@dispatch=0;hang:task@round=2,duration=3;"
            "corrupt:task@dispatch=1;die:task@task=0"
        )
        assert [s.kind for s in plan.specs] == [
            "fail", "hang", "corrupt", "die",
        ]
        assert plan.specs[1].duration == 3.0
        # describe() -> parse() is the identity on the spec structure.
        assert FaultPlan.parse(plan.describe()) == plan

    def test_probability_and_seed_survive_round_trip(self):
        plan = FaultPlan.parse("fail:task@p=0.25", seed=42)
        assert plan.specs[0].p == 0.25
        assert plan.seed == 42
        assert "p=0.25" in plan.describe()

    def test_plan_is_picklable(self):
        plan = FaultPlan.parse("hang:task@dispatch=1,duration=2;fail:task")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan

    @pytest.mark.parametrize(
        "text",
        [
            "",                       # nothing at all
            ";;",                     # only separators
            "fail",                   # no site
            "explode:task",           # unknown kind
            "fail:everywhere",        # unknown site
            "fail:task@bogus=1",      # unknown coordinate
            "fail:task@dispatch=x",   # non-integer value
            "fail:task@dispatch",     # missing '='
            "fail:task@p=0",          # p outside (0, 1]
            "fail:task@p=1.5",
            "hang:task@duration=0",   # nonpositive duration
            "die:dispatch",           # die only makes sense in a worker
            "corrupt:dispatch",
            "hang:dispatch",
        ],
    )
    def test_malformed_plans_raise(self, text):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(text)

    def test_fault_plan_error_is_value_error(self):
        # argparse `type=` integration relies on this.
        assert issubclass(FaultPlanError, ValueError)


class TestFaultSpecMatching:
    def test_constrained_coordinates_must_agree(self):
        spec = FaultSpec(
            kind="fail", site="task", where=(("dispatch", 2), ("task", 1))
        )
        assert spec.matches("task", {"dispatch": 2, "task": 1})
        assert not spec.matches("task", {"dispatch": 2, "task": 0})
        assert not spec.matches("task", {"dispatch": 0, "task": 1})
        assert not spec.matches("dispatch", {"dispatch": 2, "task": 1})

    def test_unconstrained_attempt_matches_only_first_try(self):
        """Retries recover by default: attempt > 0 does not re-fire."""
        spec = FaultSpec(kind="fail", site="task", where=(("task", 0),))
        assert spec.matches("task", {"task": 0, "attempt": 0})
        assert not spec.matches("task", {"task": 0, "attempt": 1})

    def test_explicit_attempt_constraint_overrides_default(self):
        spec = FaultSpec(kind="fail", site="task", where=(("attempt", 1),))
        assert spec.matches("task", {"attempt": 1})
        assert not spec.matches("task", {"attempt": 0})

    def test_omitted_coordinates_are_wildcards(self):
        spec = FaultSpec(kind="fail", site="task")
        assert spec.matches("task", {"dispatch": 7, "task": 3, "round": 9})


class TestDeterministicDraws:
    def test_probabilistic_draws_replay_exactly(self):
        plan = FaultPlan.parse("fail:task@p=0.5", seed=7)
        coords = [{"dispatch": d, "task": t} for d in range(20)
                  for t in range(2)]
        first = [plan.draw("task", c) is not None for c in coords]
        second = [plan.draw("task", c) is not None for c in coords]
        assert first == second
        assert any(first) and not all(first)  # p=0.5 actually thins

    def test_different_seeds_give_different_trajectories(self):
        coords = [{"dispatch": d} for d in range(64)]
        a = [FaultPlan.parse("fail:task@p=0.5", seed=1).draw("task", c)
             is not None for c in coords]
        b = [FaultPlan.parse("fail:task@p=0.5", seed=2).draw("task", c)
             is not None for c in coords]
        assert a != b

    def test_first_matching_spec_wins(self):
        plan = FaultPlan.parse("hang:task@dispatch=0;fail:task@dispatch=0")
        fired = plan.draw("task", {"dispatch": 0})
        assert fired is plan.specs[0]


class TestTrip:
    def test_none_plan_is_noop(self):
        assert trip(None, "task", {"dispatch": 0}) is None

    def test_fail_raises_injected_fault_with_coordinates(self):
        plan = FaultPlan.parse("fail:task@dispatch=3")
        with pytest.raises(InjectedFault, match="'dispatch': 3"):
            trip(plan, "task", {"dispatch": 3, "task": 0})

    def test_non_matching_coords_do_not_fire(self):
        plan = FaultPlan.parse("fail:task@dispatch=3")
        assert trip(plan, "task", {"dispatch": 4}) is None
        assert trip(plan, "dispatch", {"dispatch": 3}) is None

    def test_corrupt_perturbs_target_in_place(self):
        plan = FaultPlan.parse("corrupt:task@dispatch=0")
        target = np.zeros(8)
        fired = trip(plan, "task", {"dispatch": 0}, corrupt_target=target)
        assert fired is plan.specs[0]
        assert np.count_nonzero(target) == 4
        assert np.all(target[:4] == 1.0)

    def test_hang_sleeps_for_duration(self):
        import time

        plan = FaultPlan.parse("hang:task@dispatch=0,duration=0.05")
        start = time.perf_counter()
        trip(plan, "task", {"dispatch": 0})
        assert time.perf_counter() - start >= 0.05


class TestFaultTolerance:
    def test_defaults_are_valid(self):
        tol = FaultTolerance()
        assert tol.task_deadline == 120.0
        assert tol.task_retries == 2

    def test_backoff_is_bounded_exponential(self):
        tol = FaultTolerance(backoff_base=0.1, backoff_cap=0.5)
        assert tol.backoff(1) == pytest.approx(0.1)
        assert tol.backoff(2) == pytest.approx(0.2)
        assert tol.backoff(3) == pytest.approx(0.4)
        assert tol.backoff(4) == pytest.approx(0.5)  # capped
        assert tol.backoff(10) == pytest.approx(0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"task_deadline": 0.0},
            {"task_deadline": -1.0},
            {"task_retries": -1},
            {"backoff_base": -0.1},
            {"backoff_cap": -0.1},
            {"respawn_limit": -1},
            {"min_workers": 0},
        ],
    )
    def test_invalid_budgets_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultTolerance(**kwargs)

    def test_none_deadline_disables_deadlines(self):
        assert FaultTolerance(task_deadline=None).task_deadline is None
