"""Cross-validation: independent implementations must agree.

The strongest correctness evidence in the suite — different algorithms
computing the same quantity on random instances:

* s-t max-flow (Dinic) vs the global min cut (Stoer-Wagner) vs brute
  force on small graphs;
* FBB's min net cut vs brute-force enumeration on small netlists;
* spreading-oracle LHS vs a networkx shortest-path recomputation;
* Equation-(1) cost via three independent routes (direct, incremental,
  tree routing);
* multilevel / FM / FBB mutually bounding each other's cuts.
"""

import itertools
import random

import numpy as np
import pytest

from repro.algorithms.maxflow import dinic_max_flow
from repro.algorithms.mincut import stoer_wagner_min_cut
from repro.core.constraints import SpreadingOracle
from repro.htp.cost import IncrementalCost, total_cost
from repro.htp.hierarchy import binary_hierarchy
from repro.hypergraph import Graph, Hypergraph
from repro.hypergraph.generators import planted_hierarchy_hypergraph
from repro.partitioning.fbb import fbb_bipartition
from repro.partitioning.random_init import random_partition
from repro.treemap import hierarchy_routing_tree, tree_routing_cost


def random_graph(seed, n=8, density=0.5):
    rng = random.Random(seed)
    edges = [(i, i + 1, rng.uniform(0.5, 2.0)) for i in range(n - 1)]
    for u in range(n):
        for v in range(u + 2, n):
            if rng.random() < density:
                edges.append((u, v, rng.uniform(0.5, 2.0)))
    return Graph(n, edges=edges)


def brute_force_st_cut(graph, s, t):
    """Exact s-t min cut by enumerating all sides containing s not t."""
    n = graph.num_nodes
    others = [v for v in range(n) if v not in (s, t)]
    best = float("inf")
    for size in range(len(others) + 1):
        for combo in itertools.combinations(others, size):
            side = {s, *combo}
            cut = sum(
                graph.capacity(e)
                for e, (u, v) in enumerate(graph.edges())
                if (u in side) != (v in side)
            )
            best = min(best, cut)
    return best


class TestFlowVsBruteForce:
    @pytest.mark.parametrize("seed", range(5))
    def test_dinic_equals_exact_st_cut(self, seed):
        graph = random_graph(seed)
        value, _side = dinic_max_flow(graph, 0, graph.num_nodes - 1)
        exact = brute_force_st_cut(graph, 0, graph.num_nodes - 1)
        assert value == pytest.approx(exact)

    @pytest.mark.parametrize("seed", range(5))
    def test_stoer_wagner_below_every_st_cut(self, seed):
        graph = random_graph(seed)
        global_value, _side = stoer_wagner_min_cut(graph)
        for t in range(1, graph.num_nodes):
            st_value, _ = dinic_max_flow(graph, 0, t)
            assert global_value <= st_value + 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_stoer_wagner_attained_by_some_st_cut(self, seed):
        graph = random_graph(seed)
        global_value, side = stoer_wagner_min_cut(graph)
        # the returned side realises the value
        inside = set(side)
        realised = sum(
            graph.capacity(e)
            for e, (u, v) in enumerate(graph.edges())
            if (u in inside) != (v in inside)
        )
        assert realised == pytest.approx(global_value)


class TestFBBVsBruteForce:
    def brute_force_balanced_cut(self, hypergraph, lower, upper):
        n = hypergraph.num_nodes
        best = float("inf")
        for size in range(1, n):
            if not lower <= size <= upper:
                continue
            for combo in itertools.combinations(range(n), size):
                best = min(best, hypergraph.cut_capacity(combo))
        return best

    @pytest.mark.parametrize("seed", range(3))
    def test_fbb_matches_exact_on_tiny(self, seed):
        rng = random.Random(seed)
        nets = [(i, i + 1) for i in range(7)]
        nets += [
            tuple(sorted(rng.sample(range(8), 2))) for _ in range(4)
        ]
        h = Hypergraph(8, nets=nets)
        exact = self.brute_force_balanced_cut(h, 3, 5)
        # FBB is a heuristic: try a few seed pairs and keep the best
        best = min(
            fbb_bipartition(
                h, 3, 5, rng=random.Random(t)
            ).cut_capacity
            for t in range(4)
        )
        assert best <= exact * 2 + 1e-9
        assert best >= exact - 1e-9  # cannot beat the optimum


class TestOracleVsNetworkx:
    @pytest.mark.parametrize("seed", range(3))
    def test_violation_lhs_matches_networkx_distances(self, seed):
        import networkx as nx

        h = planted_hierarchy_hypergraph(32, height=1, seed=seed)
        from repro.hypergraph.expansion import to_graph

        graph = to_graph(h)
        spec = binary_hierarchy(32, height=1, slack=0.3)
        rng = np.random.RandomState(seed)
        lengths = rng.uniform(0.01, 0.4, graph.num_edges)
        oracle = SpreadingOracle(graph, spec)
        oracle.set_lengths(lengths)

        nxg = nx.Graph()
        for eid, (u, v) in enumerate(graph.edges()):
            nxg.add_edge(u, v, weight=float(lengths[eid]))
        for source in range(0, 32, 7):
            violation = oracle.violation_for(source, mode="max")
            if violation is None:
                continue
            nx_dist = nx.single_source_dijkstra_path_length(
                nxg, source, weight="weight"
            )
            expected = sum(nx_dist[u] for u in violation.nodes)
            assert violation.lhs == pytest.approx(expected, rel=1e-6)


class TestThreeWayCostAgreement:
    @pytest.mark.parametrize("seed", range(4))
    def test_direct_incremental_routing_agree(self, seed):
        h = planted_hierarchy_hypergraph(80, height=2, seed=11)
        spec = binary_hierarchy(h.total_size(), height=2)
        partition = random_partition(h, spec, rng=random.Random(seed))

        direct = total_cost(h, partition, spec)
        incremental = IncrementalCost(h, partition, spec).cost
        tree, assignment, _vmap = hierarchy_routing_tree(partition, spec)
        routed = tree_routing_cost(tree, h, assignment)

        assert direct == pytest.approx(incremental)
        assert direct == pytest.approx(routed)
