"""Smoke tests: the fast example scripts must run end to end.

Each example is executed in-process (``runpy``) so import errors, API
drift, or broken assertions inside the examples fail the suite.  Only
the fast examples run here; the longer ones (`compare_algorithms`,
`datapath_partitioning`) are exercised by the benchmark harness instead.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, argv=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "FLOW cost" in out
    assert "partition tree" in out


def test_hierarchy_search(capsys):
    run_example("hierarchy_search.py")
    out = capsys.readouterr().out
    assert "best hierarchy" in out


def test_flow_cut_duality(capsys):
    run_example("flow_cut_duality.py")
    out = capsys.readouterr().out
    assert "planted level-1 cut" in out
    assert "ratio cut" in out


def test_multi_fpga_board(capsys):
    run_example("multi_fpga_board.py")
    out = capsys.readouterr().out
    assert "weighted I/O cost" in out
    assert "board boundary" in out


@pytest.mark.slow
def test_figure2_walkthrough(capsys):
    run_example("figure2_walkthrough.py")
    out = capsys.readouterr().out
    assert "optimal partition cost (Equation 1): 20" in out
    assert "FLOW (Algorithm 1) cost: 20" in out
