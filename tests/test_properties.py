"""Property-based tests (hypothesis) on core data structures and invariants.

Each property encodes a mathematical fact the paper relies on:
heap/DSU correctness, Dijkstra optimality, MST weight agreement, g's
monotonicity, Lemma 1 (induced metrics are feasible), cost/incremental
consistency, FM never worsening, and span bounds.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.dijkstra import dijkstra
from repro.algorithms.heap import IndexedHeap
from repro.algorithms.prim import prim_mst
from repro.algorithms.spanning import kruskal_mst
from repro.algorithms.union_find import UnionFind
from repro.core.constraints import SpreadingOracle
from repro.core.gfunc import spreading_bound_array
from repro.htp.cost import IncrementalCost, induced_metric, net_span, total_cost
from repro.htp.hierarchy import HierarchySpec, binary_hierarchy
from repro.htp.partition import PartitionTree
from repro.hypergraph import Graph, Hypergraph
from repro.hypergraph.expansion import clique_expansion, to_graph
from repro.partitioning.fm import cut_capacity, fm_refine
from repro.partitioning.random_init import random_partition

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def small_graphs(draw):
    """Connected graphs with 4..14 nodes and random capacities."""
    n = draw(st.integers(min_value=4, max_value=14))
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(0.1, 5.0),
            ),
            max_size=25,
        )
    )
    edges = [(i, i + 1, 1.0) for i in range(n - 1)]  # spanning chain
    edges += [(u, v, c) for u, v, c in extra if u != v]
    return Graph(n, edges=edges)


@st.composite
def small_netlists(draw):
    """Connected netlists with 6..20 nodes."""
    n = draw(st.integers(min_value=6, max_value=20))
    chain = [(i, i + 1) for i in range(n - 1)]
    extra_count = draw(st.integers(0, 12))
    seed = draw(st.integers(0, 2**16))
    rng = random.Random(seed)
    extra = []
    for _ in range(extra_count):
        size = rng.randint(2, min(4, n))
        extra.append(tuple(rng.sample(range(n), size)))
    return Hypergraph(n, nets=chain + extra)


# ----------------------------------------------------------------------
# Substrate properties
# ----------------------------------------------------------------------
class TestHeapProperties:
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              width=32), min_size=1, max_size=60))
    def test_heap_sorts(self, priorities):
        heap = IndexedHeap()
        for i, priority in enumerate(priorities):
            heap.push(i, priority)
        popped = [heap.pop()[1] for _ in range(len(priorities))]
        assert popped == sorted(popped)


class TestUnionFindProperties:
    @given(
        st.integers(2, 30),
        st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)),
                 max_size=60),
    )
    def test_num_sets_matches_labels(self, n, unions):
        dsu = UnionFind(n)
        labels = list(range(n))
        for a, b in unions:
            a, b = a % n, b % n
            dsu.union(a, b)
            la, lb = labels[a], labels[b]
            if la != lb:
                labels = [la if x == lb else x for x in labels]
        assert dsu.num_sets == len(set(labels))


class TestShortestPathProperties:
    @given(small_graphs(), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, graph, seed):
        rng = random.Random(seed)
        lengths = [rng.uniform(0.0, 2.0) for _ in range(graph.num_edges)]
        dist, _pn, _pe = dijkstra(graph, 0, lengths)
        for edge_id, (u, v) in enumerate(graph.edges()):
            assert dist[u] <= dist[v] + lengths[edge_id] + 1e-9
            assert dist[v] <= dist[u] + lengths[edge_id] + 1e-9

    @given(small_graphs(), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_prim_equals_kruskal_weight(self, graph, seed):
        rng = random.Random(seed)
        lengths = [rng.uniform(0.1, 2.0) for _ in range(graph.num_edges)]
        prim_weight = sum(lengths[e] for e in prim_mst(graph, lengths))
        kruskal_weight = sum(lengths[e] for e in kruskal_mst(graph, lengths))
        assert prim_weight == pytest.approx(kruskal_weight)


class TestGFunctionProperties:
    @given(
        st.lists(st.floats(1.0, 100.0), min_size=2, max_size=5),
        st.lists(st.floats(0.0, 3.0), min_size=1, max_size=4),
    )
    def test_nondecreasing_and_zero_below_c0(self, raw_caps, raw_weights):
        capacities = sorted(set(round(c, 3) for c in raw_caps))
        if len(capacities) < 2:
            return
        levels = len(capacities) - 1
        weights = (raw_weights * levels)[:levels]
        spec = HierarchySpec(
            tuple(capacities), tuple(2 for _ in range(levels)), tuple(weights)
        )
        xs = np.linspace(0, capacities[-1] * 1.5, 200)
        values = spreading_bound_array(spec, xs)
        assert np.all(np.diff(values) >= -1e-9)
        assert np.all(values[xs <= capacities[0]] == 0.0)


# ----------------------------------------------------------------------
# HTP invariants
# ----------------------------------------------------------------------
def _partition_for(netlist, spec, seed):
    return random_partition(netlist, spec, rng=random.Random(seed))


class TestCostProperties:
    @given(small_netlists(), st.integers(0, 50))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_span_bounds(self, netlist, seed):
        spec = binary_hierarchy(
            max(netlist.total_size(), 4), height=2, slack=0.4
        )
        partition = _partition_for(netlist, spec, seed)
        for net_id, pins in enumerate(netlist.nets()):
            for level in range(spec.num_levels):
                span = net_span(netlist, partition, net_id, level)
                assert span == 0 or 2 <= span <= len(pins)

    @given(small_netlists(), st.integers(0, 50))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_incremental_matches_full(self, netlist, seed):
        spec = binary_hierarchy(
            max(netlist.total_size(), 4), height=2, slack=0.4
        )
        partition = _partition_for(netlist, spec, seed)
        tracker = IncrementalCost(netlist, partition, spec)
        assert tracker.cost == pytest.approx(
            total_cost(netlist, partition, spec)
        )
        rng = random.Random(seed)
        leaves = partition.leaves()
        for _ in range(10):
            node = rng.randrange(netlist.num_nodes)
            tracker.apply(node, rng.choice(leaves))
        assert tracker.cost == pytest.approx(tracker.recompute())

    @given(small_netlists(), st.integers(0, 50))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_lemma1_induced_metric_feasible(self, netlist, seed):
        """Lemma 1: every valid partition induces a feasible metric.

        Checked on the clique-expanded graph for 2-pin nets only (the
        formulation's graph case): build a graph from the netlist's
        2-pin nets plus a chain, derive the induced metric, verify.
        """
        two_pin = [pins for pins in netlist.nets() if len(pins) == 2]
        if len(two_pin) < netlist.num_nodes - 1:
            return
        h2 = Hypergraph(netlist.num_nodes, nets=two_pin)
        spec = binary_hierarchy(
            max(h2.total_size(), 4), height=2, slack=0.4
        )
        partition = _partition_for(h2, spec, seed)
        metric = induced_metric(h2, partition, spec)
        graph = clique_expansion(h2)
        lengths = np.zeros(graph.num_edges)
        for net_id, pins in enumerate(h2.nets()):
            edge_id = graph.edge_id(pins[0], pins[1])
            # merged parallel nets: keep the max induced length (feasible
            # since longer edges only increase distances)
            lengths[edge_id] = max(lengths[edge_id], metric[net_id])
        oracle = SpreadingOracle(graph, spec, tol=1e-6)
        oracle.set_lengths(lengths)
        assert oracle.is_feasible()


class TestFMProperties:
    @given(small_netlists(), st.integers(0, 50))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fm_never_worsens_cut(self, netlist, seed):
        rng = random.Random(seed)
        n = netlist.num_nodes
        sides = [rng.randint(0, 1) for _ in range(n)]
        size0 = sides.count(0)
        if size0 == 0 or size0 == n:
            sides[0] = 1 - sides[0]
            size0 = sides.count(0)
        before = cut_capacity(netlist, sides)
        _refined, after = fm_refine(
            netlist, list(sides), max(1, size0 - 2), min(n - 1, size0 + 2)
        )
        assert after <= before + 1e-9
