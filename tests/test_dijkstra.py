"""Unit tests for Dijkstra and the k-nearest expansion iterator."""

import math
import random

import pytest

from repro.algorithms.dijkstra import (
    dijkstra,
    dijkstra_expansion,
    shortest_path_tree,
)
from repro.hypergraph import Graph
from repro.hypergraph.generators import figure2_graph


def path_graph():
    return Graph(4, edges=[(0, 1), (1, 2), (2, 3)])


class TestDijkstra:
    def test_path_distances(self):
        g = path_graph()
        dist, pred_node, pred_edge = dijkstra(g, 0, [1.0, 2.0, 4.0])
        assert dist == [0.0, 1.0, 3.0, 7.0]
        assert pred_node[3] == 2
        assert pred_edge[0] == -1

    def test_unreachable_is_inf(self):
        g = Graph(3, edges=[(0, 1)])
        dist, _pn, _pe = dijkstra(g, 0, [1.0])
        assert dist[2] == math.inf

    def test_zero_length_edges(self):
        g = path_graph()
        dist, _pn, _pe = dijkstra(g, 0, [0.0, 0.0, 0.0])
        assert dist == [0.0, 0.0, 0.0, 0.0]

    def test_picks_shorter_route(self):
        g = Graph(3, edges=[(0, 1, 1), (1, 2, 1), (0, 2, 1)])
        # direct edge 0-2 has length 10; the detour via 1 costs 2
        eid_01 = g.edge_id(0, 1)
        eid_12 = g.edge_id(1, 2)
        eid_02 = g.edge_id(0, 2)
        lengths = [0.0] * 3
        lengths[eid_01] = 1.0
        lengths[eid_12] = 1.0
        lengths[eid_02] = 10.0
        dist, pred_node, _pe = dijkstra(g, 0, lengths)
        assert dist[2] == 2.0
        assert pred_node[2] == 1


class TestExpansion:
    def test_yields_in_distance_order(self):
        g = figure2_graph()
        rng = random.Random(0)
        lengths = [rng.random() for _ in range(g.num_edges)]
        dists = [d for _v, d, _e, _p in dijkstra_expansion(g, 5, lengths)]
        assert dists == sorted(dists)
        assert dists[0] == 0.0

    def test_yields_each_reachable_node_once(self):
        g = figure2_graph()
        nodes = [v for v, _d, _e, _p in dijkstra_expansion(g, 0, [1.0] * 30)]
        assert sorted(nodes) == list(range(16))

    def test_tree_edges_connect_to_settled(self):
        g = figure2_graph()
        lengths = [1.0] * g.num_edges
        settled = set()
        for node, _d, edge_id, parent in dijkstra_expansion(g, 3, lengths):
            if edge_id >= 0:
                u, v = g.edge(edge_id)
                assert {u, v} == {node, parent}
                assert parent in settled
            settled.add(node)


class TestShortestPathTree:
    def test_k_limits_size(self):
        g = figure2_graph()
        nodes, dists, edges = shortest_path_tree(g, 0, [1.0] * 30, k=5)
        assert len(nodes) == 5
        assert len(edges) == 4
        assert nodes[0] == 0

    def test_full_tree(self):
        g = figure2_graph()
        nodes, _d, edges = shortest_path_tree(g, 0, [1.0] * 30)
        assert len(nodes) == 16
        assert len(edges) == 15

    def test_agrees_with_networkx(self):
        import networkx as nx

        g = figure2_graph()
        rng = random.Random(9)
        lengths = [rng.uniform(0.1, 2.0) for _ in range(g.num_edges)]
        nxg = nx.Graph()
        for eid, (u, v) in enumerate(g.edges()):
            nxg.add_edge(u, v, weight=lengths[eid])
        expected = nx.single_source_dijkstra_path_length(nxg, 7)
        dist, _pn, _pe = dijkstra(g, 7, lengths)
        for v, d in expected.items():
            assert dist[v] == pytest.approx(d)
